#!/usr/bin/env bash
# Tier-1 verification under hermetic conditions.
#
# Proves the workspace needs nothing from crates.io: tier-1 (build +
# tests) runs --offline against an EMPTY cargo home, and every manifest
# is grepped for registry (non-path) dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

# 1. No registry dependencies in any manifest. Path/workspace deps use
#    inline tables ({ path = ... } / { workspace = true }); a registry
#    dep is a bare version string: `name = "1.2"`.
echo "==> checking manifests for registry dependencies"
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    if awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/ { print FILENAME ": " $0; found = 1 }
        END { exit found }
    ' "$manifest"; then
        :
    else
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "error: registry (non-path) dependency found above" >&2
    exit 1
fi

# 2. Tier-1 offline against an empty registry cache. A fresh CARGO_HOME
#    has no .crate files, no index — if anything tried to resolve from
#    crates.io this fails immediately.
echo "==> running tier-1 offline with an empty CARGO_HOME"
EMPTY_CARGO_HOME="$(mktemp -d)"
trap 'rm -rf "$EMPTY_CARGO_HOME"' EXIT
export CARGO_HOME="$EMPTY_CARGO_HOME"

cargo build --release --offline
cargo test -q --offline

# 3. Determinism & soundness lint. --check exits non-zero on any
#    unsuppressed finding; the JSON report is then re-parsed and
#    schema-validated by the linter itself (which uses the in-tree
#    crates/json parser), so the machine-readable side of the contract
#    is exercised on every run too.
echo "==> determinism & soundness lint (--check)"
LINT_OUT="$(mktemp)"
cargo run --release --offline -q -p taxoglimpse-lint -- \
    --workspace --check --json "$LINT_OUT"
cargo run --release --offline -q -p taxoglimpse-lint -- \
    --validate "$LINT_OUT"
rm -f "$LINT_OUT"

# 4. Bench plumbing smoke: the committed baseline must parse and pass
#    shape validation with the in-tree JSON crate — for the committed
#    file that includes the v2 acceptance gates: every batch/cache
#    config's reports_digest equal within each setting, hit rates in
#    [0, 1], and the zero-shot headline >= 2x the embedded baseline.
#    Then a quick-mode bench run (which sweeps every batched + cached
#    config too, aborting in-process on any digest divergence) must
#    produce a file that passes the same validation. Quick mode shrinks
#    the workload so this costs seconds, not a real measurement.
echo "==> bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_eval -- \
    --check BENCH_eval.json
SMOKE_OUT="$(mktemp)"
TAXOGLIMPSE_BENCH_QUICK=1 cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_eval -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_eval -- \
    --check "$SMOKE_OUT"
rm -f "$SMOKE_OUT"

# 4b. Answer-extraction audit: the adversarial parser corpus (the three
#     PR 6 parser fixes plus the near-miss forms that must stay
#     Unparsed) and its pinned-digest neutrality proof. Tier-1 already
#     ran the whole suite; re-running just this corpus here keeps the
#     parser contract visible as its own verification step.
echo "==> answer-extraction corpus audit"
cargo test --release --offline -q --test parser_corpus

# 5. Data-production bench plumbing, same contract as stage 4: the
#    committed BENCH_synth.json must pass shape validation, and a
#    quick-mode run (tiny scales, snapshot cache in a temp dir) must
#    produce a file that does too. Quick mode still asserts digest
#    equality across worker counts, so the determinism contract is
#    exercised — only the measurement is toy-sized.
echo "==> synth bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_synth -- \
    --check BENCH_synth.json
SMOKE_OUT="$(mktemp)"
SMOKE_CACHE="$(mktemp -d)"
TAXOGLIMPSE_BENCH_QUICK=1 TAXOGLIMPSE_CACHE_DIR="$SMOKE_CACHE" \
    cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_synth -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_synth -- \
    --check "$SMOKE_OUT"
rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"

# 6. Resilience bench plumbing, same contract as stages 4/5: the
#    committed BENCH_resilience.json must pass shape validation
#    (including its rate-0 transparency invariants), and a quick-mode
#    fault smoke must produce a file that does too. The smoke run
#    re-proves the two hard invariants in-process — digests equal
#    across worker counts {1,2,8} at every fault rate, and the rate-0
#    digest equal to the bare (un-wrapped) pipeline — because
#    bench_resilience aborts if either fails. Also audit that the
#    error-path migration left no unwrap() in the new modules (lint
#    rule D003 gates this too; this is a cheap belt-and-braces check).
echo "==> resilience bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
if grep -n '\.unwrap()' crates/core/src/resilience.rs crates/llm/src/faults.rs; then
    echo "error: unwrap() in resilience/fault modules (see above)" >&2
    exit 1
fi
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_resilience -- \
    --check BENCH_resilience.json
SMOKE_OUT="$(mktemp)"
TAXOGLIMPSE_BENCH_QUICK=1 cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_resilience -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_resilience -- \
    --check "$SMOKE_OUT"
rm -f "$SMOKE_OUT"

# 7. Sharded scale-out bench plumbing, same contract as stages 4–6:
#    the committed BENCH_shard.json must pass shape validation —
#    including its headline invariant, reports/merged digests identical
#    across shard counts {1,2,8} within every fault rate, and
#    availability exactly 1 at fault rate 0 — and a quick-mode smoke
#    (tiny scales, snapshot cache in a temp dir) must produce a file
#    that passes the same validation. The smoke run re-proves the
#    digest invariant in-process at both sharding levels because
#    bench_shard aborts on any cross-shard-count divergence.
echo "==> shard bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_shard -- \
    --check BENCH_shard.json
SMOKE_OUT="$(mktemp)"
SMOKE_CACHE="$(mktemp -d)"
TAXOGLIMPSE_BENCH_QUICK=1 TAXOGLIMPSE_CACHE_DIR="$SMOKE_CACHE" \
    cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_shard -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_shard -- \
    --check "$SMOKE_OUT"
rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"

# 8. Interprocedural lint engine: exercise the schema-v2 surface the
#    way a consumer would. The workspace scan in stage 3 already ran
#    the new passes (D101/L001/L002/P001/S001 are part of --check);
#    here we additionally dump the call graph, check it is valid JSON
#    that names a known deep chain, validate a v2 report written fresh,
#    and require --explain to resolve every published rule id while
#    rejecting an unknown one with the usage exit code.
echo "==> interprocedural lint surface (--graph / --explain / schema v2)"
GRAPH_OUT="$(mktemp)"
LINT_OUT="$(mktemp)"
cargo run --release --offline -q -p taxoglimpse-lint -- \
    --workspace --check --graph "$GRAPH_OUT" --json "$LINT_OUT"
cargo run --release --offline -q -p taxoglimpse-lint -- \
    --validate "$LINT_OUT"
grep -q '"schema_version": 2' "$LINT_OUT" || {
    echo "error: lint report is not schema v2" >&2
    exit 1
}
grep -q 'core::resilience::ResilienceSession::call_impl' "$GRAPH_OUT" || {
    echo "error: call-graph dump is missing a known workspace chain" >&2
    exit 1
}
for rule in D001 D002 D003 C001 M001 U001 D101 L001 L002 P001 S001; do
    cargo run --release --offline -q -p taxoglimpse-lint -- \
        --explain "$rule" > /dev/null
done
if cargo run --release --offline -q -p taxoglimpse-lint -- \
    --explain Z999 > /dev/null 2>&1; then
    echo "error: --explain accepted an unknown rule id" >&2
    exit 1
fi
rm -f "$GRAPH_OUT" "$LINT_OUT"

# 9. Serving bench plumbing, same contract as stages 4–7: the
#    committed BENCH_serve.json must pass shape validation — including
#    its headline invariant (wall-clock serving throughput within 1.5x
#    of the offline grid at fault-free saturation), availability
#    exactly 1 at fault rate 0, monotone p50 <= p99 <= p99.9, and shed
#    accounting consistent with arrivals/admitted — and a quick-mode
#    smoke (tiny pool, snapshot cache in a temp dir) must produce a
#    file that passes the same validation. The smoke run re-proves the
#    determinism invariant in-process because bench_serve aborts if
#    any cell's serving report differs across prefetch worker counts
#    {1,2,8}.
echo "==> serve bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_serve -- \
    --check BENCH_serve.json
SMOKE_OUT="$(mktemp)"
SMOKE_CACHE="$(mktemp -d)"
TAXOGLIMPSE_BENCH_QUICK=1 TAXOGLIMPSE_CACHE_DIR="$SMOKE_CACHE" \
    cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_serve -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_serve -- \
    --check "$SMOKE_OUT"
rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"

# 10. Hierarchical-classification bench plumbing, same contract as
#     stages 4–7/9: the committed BENCH_hier.json must pass shape
#     validation — including its headline invariant, the constrained
#     descent's invalid-label count exactly 0 in every (model,
#     taxonomy) cell, and outcome counts partitioning the instance
#     count — and a quick-mode smoke (tiny caps, snapshot cache in a
#     temp dir) must produce a file that passes the same validation.
#     The smoke run re-proves the determinism invariant in-process
#     because bench_hier aborts if any cell's report differs across
#     worker counts {1,2,8}.
echo "==> hier bench smoke (TAXOGLIMPSE_BENCH_QUICK)"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_hier -- \
    --check BENCH_hier.json
SMOKE_OUT="$(mktemp)"
SMOKE_CACHE="$(mktemp -d)"
TAXOGLIMPSE_BENCH_QUICK=1 TAXOGLIMPSE_CACHE_DIR="$SMOKE_CACHE" \
    cargo run --release --offline -q \
    -p taxoglimpse-bench --bin bench_hier -- --label "verify smoke" --out "$SMOKE_OUT"
cargo run --release --offline -q -p taxoglimpse-bench --bin bench_hier -- \
    --check "$SMOKE_OUT"
rm -rf "$SMOKE_OUT" "$SMOKE_CACHE"

echo "==> verify OK: hermetic tier-1 passed"
