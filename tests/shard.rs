//! Property tests for sharded scale-out (`core::shard`): merged
//! reports must be byte-identical across shard counts {1, 2, 8} —
//! under any combination of worker counts, response caches on/off, and
//! a 20% fault plan — and the subtree partitioner must assign every
//! node to exactly one shard, independent of how shard counts are
//! enumerated. Runs on the same in-tree deterministic proptest harness
//! as `proptests.rs`.

use std::sync::Arc;
use taxoglimpse::core::grid::GridRunnerBuilder;
use taxoglimpse::core::shard::NUM_SLOTS;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::rng::{fork, hash_str, mix64, Rng, SynthRng};

const PROPTEST_SEED: u64 = 0x5AAD_7E57_5052_0007; // "shard test PR 7"

/// Run `f` for `n` deterministic cases, reporting the failing case.
fn cases(n: u64, tag: &str, f: impl Fn(&mut SynthRng, u64)) {
    for i in 0..n {
        let mut rng = fork(PROPTEST_SEED, tag, i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, i)));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("property `{tag}` failed at case {i}/{n}: {message}");
        }
    }
}

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn digest_reports(reports: &[EvalReport]) -> u64 {
    let mut digest = 0xBA5E_11AEu64;
    for report in reports {
        let json = taxoglimpse::json::to_string(report).expect("reports serialize");
        digest = mix64(digest ^ hash_str(0x5EED, &json));
    }
    digest
}

/// One shard's model stack for taxonomy-level runs: the full PR 5 + 6
/// composition `FaultInjector<CachedModel<Arc<SimulatedLlm>>>` with a
/// per-shard cache when `cached`, or the injector straight over the
/// shared base when not.
fn shard_stack(base: &Arc<SimulatedLlm>, plan: &FaultPlan, cached: bool) -> Box<dyn LanguageModel> {
    if cached {
        Box::new(FaultInjector::new(
            CachedModel::with_cache(Arc::clone(base), Arc::new(ResponseCache::new())),
            plan.clone(),
        ))
    } else {
        Box::new(FaultInjector::new(Arc::clone(base), plan.clone()))
    }
}

/// Taxonomy-level sharding: for random (seed, batch size, cache
/// on/off, fault plan off/20%), the merged report is byte-identical
/// across shard counts {1, 2, 8}.
#[test]
fn merged_reports_are_shard_count_invariant() {
    cases(6, "merged-shard-invariant", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let kind = TaxonomyKind::Ebay;
        let taxonomy = generate(kind, GenOptions { seed, scale: 0.5 }).expect("valid options");
        let dataset = DatasetBuilder::new(&taxonomy, kind, seed)
            .sample_cap(Some(30))
            .build(QuestionDataset::Hard)
            .expect("ebay has probe levels");
        let partition = SubtreePartition::new(&taxonomy, NUM_SLOTS);
        let sharded = ShardedDataset::partition(&dataset, &taxonomy, &partition);
        assert_eq!(sharded.len(), dataset.len(), "partitioning must not drop questions");

        let cached = rng.gen_bool(0.5);
        let plan = if rng.gen_bool(0.5) {
            FaultPlan::uniform(rng.gen_range(0u64..1 << 32), 0.20)
        } else {
            FaultPlan::disabled(rng.gen_range(0u64..1 << 32))
        };
        let batch = rng.gen_range(1u64..40) as usize;
        let base = Arc::new(SimulatedLlm::with_seed(ModelId::Gpt4, seed));
        let evaluator = Evaluator::default().with_batch_size(batch);

        let mut merged_json: Vec<String> = Vec::new();
        for shards in SHARD_COUNTS {
            let stacks: Vec<Box<dyn LanguageModel>> =
                (0..shards).map(|_| shard_stack(&base, &plan, cached)).collect();
            let stack_refs: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();
            let runs = run_sharded(&evaluator, &stack_refs, &sharded);
            let merged = merge_sharded(&runs).expect("per-shard partials merge");
            assert_eq!(
                merged.overall.total(),
                dataset.len(),
                "merged counters must cover every question"
            );
            merged_json
                .push(taxoglimpse::json::to_string(&merged).expect("merged report serializes"));
        }
        assert_eq!(merged_json[0], merged_json[1], "1 vs 2 shards, plan {plan:?}");
        assert_eq!(merged_json[0], merged_json[2], "1 vs 8 shards, plan {plan:?}");
    });
}

/// Grid-level sharding: cell reports reassembled from sharded runners
/// are byte-identical to the unsharded cross product — across shard
/// counts × worker counts × chunk sizes × a 20% fault plan.
#[test]
fn sharded_grid_matches_unsharded_cross_product() {
    cases(4, "sharded-grid-invariant", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let kind = TaxonomyKind::Ebay;
        let taxonomy = generate(kind, GenOptions { seed, scale: 0.5 }).expect("valid options");
        let dataset = DatasetBuilder::new(&taxonomy, kind, seed)
            .sample_cap(Some(30))
            .build(QuestionDataset::Hard)
            .expect("ebay has probe levels");
        let dataset_refs = [&dataset];
        let plan = FaultPlan::uniform(rng.gen_range(0u64..1 << 32), 0.20);
        let chunk = rng.gen_range(1u64..40) as usize;
        let workers = [1usize, 2, 8][rng.gen_range(0u64..3) as usize];
        let bases =
            [SimulatedLlm::with_seed(ModelId::Gpt4, seed), SimulatedLlm::with_seed(ModelId::Llama2_7b, seed)];

        let builder = GridRunnerBuilder::default().with_threads(workers).with_chunk_size(chunk);

        // Unsharded baseline with the same per-cell stacks.
        let baseline_stacks: Vec<_> =
            bases.iter().map(|b| FaultInjector::new(b, plan.clone())).collect();
        let baseline_refs: Vec<&dyn LanguageModel> =
            baseline_stacks.iter().map(|m| m as &dyn LanguageModel).collect();
        let baseline = builder.build().run_cross(&baseline_refs, &dataset_refs);
        let baseline_digest = digest_reports(&baseline);

        for shards in SHARD_COUNTS {
            // Each shard wraps the same bases in its own injector
            // instances (per-shard breakers and stats).
            let shard_stacks: Vec<Vec<_>> = (0..shards)
                .map(|_| bases.iter().map(|b| FaultInjector::new(b, plan.clone())).collect())
                .collect();
            let shard_refs: Vec<Vec<&dyn LanguageModel>> = shard_stacks
                .iter()
                .map(|stack| stack.iter().map(|m| m as &dyn LanguageModel).collect())
                .collect();
            let reports = run_grid_sharded(builder, &shard_refs, &dataset_refs);
            assert_eq!(
                digest_reports(&reports),
                baseline_digest,
                "{shards} shards × {workers} workers, chunk {chunk}, plan {plan:?}"
            );
        }
    });
}

/// Partitioner invariants at synth scale: every node lands in exactly
/// one shard for every shard count, and the assignment is a pure
/// function of the slot — independent of the order shard counts are
/// enumerated in (we walk them backwards and compare against forward).
#[test]
fn subtree_partitioner_invariants() {
    cases(6, "partitioner-invariants", |rng, _| {
        let kind = [TaxonomyKind::Ebay, TaxonomyKind::Amazon, TaxonomyKind::GeoNames]
            [rng.gen_range(0u64..3) as usize];
        let seed = rng.gen_range(0u64..1000);
        let taxonomy = generate(kind, GenOptions { seed, scale: 0.5 }).expect("valid options");
        let partition = SubtreePartition::new(&taxonomy, NUM_SLOTS);

        // Every node in exactly one slot, and subtrees stay together.
        assert_eq!(partition.slot_sizes().iter().sum::<usize>(), taxonomy.len());
        for id in taxonomy.ids() {
            let slot = partition.slot_of(id);
            assert!(slot < NUM_SLOTS);
            if taxonomy.level(id) > 1 {
                let parent = taxonomy.parent(id).expect("deep nodes have parents");
                assert_eq!(slot, partition.slot_of(parent), "subtree split at node {id}");
            }
        }

        // Forward and backward enumeration of shard counts agree, and
        // each count covers all nodes disjointly.
        let forward: Vec<Vec<usize>> = SHARD_COUNTS
            .iter()
            .map(|&s| taxonomy.ids().map(|id| partition.shard_of(id, s)).collect())
            .collect();
        let backward: Vec<Vec<usize>> = SHARD_COUNTS
            .iter()
            .rev()
            .map(|&s| taxonomy.ids().map(|id| partition.shard_of(id, s)).collect())
            .collect();
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            assert_eq!(
                forward[i],
                backward[SHARD_COUNTS.len() - 1 - i],
                "assignment for {shards} shards must not depend on enumeration order"
            );
            for (&assignment, id) in forward[i].iter().zip(taxonomy.ids()) {
                assert!(assignment < shards, "node {id} routed past shard {shards}");
                assert_eq!(assignment, partition.slot_of(id) % shards);
            }
        }
    });
}
