//! Exhaustive tests of the TAXG binary codec against malformed input
//! and across every synthetic taxonomy kind.
//!
//! This lives at the workspace root (not in `taxoglimpse-taxonomy`)
//! because the cross-kind round-trip needs the synth generators, which
//! depend on the taxonomy crate.

use taxoglimpse::prelude::*;
use taxoglimpse::taxonomy::binary::BinaryError;
use taxoglimpse::taxonomy::{validate, TaxonomyBuilder};

fn sample() -> Taxonomy {
    let mut b = TaxonomyBuilder::new("codec-fixture");
    let r = b.add_root("Root");
    let a = b.add_child(r, "Child A");
    b.add_child(a, "Grand");
    b.add_child(r, "Child B");
    b.build().unwrap()
}

/// Byte offsets of every section boundary in the sample's v2 encoding:
/// after magic, version, label length, label bytes, node count, each
/// parent word, the name-block length, each offset entry, and each name
/// inside the contiguous name block.
fn section_boundaries(t: &Taxonomy) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = 4; // magic
    offsets.push(pos);
    pos += 2; // version
    offsets.push(pos);
    pos += 4; // label length
    offsets.push(pos);
    pos += t.label().len();
    offsets.push(pos);
    pos += 8; // node count
    offsets.push(pos);
    for _ in t.ids() {
        pos += 4; // parent word
        offsets.push(pos);
    }
    pos += 8; // name-block byte count
    offsets.push(pos);
    for _ in 0..=t.len() {
        pos += 4; // offset-table entry
        offsets.push(pos);
    }
    for id in t.ids() {
        pos += t.name(id).len(); // name bytes within the block
        offsets.push(pos);
    }
    offsets
}

#[test]
fn truncation_at_every_section_boundary_fails_cleanly() {
    let t = sample();
    let bytes = t.to_binary();
    let boundaries = section_boundaries(&t);
    assert_eq!(*boundaries.last().unwrap(), bytes.len(), "boundary math covers the buffer");
    for &cut in &boundaries[..boundaries.len() - 1] {
        let err = Taxonomy::from_binary(&bytes[..cut]).unwrap_err();
        assert_eq!(err, BinaryError::Truncated, "cut at section boundary {cut}");
    }
    assert!(Taxonomy::from_binary(&bytes).is_ok());
}

#[test]
fn truncation_at_every_byte_never_panics() {
    let t = sample();
    for bytes in [t.to_binary(), t.to_binary_v1()] {
        for cut in 0..bytes.len() {
            assert!(Taxonomy::from_binary(&bytes[..cut]).is_err(), "cut at {cut}");
            assert!(Taxonomy::from_binary_owned(bytes[..cut].to_vec()).is_err(), "owned cut at {cut}");
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    assert_eq!(Taxonomy::from_binary(b"").unwrap_err(), BinaryError::BadMagic);
    assert_eq!(Taxonomy::from_binary(b"TAX").unwrap_err(), BinaryError::BadMagic);
    assert_eq!(Taxonomy::from_binary(b"GXAT\x01\x00").unwrap_err(), BinaryError::BadMagic);
    let mut bytes = sample().to_binary();
    bytes[0] = b'X';
    assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::BadMagic);
}

#[test]
fn unsupported_version_is_rejected() {
    // v1 and v2 are the supported formats; anything else must be
    // rejected with the version echoed back, on both decode entry
    // points.
    let mut bytes = sample().to_binary();
    bytes[4..6].copy_from_slice(&3u16.to_le_bytes());
    assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::BadVersion(3));
    assert_eq!(
        Taxonomy::from_binary_owned(bytes.clone()).unwrap_err(),
        BinaryError::BadVersion(3)
    );
    bytes[4..6].copy_from_slice(&0u16.to_le_bytes());
    assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::BadVersion(0));
    assert_eq!(Taxonomy::from_binary_owned(bytes).unwrap_err(), BinaryError::BadVersion(0));
}

#[test]
fn zero_length_label_and_names_round_trip() {
    let mut b = TaxonomyBuilder::new("");
    let r = b.add_root("");
    b.add_child(r, "named");
    b.add_child(r, "");
    let t = b.build().unwrap();
    let back = Taxonomy::from_binary(&t.to_binary()).unwrap();
    assert_eq!(back.label(), "");
    assert_eq!(back.len(), 3);
    let mut names: Vec<&str> = back.ids().map(|id| back.name(id)).collect();
    names.sort();
    assert_eq!(names, ["", "", "named"]);
}

#[test]
fn every_taxonomy_kind_round_trips() {
    for kind in TaxonomyKind::ALL {
        // Small scale keeps even NCBI (2.19M nodes at 1.0) fast.
        let t = generate(kind, GenOptions { seed: 13, scale: 0.02 }).unwrap();
        let bytes = t.to_binary();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.len(), t.len(), "{kind:?}");
        assert_eq!(back.label(), t.label(), "{kind:?}");
        // Decode→encode is a byte-level fixed point.
        assert_eq!(Taxonomy::from_binary(&back.to_binary()).unwrap().to_binary(), back.to_binary());
        // The buffer-consuming decoder (the snapshot-load fast path)
        // produces the identical taxonomy, for both codec versions.
        assert_eq!(Taxonomy::from_binary_owned(bytes).unwrap().to_binary(), back.to_binary());
        assert_eq!(
            Taxonomy::from_binary_owned(t.to_binary_v1()).unwrap().to_binary(),
            Taxonomy::from_binary(&t.to_binary_v1()).unwrap().to_binary(),
            "{kind:?}"
        );
    }
}

#[test]
fn owned_decode_handles_non_ascii_names() {
    // Non-ASCII names take the slower UTF-8 validation + char-boundary
    // path; the owned decoder must still reuse the buffer correctly.
    let mut b = TaxonomyBuilder::new("unicode");
    let r = b.add_root("Racine α");
    b.add_child(r, "Enfant β");
    b.add_child(r, "été");
    let t = b.build().unwrap();
    let back = Taxonomy::from_binary_owned(t.to_binary()).unwrap();
    validate(&back).unwrap();
    assert_eq!(back.to_binary(), t.to_binary());
    let names: Vec<&str> = back.ids().map(|id| back.name(id)).collect();
    assert_eq!(names, ["Racine α", "Enfant β", "été"]);
}
