//! Reproducibility guarantees: identical seeds produce byte-identical
//! artifacts at every stage — taxonomies, datasets, model answers, and
//! whole evaluation reports — and different seeds genuinely differ.

use taxoglimpse::core::model::Query;
use taxoglimpse::prelude::*;

#[test]
fn taxonomies_are_byte_identical_across_runs() {
    for kind in TaxonomyKind::ALL {
        let scale = if kind == TaxonomyKind::Ncbi { 0.002 } else { 0.1 };
        let a = generate(kind, GenOptions { seed: 5, scale }).unwrap();
        let b = generate(kind, GenOptions { seed: 5, scale }).unwrap();
        assert_eq!(a.to_tsv(), b.to_tsv(), "{kind}");
    }
}

#[test]
fn datasets_are_identical_across_processes_shapes() {
    // Serialize the dataset to JSON; identical seed ⇒ identical bytes.
    let t = generate(TaxonomyKind::Oae, GenOptions { seed: 8, scale: 0.1 }).unwrap();
    let mk = || {
        taxoglimpse::json::to_string(
            &DatasetBuilder::new(&t, TaxonomyKind::Oae, 8)
                .build(QuestionDataset::Mcq)
                .unwrap(),
        )
        .unwrap()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn model_answers_are_stable_per_question() {
    let t = generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 3, scale: 0.2 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Icd10Cm, 3)
        .sample_cap(Some(20))
        .build(QuestionDataset::Hard)
        .unwrap();
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Claude3).unwrap();
    for q in d.questions() {
        let prompt = taxoglimpse::core::templates::render_question(q, Default::default());
        let query = Query::new(&prompt, q, PromptSetting::ZeroShot);
        let first = model.answer(&query);
        for _ in 0..3 {
            assert_eq!(model.answer(&query), first);
        }
    }
}

#[test]
fn reports_identical_for_identical_seeds_distinct_for_different() {
    let t = generate(TaxonomyKind::Google, GenOptions { seed: 6, scale: 0.2 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Google, 6)
        .build(QuestionDataset::Easy)
        .unwrap();
    let evaluator = Evaluator::default();
    let r1 = evaluator.run(ModelZoo::with_seed(9).get(ModelId::Gpt35).unwrap().as_ref(), &d);
    let r2 = evaluator.run(ModelZoo::with_seed(9).get(ModelId::Gpt35).unwrap().as_ref(), &d);
    let r3 = evaluator.run(ModelZoo::with_seed(10).get(ModelId::Gpt35).unwrap().as_ref(), &d);
    assert_eq!(taxoglimpse::json::to_string(&r1).unwrap(), taxoglimpse::json::to_string(&r2).unwrap());
    assert_ne!(taxoglimpse::json::to_string(&r1).unwrap(), taxoglimpse::json::to_string(&r3).unwrap());
}

#[test]
fn seed_changes_propagate_to_taxonomies() {
    let a = generate(TaxonomyKind::Glottolog, GenOptions { seed: 1, scale: 0.05 }).unwrap();
    let b = generate(TaxonomyKind::Glottolog, GenOptions { seed: 2, scale: 0.05 }).unwrap();
    assert_ne!(a.to_tsv(), b.to_tsv());
    // Shape is seed-independent (only names/assignments change).
    assert_eq!(a.num_levels(), b.num_levels());
    assert_eq!(a.len(), b.len());
    for level in 0..a.num_levels() {
        assert_eq!(a.nodes_at_level(level).len(), b.nodes_at_level(level).len());
    }
}

/// The digest recipe `bench_eval` records as `reports_digest`, pinned
/// over a fixed small workload. The constant was captured before the
/// D001 container conversions (`HashMap`/`HashSet` → ordered
/// equivalents) and must never move: report bytes are the repo's core
/// deterministic artifact, and this test is what lets a container or
/// scheduler refactor prove it changed nothing observable.
#[test]
fn reports_digest_is_pinned() {
    use taxoglimpse::core::dataset::Dataset;
    use taxoglimpse::core::eval::EvalConfig;
    use taxoglimpse::core::grid::GridRunner;
    use taxoglimpse::core::model::LanguageModel;
    use taxoglimpse::synth::rng::{hash_str, mix64};

    let datasets: Vec<Dataset> = [TaxonomyKind::Ebay, TaxonomyKind::GeoNames]
        .into_iter()
        .map(|kind| {
            let t = generate(kind, GenOptions { seed: 42, scale: 0.1 }).unwrap();
            DatasetBuilder::new(&t, kind, 42)
                .sample_cap(Some(60))
                .build(QuestionDataset::Hard)
                .unwrap()
        })
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let model_arcs =
        [zoo.get(ModelId::Gpt4).unwrap(), zoo.get(ModelId::Llama2_7b).unwrap()];
    let models: Vec<&dyn LanguageModel> =
        model_arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();

    let mut digests = Vec::new();
    for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
        let runner = GridRunner::builder()
            .with_config(EvalConfig::default().with_setting(setting))
            .with_threads(4)
            .build();
        let reports = runner.run_cross(&models, &dataset_refs);
        let mut digest = 0xBA5E_11AEu64;
        for report in &reports {
            let json = taxoglimpse::json::to_string(report).unwrap();
            digest = mix64(digest ^ hash_str(0x5EED, &json));
        }
        digests.push(format!("{digest:016x}"));
    }
    assert_eq!(digests, ["55e93db6e5f85df9", "ca98ddf7b5163d0a"]);
}

/// Pin the legacy (sequential) name streams of all ten kinds. The
/// constants were captured before the allocation-free generator engine
/// landed and must never move: `generate`'s byte output is the substrate
/// under every pinned report digest (including `reports_digest_is_pinned`
/// above), so a generator refactor is only admissible if this test still
/// passes untouched.
#[test]
fn legacy_name_streams_are_pinned() {
    use taxoglimpse::synth::rng::hash_str;
    const PINS: [(TaxonomyKind, f64, u64); 10] = [
        (TaxonomyKind::Ebay, 0.1, 0x1f64000b1945214c),
        (TaxonomyKind::Amazon, 0.1, 0x9ee632a92f30d268),
        (TaxonomyKind::Google, 0.1, 0xc651977aca086ab1),
        (TaxonomyKind::Schema, 0.1, 0x39df1d98afaf25aa),
        (TaxonomyKind::AcmCcs, 0.1, 0xe7bc33faa32a3013),
        (TaxonomyKind::GeoNames, 0.1, 0xc5eba4852f191586),
        (TaxonomyKind::Glottolog, 0.1, 0xc2a025ebb1320887),
        (TaxonomyKind::Icd10Cm, 0.1, 0xf9ac7efb577b0860),
        (TaxonomyKind::Oae, 0.1, 0x9eb5bcc8c5728b25),
        (TaxonomyKind::Ncbi, 0.002, 0xf90b10051a1ce587),
    ];
    for (kind, scale, expected) in PINS {
        let t = generate(kind, GenOptions { seed: 42, scale }).unwrap();
        let digest = hash_str(0x7a67, &t.to_tsv());
        assert_eq!(digest, expected, "{kind}: legacy name stream moved");
    }
}

#[test]
fn instance_typing_and_casestudy_are_deterministic() {
    use taxoglimpse::core::casestudy::{CaseStudy, CaseStudyConfig};
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 4, scale: 0.05 }).unwrap();
    let mk_it = || {
        taxoglimpse::json::to_string(
            &InstanceTypingWorkload::new(QuestionDataset::Hard)
                .with_sample_cap(Some(25))
                .build(&WorkloadContext::new(&t, TaxonomyKind::Amazon, 4))
                .unwrap(),
        )
        .unwrap()
    };
    assert_eq!(mk_it(), mk_it());

    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama2_70b).unwrap();
    let mk_cs = || {
        CaseStudy::new(&t, TaxonomyKind::Amazon, CaseStudyConfig {
            cutoff_level: 3,
            products_per_concept: 6,
            sample_cap: Some(20),
            seed: 4,
        })
        .run(model.as_ref())
    };
    assert_eq!(mk_cs(), mk_cs());
}
