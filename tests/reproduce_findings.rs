//! The paper's five findings, re-measured from the full pipeline (not
//! read off the calibration tables): these tests run models over
//! generated datasets and assert the *shape* of the results.

use taxoglimpse::prelude::*;

fn run(
    model: ModelId,
    kind: TaxonomyKind,
    flavor: QuestionDataset,
    setting: PromptSetting,
    scale: f64,
) -> taxoglimpse::core::eval::EvalReport {
    let taxonomy = generate(kind, GenOptions { seed: 777, scale }).expect("valid options");
    let dataset = DatasetBuilder::new(&taxonomy, kind, 777)
        .build(flavor)
        .expect("probe levels exist");
    let zoo = ModelZoo::default_zoo();
    Evaluator::builder().with_config(EvalConfig { setting, ..Default::default() }).build()
        .run(zoo.get(model).unwrap().as_ref(), &dataset)
}

/// Finding 1: state-of-the-art LLMs are reliable on common domains
/// (Shopping, General) and unreliable on specialized ones (Biology,
/// Language).
#[test]
fn finding_1_common_vs_specialized() {
    for model in [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama3_70b] {
        let ebay = run(model, TaxonomyKind::Ebay, QuestionDataset::Hard, PromptSetting::ZeroShot, 1.0);
        let glotto = run(model, TaxonomyKind::Glottolog, QuestionDataset::Hard, PromptSetting::ZeroShot, 0.3);
        let ncbi = run(model, TaxonomyKind::Ncbi, QuestionDataset::Hard, PromptSetting::ZeroShot, 0.003);
        assert!(
            ebay.overall.accuracy() > glotto.overall.accuracy() + 0.1,
            "{model}: eBay {} vs Glottolog {}",
            ebay.overall.accuracy(),
            glotto.overall.accuracy()
        );
        assert!(
            ebay.overall.accuracy() > ncbi.overall.accuracy() + 0.1,
            "{model}: eBay {} vs NCBI {}",
            ebay.overall.accuracy(),
            ncbi.overall.accuracy()
        );
    }
}

/// Finding 2: a root-to-leaf accuracy decline in most taxonomies, with
/// the NCBI species→genus uplift at the last level.
#[test]
fn finding_2_root_to_leaf_decline() {
    // Deep taxonomies where the decline is visible.
    for kind in [TaxonomyKind::Glottolog, TaxonomyKind::AcmCcs, TaxonomyKind::Amazon] {
        let scale = if kind == TaxonomyKind::Amazon { 0.3 } else { 0.5 };
        let report = run(ModelId::Gpt4, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, scale);
        let curve = report.accuracy_by_level();
        assert!(curve.len() >= 3, "{kind}");
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(
            first > last,
            "{kind}: expected decline, got first {first:.3} last {last:.3} ({curve:?})"
        );
    }
}

/// Finding 2 (NCBI exception): the species→genus level gets a sudden
/// uplift because species names embed the genus.
#[test]
fn finding_2_ncbi_species_uplift() {
    let report = run(ModelId::Gpt4, TaxonomyKind::Ncbi, QuestionDataset::Hard, PromptSetting::ZeroShot, 0.005);
    let curve = report.accuracy_by_level();
    assert_eq!(curve.len(), 6, "NCBI probes six child levels");
    let last = curve[5].1;
    let second_to_last = curve[4].1;
    assert!(
        last > second_to_last + 0.05,
        "expected species-level uplift: L5 {second_to_last:.3} -> L6 {last:.3} ({curve:?})"
    );
}

/// Finding 3a: larger models help for Llama-2 and Flan-T5…
#[test]
fn finding_3_size_helps_llama2_flant5() {
    for (small, large, kind) in [
        (ModelId::Llama2_7b, ModelId::Llama2_70b, TaxonomyKind::Amazon),
        (ModelId::FlanT5_3b, ModelId::FlanT5_11b, TaxonomyKind::Ebay),
    ] {
        let scale = if kind == TaxonomyKind::Amazon { 0.2 } else { 1.0 };
        let s = run(small, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, scale);
        let l = run(large, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, scale);
        assert!(
            l.overall.accuracy() > s.overall.accuracy(),
            "{large} {} should beat {small} {}",
            l.overall.accuracy(),
            s.overall.accuracy()
        );
    }
}

/// Finding 3b: …but not for Vicuna and Falcon (bigger is worse).
#[test]
fn finding_3_size_hurts_vicuna_falcon() {
    for (small, large) in [
        (ModelId::Vicuna7b, ModelId::Vicuna13b),
        (ModelId::Falcon7b, ModelId::Falcon40b),
    ] {
        let s = run(small, TaxonomyKind::Google, QuestionDataset::Easy, PromptSetting::ZeroShot, 0.5);
        let l = run(large, TaxonomyKind::Google, QuestionDataset::Easy, PromptSetting::ZeroShot, 0.5);
        assert!(
            s.overall.accuracy() > l.overall.accuracy(),
            "{small} {} should beat {large} {}",
            s.overall.accuracy(),
            l.overall.accuracy()
        );
    }
}

/// Finding 3c: domain-specific instruction tuning (LLMs4OL) stably and
/// significantly outperforms its backbone (Flan-T5-3B).
#[test]
fn finding_3_domain_specific_tuning_uplift() {
    let mut wins = 0;
    let cases = [
        (TaxonomyKind::Schema, 1.0),
        (TaxonomyKind::Glottolog, 0.3),
        (TaxonomyKind::Ncbi, 0.003),
        (TaxonomyKind::Ebay, 1.0),
    ];
    for (kind, scale) in cases {
        let backbone = run(ModelId::FlanT5_3b, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, scale);
        let tuned = run(ModelId::Llms4Ol, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, scale);
        if tuned.overall.accuracy() > backbone.overall.accuracy() {
            wins += 1;
        }
    }
    assert!(wins >= 3, "LLMs4OL won only {wins}/4 taxonomies");
}

/// Finding 4: few-shot and CoT barely move the best models, while
/// few-shot mainly suppresses weak models' abstention.
#[test]
fn finding_4_prompting_effects() {
    // GPT-4 is stable across settings.
    let kind = TaxonomyKind::Icd10Cm;
    let zero = run(ModelId::Gpt4, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, 1.0);
    let few = run(ModelId::Gpt4, kind, QuestionDataset::Hard, PromptSetting::FewShot, 1.0);
    let cot = run(ModelId::Gpt4, kind, QuestionDataset::Hard, PromptSetting::ChainOfThought, 1.0);
    assert!((few.overall.accuracy() - zero.overall.accuracy()).abs() < 0.05);
    assert!((cot.overall.accuracy() - zero.overall.accuracy()).abs() < 0.05);

    // Llama-2-7B: few-shot slashes the miss rate and lifts accuracy.
    let zero7 = run(ModelId::Llama2_7b, kind, QuestionDataset::Hard, PromptSetting::ZeroShot, 1.0);
    let few7 = run(ModelId::Llama2_7b, kind, QuestionDataset::Hard, PromptSetting::FewShot, 1.0);
    assert!(zero7.overall.miss_rate() > 0.7);
    assert!(few7.overall.miss_rate() < zero7.overall.miss_rate() * 0.3);
    assert!(few7.overall.accuracy() > zero7.overall.accuracy() + 0.2);
}

/// Finding 5 direction: instance typing mirrors the common-to-
/// specialized gap — shopping instances type far better than NCBI
/// species.
#[test]
fn finding_5_instance_typing_gap() {
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    let evaluator = Evaluator::default();

    let accuracy = |kind: TaxonomyKind, scale: f64| {
        let taxonomy = generate(kind, GenOptions { seed: 55, scale }).expect("valid");
        let dataset = InstanceTypingWorkload::new(QuestionDataset::Hard)
            .with_sample_cap(Some(150))
            .build(&WorkloadContext::new(&taxonomy, kind, 55))
            .unwrap();
        evaluator.run(model.as_ref(), &dataset).overall.accuracy()
    };
    let google = accuracy(TaxonomyKind::Google, 0.5);
    let ncbi = accuracy(TaxonomyKind::Ncbi, 0.003);
    let glotto = accuracy(TaxonomyKind::Glottolog, 0.3);
    assert!(google > ncbi, "google {google:.3} vs ncbi {ncbi:.3}");
    assert!(google > glotto, "google {google:.3} vs glottolog {glotto:.3}");
}
