//! Integration properties of the two-stage hierarchical classification
//! workload (`core::hier`).
//!
//! Three contracts are pinned here:
//!
//! 1. **Executor purity** — the report for a `(model, taxonomy)` cell
//!    is byte-identical across worker counts {1, 2, 8}, with the
//!    response cache off or on, under a 20% fault plan: threading,
//!    caching and fault placement may change *when* a query runs, never
//!    what the report says.
//! 2. **Validity by construction** — the constrained descent records
//!    zero invalid labels on every one of the ten taxonomies, for the
//!    strongest and weakest simulated models alike.
//! 3. **Cross-crate equivalence** — `core::hier`'s in-core trigram
//!    similarity and token-count approximations (core cannot depend on
//!    the llm crate) compute exactly the same values as
//!    `llm::knowledge::trigram_similarity` and `llm`'s tokenizer.

use std::sync::Arc;

use taxoglimpse::core::cache::{CachedModel, ResponseCache};
use taxoglimpse::core::hier::{approx_token_count, RouterConfig, TrigramSet};
use taxoglimpse::core::model::LanguageModel;
use taxoglimpse::llm::knowledge::trigram_similarity;
use taxoglimpse::llm::tokenizer::Tokenizer;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::rng::{fork, Rng};

/// Serialize a hier report for byte comparison.
fn report_bytes(report: &taxoglimpse::core::hier::HierReport) -> String {
    taxoglimpse::json::to_string(report).expect("reports serialize")
}

/// One run of the hier workload over `model` with `workers` threads.
fn run_cell(
    workload: &HierWorkload,
    data: &taxoglimpse::core::hier::HierDataset,
    cx: &WorkloadContext<'_>,
    model: &dyn LanguageModel,
    workers: usize,
) -> taxoglimpse::core::hier::HierReport {
    let runner = WorkloadRunner::builder().with_threads(workers).build();
    workload.run(&runner, model, cx, data)
}

/// Contract 1: report bytes are invariant across workers {1, 2, 8} ×
/// cache {off, on} × a 20% fault plan. The fault injector sits outside
/// the cache (the served path can still fault), and fault decisions are
/// keyed by question identity — so no schedule can move a fault from
/// one question to another.
#[test]
fn hier_reports_byte_identical_across_workers_cache_and_faults() {
    let zoo = ModelZoo::default_zoo();
    let base = zoo.get(ModelId::Gpt4).expect("zoo covers GPT-4");
    let workload = HierWorkload::new().with_sample_cap(Some(12));

    for (kind, scale) in [(TaxonomyKind::Ebay, 0.1), (TaxonomyKind::Google, 0.05)] {
        let taxonomy = generate(kind, GenOptions { seed: 42, scale }).expect("valid options");
        let cx = WorkloadContext::new(&taxonomy, kind, 42);
        let data = workload.build(&cx).expect("benchmark taxonomies support hier");

        let mut reference: Option<String> = None;
        for cache_on in [false, true] {
            // One cache per cache-on config, shared across worker
            // counts: later runs hit entries earlier runs filled, which
            // must not change a byte.
            let cache = Arc::new(ResponseCache::new());
            for workers in [1usize, 2, 8] {
                let report = if cache_on {
                    let stack = FaultInjector::new(
                        CachedModel::with_cache(Arc::clone(&base), Arc::clone(&cache)),
                        FaultPlan::uniform(42, 0.2),
                    );
                    run_cell(&workload, &data, &cx, &stack, workers)
                } else {
                    let stack =
                        FaultInjector::new(Arc::clone(&base), FaultPlan::uniform(42, 0.2));
                    run_cell(&workload, &data, &cx, &stack, workers)
                };
                let bytes = report_bytes(&report);
                match &reference {
                    None => reference = Some(bytes),
                    Some(expected) => assert_eq!(
                        expected, &bytes,
                        "{kind}: {workers} workers, cache {cache_on}: report bytes diverged"
                    ),
                }
            }
            if cache_on {
                assert!(cache.stats().hits > 0, "{kind}: warm runs never hit the cache");
            }
        }
    }
}

/// Contract 2: zero invalid labels from the constrained descent on all
/// ten taxonomies, and outcome counts partition the instance count for
/// both the descent and the flat baseline.
#[test]
fn descent_emits_zero_invalid_labels_on_all_ten_taxonomies() {
    let zoo = ModelZoo::default_zoo();
    let runner = WorkloadRunner::default();
    let workload = HierWorkload::new()
        .with_router(RouterConfig::default().with_top_k(2))
        .with_sample_cap(Some(8));

    for kind in TaxonomyKind::ALL {
        let taxonomy = generate(kind, GenOptions { seed: 7, scale: 0.05 }).expect("valid options");
        let cx = WorkloadContext::new(&taxonomy, kind, 7);
        let data = workload.build(&cx).expect("all ten taxonomies have >= 2 levels");
        assert!(!data.instances.is_empty(), "{kind}: empty hier dataset");

        for model_id in [ModelId::Gpt4, ModelId::Llama2_7b] {
            let model = zoo.get(model_id).expect("zoo covers all ids");
            let report = workload.run(&runner, model.as_ref(), &cx, &data);
            let m = report.metrics;
            assert_eq!(m.hier_invalid, 0, "{kind}/{model_id}: descent emitted an invalid label");
            assert_eq!(
                m.hier_correct + m.hier_wrong_branch + m.hier_abstained + m.hier_failed,
                m.instances,
                "{kind}/{model_id}: descent outcomes do not partition instances"
            );
            assert_eq!(
                m.flat_correct + m.flat_wrong_valid + m.flat_invalid + m.flat_abstained
                    + m.flat_failed,
                m.instances,
                "{kind}/{model_id}: flat outcomes do not partition instances"
            );
        }
    }
}

/// Contract 2b: router candidates are themselves deterministic — same
/// inputs, same candidate list, and every candidate sits at the clamped
/// router level.
#[test]
fn router_candidates_are_deterministic_and_level_consistent() {
    let taxonomy =
        generate(TaxonomyKind::Amazon, GenOptions { seed: 11, scale: 0.1 }).expect("valid options");
    let workload = HierWorkload::new().with_router(RouterConfig::default().with_top_k(4));
    for (i, name) in ["Portable Audio", "Garden Tools", "Camera Film", "xyzzy"]
        .into_iter()
        .enumerate()
    {
        let a = workload.route(&taxonomy, name);
        let b = workload.route(&taxonomy, name);
        assert_eq!(a, b, "case {i}: routing is not deterministic");
        assert!(!a.is_empty(), "case {i}: router returned no candidates");
        assert!(a.len() <= 4, "case {i}: router exceeded top-k");
        for &node in &a {
            assert_eq!(taxonomy.level(node), 1, "case {i}: candidate not at router level");
        }
    }
}

/// Contract 3a: in-core trigram similarity equals the llm crate's on
/// real taxonomy names and on adversarial short/unicode strings.
#[test]
fn core_trigram_similarity_matches_llm_crate() {
    let taxonomy =
        generate(TaxonomyKind::Oae, GenOptions { seed: 3, scale: 0.2 }).expect("valid options");
    let names: Vec<&str> = taxonomy.ids().take(60).map(|id| taxonomy.name(id)).collect();
    let mut rng = fork(0x7a78_6f67, "hier-trigram", 0);
    for _ in 0..300 {
        let a = names[rng.gen_index(names.len())];
        let b = names[rng.gen_index(names.len())];
        let core_sim = TrigramSet::new(a).jaccard(&TrigramSet::new(b));
        let llm_sim = trigram_similarity(a, b);
        assert_eq!(core_sim, llm_sim, "trigram similarity diverged on {a:?} vs {b:?}");
    }
    for (a, b) in [
        ("", ""),
        ("ab", "AB"),
        ("ab", "ba"),
        ("a", "abc"),
        ("Emphysema, J43", "emphysema, j43"),
        ("naïve tæxon", "NAÏVE TÆXON"),
        ("x — y", "x—y"),
    ] {
        assert_eq!(
            TrigramSet::new(a).jaccard(&TrigramSet::new(b)),
            trigram_similarity(a, b),
            "trigram similarity diverged on {a:?} vs {b:?}"
        );
    }
}

/// Contract 3b: in-core approximate token counting equals the llm
/// tokenizer's `count` (and its materialized `tokenize().len()`).
#[test]
fn core_token_count_matches_llm_tokenizer() {
    let tokenizer = Tokenizer::default();
    let taxonomy =
        generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 3, scale: 0.05 }).expect("valid options");
    for id in taxonomy.ids().take(120) {
        let name = taxonomy.name(id);
        assert_eq!(
            approx_token_count(name),
            tokenizer.count(name),
            "token count diverged on {name:?}"
        );
    }
    for text in [
        "",
        "   ",
        "word",
        "hyphenated-compound-name, with punctuation!",
        "A) Audio B) Video C) Garden D) Books E) None of the above",
        "supercalifragilisticexpialidocious",
        "naïve — tæxonomy's œuvre",
        "Is `Verbascum chaixii` a kind of Verbascum? (level 7 -> 6)",
    ] {
        let expected = tokenizer.tokenize(text).len();
        assert_eq!(tokenizer.count(text), expected, "tokenizer count/tokenize split on {text:?}");
        assert_eq!(approx_token_count(text), expected, "token count diverged on {text:?}");
    }
}
