//! Property-based tests over the core data structures and pipelines.
//!
//! These run on a small in-tree harness: every property is checked for
//! a fixed number of cases whose inputs are drawn from the workspace's
//! own deterministic [`SynthRng`] (forked per property and case index),
//! so failures are reproducible by construction — the failing case
//! index is printed and re-running the test replays the exact input.

use taxoglimpse::core::parse::{parse_mcq, parse_tf, ParsedAnswer};
use taxoglimpse::core::sampling::cochran_sample_size;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::rng::{fork, Rng, SynthRng};
use taxoglimpse::taxonomy::{validate, Taxonomy};

const PROPTEST_SEED: u64 = 0x7a78_6f67_6c69_6d70; // "taxoglimp"

/// Run `f` for `n` deterministic cases, reporting the failing case
/// index (which is all that's needed to replay it).
fn cases(n: u64, tag: &str, f: impl Fn(&mut SynthRng, u64)) {
    for i in 0..n {
        let mut rng = fork(PROPTEST_SEED, tag, i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, i)));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("property `{tag}` failed at case {i}/{n}: {message}");
        }
    }
}

/// A random well-formed forest described as a parent array where
/// `parents[i] < i` (or none), which guarantees acyclicity at the
/// generator level; `from_edges` must accept it and `validate` must
/// pass.
fn random_forest(rng: &mut SynthRng) -> (Vec<String>, Vec<Option<usize>>) {
    let n = rng.gen_range(1usize..120);
    let names: Vec<String> = (0..n).map(|i| format!("node-{i}")).collect();
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| {
            if i == 0 || rng.gen_bool(0.2) {
                None // roots, roughly one in five
            } else {
                Some(rng.gen_index(i))
            }
        })
        .collect();
    (names, parents)
}

fn random_taxonomy(rng: &mut SynthRng) -> Taxonomy {
    let (names, parents) = random_forest(rng);
    taxoglimpse::taxonomy::TaxonomyBuilder::from_edges("prop", &names, &parents)
        .expect("parents[i] < i is acyclic by construction")
}

/// Every acyclic parent array builds a taxonomy that satisfies all
/// structural invariants.
#[test]
fn from_edges_always_validates() {
    cases(64, "from_edges", |rng, _| {
        let (names, parents) = random_forest(rng);
        let t = taxoglimpse::taxonomy::TaxonomyBuilder::from_edges("prop", &names, &parents).unwrap();
        validate(&t).unwrap();
        assert_eq!(t.len(), names.len());
    });
}

/// TSV and JSON serialization round-trip any taxonomy (canonical
/// structure comparison — ids may be permuted).
#[test]
fn serialization_round_trips() {
    cases(64, "serialization", |rng, _| {
        let t = random_taxonomy(rng);
        let canon = |t: &Taxonomy| {
            let mut v: Vec<(String, usize, Option<String>)> = t
                .ids()
                .map(|id| (t.name(id).to_owned(), t.level(id), t.parent(id).map(|p| t.name(p).to_owned())))
                .collect();
            v.sort();
            v
        };
        let json = Taxonomy::from_json(&t.to_json()).unwrap();
        assert_eq!(canon(&t), canon(&json));
        let tsv = Taxonomy::from_tsv(&t.to_tsv()).unwrap();
        validate(&tsv).unwrap();
        assert_eq!(canon(&t), canon(&tsv));
    });
}

/// Edits preserve invariants and the remap is consistent.
#[test]
fn edits_preserve_invariants() {
    cases(64, "edits", |rng, _| {
        let t = random_taxonomy(rng);
        let cutoff = rng.gen_index(6);
        let out = t.truncate_below(cutoff);
        validate(&out.taxonomy).unwrap();
        for id in t.ids() {
            match out.map(id) {
                Some(new_id) => {
                    assert!(t.level(id) < cutoff);
                    assert_eq!(t.name(id), out.taxonomy.name(new_id));
                    assert_eq!(t.level(id), out.taxonomy.level(new_id));
                }
                None => assert!(t.level(id) >= cutoff),
            }
        }
    });
}

/// Subtree extraction yields a single-rooted, valid taxonomy whose size
/// matches `subtree_size`.
#[test]
fn subtree_extraction_consistent() {
    cases(64, "subtree", |rng, _| {
        let t = random_taxonomy(rng);
        let ids: Vec<_> = t.ids().collect();
        let node = ids[rng.gen_index(ids.len())];
        let out = t.subtree(node);
        validate(&out.taxonomy).unwrap();
        assert_eq!(out.taxonomy.len(), t.subtree_size(node));
        assert_eq!(out.taxonomy.roots().len(), 1);
    });
}

/// Cochran sample sizes are monotone, bounded by the population, and
/// never exceed 385.
#[test]
fn cochran_bounds() {
    cases(64, "cochran", |rng, _| {
        let a = rng.gen_index(3_000_000);
        let b = rng.gen_index(3_000_000);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(cochran_sample_size(lo) <= cochran_sample_size(hi));
        assert!(cochran_sample_size(hi) <= hi.max(1));
        assert!(cochran_sample_size(hi) <= 385);
    });
}

/// The TF parser never panics on arbitrary input, and a canonical
/// decisive suffix always wins when the junk prefix itself is
/// undecided.
#[test]
fn tf_parser_total_and_consistent() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";
    cases(64, "tf_parser", |rng, _| {
        let len = rng.gen_index(41);
        let junk: String =
            (0..len).map(|_| ALPHABET[rng.gen_index(ALPHABET.len())] as char).collect();
        // Totality: no panic on arbitrary input.
        let _ = parse_tf(&junk);
        // Canonical forms always win regardless of surrounding junk
        // (prefix junk must not contain decisive tokens itself).
        let parsed = parse_tf(&format!("{junk} xyzzy yes"));
        if parse_tf(&junk) == ParsedAnswer::Unparsed {
            assert_eq!(parsed, ParsedAnswer::Yes);
        }
    });
}

/// The MCQ parser maps every canonical letter form to its index
/// (exhaustive over the 4 letters × 4 styles).
#[test]
fn mcq_parser_letters() {
    for idx in 0u8..4 {
        for style in 0u8..4 {
            let letter = (b'A' + idx) as char;
            let text = match style {
                0 => format!("{letter}"),
                1 => format!("{letter})"),
                2 => format!("The answer is {letter}."),
                _ => format!("({})", letter.to_ascii_lowercase()),
            };
            assert_eq!(parse_mcq(&text), ParsedAnswer::Option(idx), "{text:?}");
        }
    }
}

/// The binary codec round-trips arbitrary taxonomies and never panics
/// on truncated input.
#[test]
fn binary_codec_round_trips() {
    cases(64, "binary_codec", |rng, _| {
        let t = random_taxonomy(rng);
        let bytes = t.to_binary();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.len(), t.len());
        // Truncation never panics.
        let cut = rng.gen_index(bytes.len());
        let _ = Taxonomy::from_binary(&bytes[..cut]);
    });
}

/// Self-diff is empty; diff against a truncated version reports the
/// removed paths exactly.
#[test]
fn diff_laws() {
    cases(64, "diff", |rng, _| {
        use taxoglimpse::taxonomy::diff::diff;
        let t = random_taxonomy(rng);
        let cutoff = rng.gen_range(1usize..5);
        assert!(diff(&t, &t).is_empty());
        let truncated = t.truncate_below(cutoff).taxonomy;
        let d = diff(&t, &truncated);
        assert!(d.added.is_empty());
        let expected_removed = t.ids().filter(|&id| t.level(id) >= cutoff).count();
        // Moves of unique names can reclassify some removals, but the
        // total change count must cover every removed node.
        assert!(d.total_changes() >= expected_removed.min(1) * usize::from(expected_removed > 0));
        assert_eq!(d.removed.len() + d.moved.len(), expected_removed);
    });
}

/// LCA laws: idempotent, symmetric, level ≤ both inputs' levels, and an
/// ancestor of both.
#[test]
fn lca_laws() {
    cases(64, "lca", |rng, _| {
        let t = random_taxonomy(rng);
        let ids: Vec<_> = t.ids().collect();
        let a = ids[rng.gen_index(ids.len())];
        let b = ids[rng.gen_index(ids.len())];
        assert_eq!(t.lca(a, a), Some(a));
        assert_eq!(t.lca(a, b), t.lca(b, a));
        if let Some(anc) = t.lca(a, b) {
            assert!(t.level(anc) <= t.level(a).min(t.level(b)));
            assert!(t.subsumes(anc, a));
            assert!(t.subsumes(anc, b));
            // Distances are consistent with levels.
            let dist = t.tree_distance(a, b).unwrap();
            assert_eq!(dist, t.level(a) + t.level(b) - 2 * t.level(anc));
        } else {
            assert_ne!(t.root_of(a), t.root_of(b));
        }
    });
}

/// The name index agrees with a linear scan.
#[test]
fn name_index_agrees_with_scan() {
    cases(64, "name_index", |rng, _| {
        let t = random_taxonomy(rng);
        let idx = t.name_index();
        let ids: Vec<_> = t.ids().collect();
        let target = ids[rng.gen_index(ids.len())];
        let name = t.name(target);
        let mut from_index = idx.lookup(name);
        from_index.sort();
        let mut from_scan: Vec<_> =
            t.ids().filter(|&id| t.name(id).eq_ignore_ascii_case(name)).collect();
        from_scan.sort();
        assert_eq!(from_index, from_scan);
    });
}

/// Dataset invariants: unique ids, correct levels, negatives never
/// equal the true parent, MCQ options distinct and containing the
/// parent.
fn check_dataset_invariants(seed: u64, flavor_pick: usize) {
    let flavor = QuestionDataset::ALL[flavor_pick];
    let t = generate(TaxonomyKind::AcmCcs, GenOptions { seed, scale: 0.3 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::AcmCcs, seed)
        .sample_cap(Some(30))
        .build(flavor)
        .unwrap();
    let mut ids = std::collections::HashSet::new();
    for slice in &d.levels {
        for q in &slice.questions {
            assert!(ids.insert(q.id), "duplicate id {}", q.id);
            assert_eq!(q.child_level, slice.child_level);
            assert_eq!(q.parent_level + 1, q.child_level);
            match &q.body {
                taxoglimpse::core::question::QuestionBody::TrueFalse { candidate, expected_yes, .. } => {
                    if *expected_yes {
                        assert_eq!(candidate, &q.true_parent);
                    } else {
                        assert_ne!(candidate, &q.true_parent);
                    }
                }
                taxoglimpse::core::question::QuestionBody::Mcq { options, correct } => {
                    assert_eq!(&options[*correct as usize], &q.true_parent);
                    let mut sorted = options.to_vec();
                    sorted.sort();
                    sorted.dedup();
                    assert_eq!(sorted.len(), 4);
                }
                taxoglimpse::core::question::QuestionBody::Sibling { options, correct } => {
                    if let Some(c) = correct {
                        assert!((*c as usize) < options.len(), "correct index in range");
                    }
                    let mut sorted = options.clone();
                    sorted.sort();
                    sorted.dedup();
                    assert_eq!(sorted.len(), options.len(), "sibling options distinct");
                }
            }
        }
    }
}

/// Dataset invariants hold for random seeds and flavors on a mid-size
/// taxonomy.
#[test]
fn dataset_invariants() {
    cases(12, "dataset", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let flavor_pick = rng.gen_index(3);
        check_dataset_invariants(seed, flavor_pick);
    });
}

/// Regression case once found by randomized search (easy-flavor dataset
/// on seed 466); kept pinned so it is checked every run.
#[test]
fn dataset_invariants_regression_seed_466() {
    check_dataset_invariants(466, 0);
}

/// Simulated model responses always parse to a definite answer (never
/// Unparsed) across models, flavors and settings.
#[test]
fn simulated_responses_always_parse() {
    cases(12, "simulated", |rng, _| {
        let seed = rng.gen_range(0u64..200);
        let model_id = ModelId::ALL[rng.gen_index(ModelId::ALL.len())];
        let zoo = ModelZoo::with_seed(seed);
        let model = zoo.get(model_id).unwrap();
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed, scale: 0.5 }).unwrap();
        for flavor in QuestionDataset::ALL {
            let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, seed)
                .sample_cap(Some(5))
                .build(flavor)
                .unwrap();
            for slice in &d.levels {
                for q in &slice.questions {
                    let prompt = taxoglimpse::core::templates::render_question(q, Default::default());
                    let query =
                        taxoglimpse::core::model::Query::new(&prompt, q, PromptSetting::ZeroShot);
                    let response = model.answer(&query).expect("simulated models never fail");
                    let parsed = match q.kind() {
                        QuestionKind::TrueFalse => parse_tf(&response.text),
                        QuestionKind::Mcq => parse_mcq(&response.text),
                    };
                    assert_ne!(parsed, ParsedAnswer::Unparsed, "{}: {:?}", model_id, response);
                }
            }
        }
    });
}
