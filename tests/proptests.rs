//! Property-based tests over the core data structures and pipelines.

use proptest::prelude::*;
use taxoglimpse::core::parse::{parse_mcq, parse_tf, ParsedAnswer};
use taxoglimpse::core::sampling::cochran_sample_size;
use taxoglimpse::prelude::*;
use taxoglimpse::taxonomy::{validate, Taxonomy};

/// Strategy: a random well-formed forest described as a parent array
/// where `parents[i] < i` (or none), which guarantees acyclicity at the
/// generator level; `from_edges` must accept it and `validate` must
/// pass.
fn forest_strategy() -> impl Strategy<Value = (Vec<String>, Vec<Option<usize>>)> {
    prop::collection::vec(0u32..1_000_000, 1..120).prop_map(|seeds| {
        let n = seeds.len();
        let names: Vec<String> = (0..n).map(|i| format!("node-{i}")).collect();
        let parents: Vec<Option<usize>> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if i == 0 || s % 5 == 0 {
                    None // roots, roughly one in five
                } else {
                    Some((s as usize) % i)
                }
            })
            .collect();
        (names, parents)
    })
}

fn arbitrary_taxonomy() -> impl Strategy<Value = Taxonomy> {
    forest_strategy().prop_map(|(names, parents)| {
        taxoglimpse::taxonomy::TaxonomyBuilder::from_edges("prop", &names, &parents)
            .expect("parents[i] < i is acyclic by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every acyclic parent array builds a taxonomy that satisfies all
    /// structural invariants.
    #[test]
    fn from_edges_always_validates((names, parents) in forest_strategy()) {
        let t = taxoglimpse::taxonomy::TaxonomyBuilder::from_edges("prop", &names, &parents).unwrap();
        validate(&t).unwrap();
        prop_assert_eq!(t.len(), names.len());
    }

    /// TSV and JSON serialization round-trip any taxonomy (canonical
    /// structure comparison — ids may be permuted).
    #[test]
    fn serialization_round_trips(t in arbitrary_taxonomy()) {
        let canon = |t: &Taxonomy| {
            let mut v: Vec<(String, usize, Option<String>)> = t
                .ids()
                .map(|id| (t.name(id).to_owned(), t.level(id), t.parent(id).map(|p| t.name(p).to_owned())))
                .collect();
            v.sort();
            v
        };
        let json = Taxonomy::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(canon(&t), canon(&json));
        let tsv = Taxonomy::from_tsv(&t.to_tsv()).unwrap();
        validate(&tsv).unwrap();
        prop_assert_eq!(canon(&t), canon(&tsv));
    }

    /// Edits preserve invariants and the remap is consistent.
    #[test]
    fn edits_preserve_invariants(t in arbitrary_taxonomy(), cutoff in 0usize..6) {
        let out = t.truncate_below(cutoff);
        validate(&out.taxonomy).unwrap();
        for id in t.ids() {
            match out.map(id) {
                Some(new_id) => {
                    prop_assert!(t.level(id) < cutoff);
                    prop_assert_eq!(t.name(id), out.taxonomy.name(new_id));
                    prop_assert_eq!(t.level(id), out.taxonomy.level(new_id));
                }
                None => prop_assert!(t.level(id) >= cutoff),
            }
        }
    }

    /// Subtree extraction yields a single-rooted, valid taxonomy whose
    /// size matches `subtree_size`.
    #[test]
    fn subtree_extraction_consistent(t in arbitrary_taxonomy(), pick in 0usize..1000) {
        let ids: Vec<_> = t.ids().collect();
        let node = ids[pick % ids.len()];
        let out = t.subtree(node);
        validate(&out.taxonomy).unwrap();
        prop_assert_eq!(out.taxonomy.len(), t.subtree_size(node));
        prop_assert_eq!(out.taxonomy.roots().len(), 1);
    }

    /// Cochran sample sizes are monotone, bounded by the population, and
    /// never exceed 385.
    #[test]
    fn cochran_bounds(a in 0usize..3_000_000, b in 0usize..3_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(cochran_sample_size(lo) <= cochran_sample_size(hi));
        prop_assert!(cochran_sample_size(hi) <= hi.max(1));
        prop_assert!(cochran_sample_size(hi) <= 385);
    }

    /// The TF parser never mistakes arbitrary junk for an abstention
    /// marker-free Yes/No unless a decisive token is present; and always
    /// classifies its own canonical renderings.
    #[test]
    fn tf_parser_total_and_consistent(junk in "[a-z ]{0,40}") {
        // Totality: no panic on arbitrary input.
        let _ = parse_tf(&junk);
        // Canonical forms always win regardless of surrounding junk
        // (prefix junk must not contain decisive tokens itself).
        let parsed = parse_tf(&format!("{junk} xyzzy yes"));
        if parse_tf(&junk) == ParsedAnswer::Unparsed {
            prop_assert_eq!(parsed, ParsedAnswer::Yes);
        }
    }

    /// The MCQ parser maps every canonical letter form to its index.
    #[test]
    fn mcq_parser_letters(idx in 0u8..4, style in 0u8..4) {
        let letter = (b'A' + idx) as char;
        let text = match style {
            0 => format!("{letter}"),
            1 => format!("{letter})"),
            2 => format!("The answer is {letter}."),
            _ => format!("({})", letter.to_ascii_lowercase()),
        };
        prop_assert_eq!(parse_mcq(&text), ParsedAnswer::Option(idx));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary codec round-trips arbitrary taxonomies and never
    /// panics on truncated input.
    #[test]
    fn binary_codec_round_trips(t in arbitrary_taxonomy(), cut_frac in 0.0f64..1.0) {
        let bytes = t.to_binary();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        prop_assert_eq!(back.len(), t.len());
        // Truncation never panics.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let _ = Taxonomy::from_binary(&bytes[..cut]);
        }
    }

    /// Self-diff is empty; diff against a truncated version reports the
    /// removed paths exactly.
    #[test]
    fn diff_laws(t in arbitrary_taxonomy(), cutoff in 1usize..5) {
        use taxoglimpse::taxonomy::diff::diff;
        prop_assert!(diff(&t, &t).is_empty());
        let truncated = t.truncate_below(cutoff).taxonomy;
        let d = diff(&t, &truncated);
        prop_assert!(d.added.is_empty());
        let expected_removed = t.ids().filter(|&id| t.level(id) >= cutoff).count();
        // Moves of unique names can reclassify some removals, but the
        // total change count must cover every removed node.
        prop_assert!(d.total_changes() >= expected_removed.min(1) * usize::from(expected_removed > 0));
        prop_assert_eq!(d.removed.len() + d.moved.len(), expected_removed);
    }

    /// LCA laws: idempotent, symmetric, level ≤ both inputs' levels, and
    /// an ancestor of both.
    #[test]
    fn lca_laws(t in arbitrary_taxonomy(), i in 0usize..1000, j in 0usize..1000) {
        let ids: Vec<_> = t.ids().collect();
        let a = ids[i % ids.len()];
        let b = ids[j % ids.len()];
        prop_assert_eq!(t.lca(a, a), Some(a));
        prop_assert_eq!(t.lca(a, b), t.lca(b, a));
        if let Some(anc) = t.lca(a, b) {
            prop_assert!(t.level(anc) <= t.level(a).min(t.level(b)));
            prop_assert!(t.subsumes(anc, a));
            prop_assert!(t.subsumes(anc, b));
            // Distances are consistent with levels.
            let dist = t.tree_distance(a, b).unwrap();
            prop_assert_eq!(dist, t.level(a) + t.level(b) - 2 * t.level(anc));
        } else {
            prop_assert_ne!(t.root_of(a), t.root_of(b));
        }
    }

    /// The name index agrees with a linear scan.
    #[test]
    fn name_index_agrees_with_scan(t in arbitrary_taxonomy(), pick in 0usize..1000) {
        let idx = t.name_index();
        let ids: Vec<_> = t.ids().collect();
        let target = ids[pick % ids.len()];
        let name = t.name(target);
        let mut from_index = idx.lookup(name);
        from_index.sort();
        let mut from_scan: Vec<_> = t.ids().filter(|&id| t.name(id).eq_ignore_ascii_case(name)).collect();
        from_scan.sort();
        prop_assert_eq!(from_index, from_scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dataset invariants hold for random seeds and scales on a mid-size
    /// taxonomy: unique ids, correct levels, negatives never equal the
    /// true parent, MCQ options distinct and containing the parent.
    #[test]
    fn dataset_invariants(seed in 0u64..1000, flavor_pick in 0usize..3) {
        let flavor = QuestionDataset::ALL[flavor_pick];
        let t = generate(TaxonomyKind::AcmCcs, GenOptions { seed, scale: 0.3 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::AcmCcs, seed)
            .sample_cap(Some(30))
            .build(flavor)
            .unwrap();
        let mut ids = std::collections::HashSet::new();
        for slice in &d.levels {
            for q in &slice.questions {
                prop_assert!(ids.insert(q.id), "duplicate id {}", q.id);
                prop_assert_eq!(q.child_level, slice.child_level);
                prop_assert_eq!(q.parent_level + 1, q.child_level);
                match &q.body {
                    taxoglimpse::core::question::QuestionBody::TrueFalse { candidate, expected_yes, .. } => {
                        if *expected_yes {
                            prop_assert_eq!(candidate, &q.true_parent);
                        } else {
                            prop_assert_ne!(candidate, &q.true_parent);
                        }
                    }
                    taxoglimpse::core::question::QuestionBody::Mcq { options, correct } => {
                        prop_assert_eq!(&options[*correct as usize], &q.true_parent);
                        let mut sorted = options.to_vec();
                        sorted.sort();
                        sorted.dedup();
                        prop_assert_eq!(sorted.len(), 4);
                    }
                }
            }
        }
    }

    /// Simulated model responses always parse to a definite answer
    /// (never Unparsed) across models, flavors and settings.
    #[test]
    fn simulated_responses_always_parse(seed in 0u64..200, model_pick in 0usize..18) {
        let model_id = ModelId::ALL[model_pick];
        let zoo = ModelZoo::with_seed(seed);
        let model = zoo.get(model_id).unwrap();
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed, scale: 0.5 }).unwrap();
        for flavor in QuestionDataset::ALL {
            let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, seed)
                .sample_cap(Some(5))
                .build(flavor)
                .unwrap();
            for slice in &d.levels {
                for q in &slice.questions {
                    let prompt = taxoglimpse::core::templates::render_question(q, Default::default());
                    let query = taxoglimpse::core::model::Query {
                        prompt,
                        question: q,
                        setting: PromptSetting::ZeroShot,
                    };
                    let response = model.answer(&query);
                    let parsed = match q.kind() {
                        QuestionKind::TrueFalse => parse_tf(&response),
                        QuestionKind::Mcq => parse_mcq(&response),
                    };
                    prop_assert_ne!(parsed, ParsedAnswer::Unparsed, "{}: {:?}", model_id, response);
                }
            }
        }
    }
}
