//! Tier-1 gate: the workspace must be lint-clean.
//!
//! This is the test-side half of the contract `scripts/verify.sh`
//! enforces with `cargo run -p taxoglimpse-lint -- --workspace --check`:
//! any unsuppressed D001/D002/D003/C001/M001 finding — or a
//! `lint:allow` that no longer fires (U001) — fails `cargo test`.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = taxoglimpse_lint::lint_workspace(root).expect("workspace sources readable");
    assert!(
        report.findings.is_empty(),
        "lint findings in the workspace:\n{}",
        report.render_table()
    );
    // Sanity: the walker actually visited the tree (root src + crates).
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
}

#[test]
fn lint_report_json_is_schema_valid() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = taxoglimpse_lint::lint_workspace(root).expect("workspace sources readable");
    let text = report.to_json().render_pretty();
    let doc = taxoglimpse::json::from_str_value(&text).expect("report JSON parses");
    let n = taxoglimpse_lint::validate_report(&doc).expect("report JSON is schema-valid");
    assert_eq!(n, report.findings.len());
}
