//! Tier-1 gate: the workspace must be lint-clean.
//!
//! This is the test-side half of the contract `scripts/verify.sh`
//! enforces with `cargo run -p taxoglimpse-lint -- --workspace --check`:
//! any unsuppressed finding from the token rules
//! (D001/D002/D003/C001/M001), the interprocedural passes
//! (D101/L001/L002/P001), the linter's own registry self-check (S001),
//! or a `lint:allow` that no longer fires (U001) — fails `cargo test`.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = taxoglimpse_lint::lint_workspace(root).expect("workspace sources readable");
    assert!(
        report.findings.is_empty(),
        "lint findings in the workspace:\n{}",
        report.render_table()
    );
    // Sanity: the walker actually visited the tree (root src + crates).
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
}

#[test]
fn lint_report_json_is_schema_valid() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = taxoglimpse_lint::lint_workspace(root).expect("workspace sources readable");
    assert_eq!(taxoglimpse_lint::SCHEMA_VERSION, 2);
    let text = report.to_json().render_pretty();
    let doc = taxoglimpse::json::from_str_value(&text).expect("report JSON parses");
    let n = taxoglimpse_lint::validate_report(&doc).expect("report JSON is schema-valid");
    assert_eq!(n, report.findings.len());
}

#[test]
fn interprocedural_passes_are_armed_against_this_workspace() {
    // A clean report proves nothing if the new passes never ran. Check
    // the engine end-to-end against the real tree: the call graph must
    // resolve the known model-under-lock shape in `Resilient::answer`,
    // and that site must carry a live L002 suppression (the allow is
    // consumed, so the report stays clean).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = taxoglimpse_lint::lint_workspace(root).expect("workspace sources readable");
    assert!(report.findings.is_empty(), "{}", report.render_table());
    assert!(
        report.allows_used >= 13,
        "expected the triaged L002/P001 suppressions to fire; only {} allow(s) used",
        report.allows_used
    );

    let graph_json = taxoglimpse_lint::workspace_graph_json(root).expect("graph builds");
    let doc = taxoglimpse::json::from_str_value(&graph_json).expect("graph JSON parses");
    let rendered = doc.render_pretty();
    for expected in [
        "core::resilience::Resilient::answer",
        "core::resilience::ResilienceSession::call",
        "core::shard::run_sharded",
        "core::eval",
    ] {
        assert!(rendered.contains(expected), "call graph is missing `{expected}`");
    }
}
