//! Quantitative reproduction tests: measured results vs the paper's
//! published tables, with tolerances. Table 1 must match exactly;
//! Table 4 within Cochran-rounding slack; Tables 5–7 cells within a few
//! accuracy points for a representative model subset.

use taxoglimpse::llm::calib;
use taxoglimpse::prelude::*;
use taxoglimpse::report::compare::ComparisonSummary;
use taxoglimpse::taxonomy::TaxonomyStats;

/// Table 1 — exact at scale 1.0 (NCBI excluded here for test speed; it
/// is covered exactly by `crates/synth` unit tests and the table1
/// binary).
#[test]
fn table_1_shapes_exact() {
    let expected: &[(TaxonomyKind, &[usize])] = &[
        (TaxonomyKind::Ebay, &[13, 110, 472]),
        (TaxonomyKind::Google, &[21, 192, 1349, 2203, 1830]),
        (TaxonomyKind::Schema, &[3, 17, 215, 403, 436, 272]),
        (TaxonomyKind::AcmCcs, &[13, 84, 543, 1087, 386]),
        (TaxonomyKind::GeoNames, &[9, 680]),
        (TaxonomyKind::Glottolog, &[245, 712, 1048, 1205, 1366, 7393]),
        (TaxonomyKind::Icd10Cm, &[22, 155, 963, 3383]),
        (TaxonomyKind::Oae, &[181, 1854, 3817, 2587, 1108]),
    ];
    for &(kind, shape) in expected {
        let t = generate(kind, GenOptions { seed: 2024, scale: 1.0 }).unwrap();
        let stats = TaxonomyStats::compute(&t);
        assert_eq!(stats.nodes_per_level, shape, "{kind}");
        taxoglimpse::taxonomy::validate(&t).unwrap();
    }
}

/// Table 4 — dataset totals per taxonomy within rounding slack of the
/// paper (our Cochran rounding differs from the Qualtrics calculator by
/// a couple of samples on small levels).
#[test]
fn table_4_dataset_totals() {
    // (kind, scale-immune?, paper easy total, paper MCQ total)
    let expected = [
        (TaxonomyKind::Ebay, 606usize, 303usize),
        (TaxonomyKind::Google, 2150, 1075),
        (TaxonomyKind::Schema, 1434, 717),
        (TaxonomyKind::AcmCcs, 1542, 771),
        (TaxonomyKind::GeoNames, 492, 246),
        (TaxonomyKind::Glottolog, 2980, 1490),
        (TaxonomyKind::Icd10Cm, 1462, 731),
        (TaxonomyKind::Oae, 2580, 1290),
    ];
    for (kind, easy_total, mcq_total) in expected {
        let t = generate(kind, GenOptions { seed: 2024, scale: 1.0 }).unwrap();
        let b = DatasetBuilder::new(&t, kind, 2024);
        let easy = b.build(QuestionDataset::Easy).unwrap().len();
        let mcq = b.build(QuestionDataset::Mcq).unwrap().len();
        let slack_easy = (easy_total / 50).max(12); // ~2%
        let slack_mcq = (mcq_total / 50).max(6);
        assert!(
            easy.abs_diff(easy_total) <= slack_easy,
            "{kind} easy: ours {easy} vs paper {easy_total}"
        );
        assert!(
            mcq.abs_diff(mcq_total) <= slack_mcq,
            "{kind} mcq: ours {mcq} vs paper {mcq_total}"
        );
    }
}

/// Table 4 — the hard dataset can be slightly smaller than the easy one
/// (children without uncles are skipped), exactly like the paper's
/// Google column (2134 hard vs 2150 easy).
#[test]
fn table_4_hard_at_most_easy() {
    for kind in [TaxonomyKind::Google, TaxonomyKind::Glottolog, TaxonomyKind::AcmCcs] {
        let t = generate(kind, GenOptions { seed: 2024, scale: 1.0 }).unwrap();
        let b = DatasetBuilder::new(&t, kind, 2024);
        let easy = b.build(QuestionDataset::Easy).unwrap().len();
        let hard = b.build(QuestionDataset::Hard).unwrap().len();
        assert!(hard <= easy, "{kind}: hard {hard} > easy {easy}");
        assert!(hard * 100 >= easy * 95, "{kind}: hard {hard} too far below easy {easy}");
    }
}

fn measure_grid(
    models: &[ModelId],
    kinds: &[(TaxonomyKind, f64)],
    flavor: QuestionDataset,
) -> ComparisonSummary {
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();
    let mut reports = Vec::new();
    for &(kind, scale) in kinds {
        let t = generate(kind, GenOptions { seed: 4242, scale }).unwrap();
        let d = DatasetBuilder::new(&t, kind, 4242).build(flavor).unwrap();
        for &model in models {
            let report = evaluator.run(zoo.get(model).unwrap().as_ref(), &d);
            reports.push((model, report));
        }
    }
    ComparisonSummary::from_reports(flavor, &reports)
}

const GRID_MODELS: [ModelId; 6] = [
    ModelId::Gpt4,
    ModelId::Gpt35,
    ModelId::Llama2_70b,
    ModelId::FlanT5_3b,
    ModelId::Falcon7b,
    ModelId::Llms4Ol,
];

const GRID_KINDS: [(TaxonomyKind, f64); 5] = [
    (TaxonomyKind::Ebay, 1.0),
    (TaxonomyKind::Google, 1.0),
    (TaxonomyKind::Schema, 1.0),
    (TaxonomyKind::Glottolog, 1.0),
    (TaxonomyKind::Icd10Cm, 1.0),
];

/// Tables 5–7 — measured accuracy/miss land near the paper's cells and
/// the per-taxonomy winners agree.
#[test]
fn tables_5_6_7_cells_near_paper() {
    for flavor in QuestionDataset::ALL {
        let summary = measure_grid(&GRID_MODELS, &GRID_KINDS, flavor);
        assert!(
            summary.mean_delta_a() < 0.05,
            "{flavor}: mean |dA| {}",
            summary.mean_delta_a()
        );
        assert!(
            summary.mean_delta_m() < 0.05,
            "{flavor}: mean |dM| {}",
            summary.mean_delta_m()
        );
        assert!(
            summary.max_delta_a() < 0.15,
            "{flavor}: max |dA| {}",
            summary.max_delta_a()
        );
        assert!(
            summary.winner_agreement() >= 0.6,
            "{flavor}: winner agreement {}",
            summary.winner_agreement()
        );
    }
}

/// §4.1 headline numbers re-measured: on the NCBI/Glottolog/GeoNames
/// hard datasets, the best model accuracy is only around 70%.
#[test]
fn specialized_hard_top_accuracy_is_about_seventy_percent() {
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();
    for (kind, scale) in [
        (TaxonomyKind::Glottolog, 1.0),
        (TaxonomyKind::GeoNames, 1.0),
        (TaxonomyKind::Ncbi, 0.005),
    ] {
        let t = generate(kind, GenOptions { seed: 7, scale }).unwrap();
        let d = DatasetBuilder::new(&t, kind, 7).build(QuestionDataset::Hard).unwrap();
        let best = ModelId::ALL
            .iter()
            .map(|&m| evaluator.run(zoo.get(m).unwrap().as_ref(), &d).overall.accuracy())
            .fold(0.0f64, f64::max);
        assert!(
            (0.60..=0.82).contains(&best),
            "{kind}: best accuracy {best:.3}, paper says around 70%"
        );
    }
}

/// The calibration tables themselves must match a couple of cells the
/// paper text highlights verbatim.
#[test]
fn calibration_spot_checks_from_the_text() {
    // "the average miss rates of the Llama-3-70B model reduce from
    // 0.151 on the Hard datasets to 0.005 on the MCQ datasets."
    assert!((calib::mean_miss(ModelId::Llama3_70b, QuestionDataset::Hard) - 0.151).abs() < 0.005);
    assert!(calib::mean_miss(ModelId::Llama3_70b, QuestionDataset::Mcq) < 0.01);
    // "LLMs4OL boosts the averaged accuracy of Flan-T5-3B by 12.9%,
    // 12.9%, and 17.0% on the easy, hard, and MCQ datasets."
    let uplift = |flavor| {
        calib::mean_accuracy(ModelId::Llms4Ol, flavor) / calib::mean_accuracy(ModelId::FlanT5_3b, flavor)
            - 1.0
    };
    assert!((uplift(QuestionDataset::Easy) - 0.129).abs() < 0.02);
    assert!((uplift(QuestionDataset::Hard) - 0.129).abs() < 0.02);
    assert!((uplift(QuestionDataset::Mcq) - 0.170).abs() < 0.02);
}
