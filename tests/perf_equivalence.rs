//! Equivalence guarantees for the allocation-free hot path and the
//! chunked grid scheduler: every fast path must produce byte-identical
//! results to its straightforward counterpart.
//!
//! Three groups, matching the three tentpole optimisations:
//! * chunked-parallel [`GridRunner`] output equals a sequential
//!   [`Evaluator`] pass, across thread counts and chunk sizes;
//! * cached-prefix prompt rendering equals fresh whole-prompt renders
//!   for every `PromptSetting × TemplateVariant`;
//! * the [`SimilarityCache`] interner equals direct
//!   `trigram_similarity` on a fuzz-style name corpus.
//!
//! PR 4 adds the data-production side: chunk-indexed parallel
//! generation must be digest-identical across worker counts (and feed
//! the evaluator identically), and the snapshot cache must round-trip
//! taxonomies byte-exactly — or fall back to regeneration, never to a
//! wrong answer.

use taxoglimpse::core::dataset::Dataset;
use taxoglimpse::synth::{generate_par, PAR_STREAM_VERSION};
use taxoglimpse::taxonomy::snapshot::SnapshotStore;
use taxoglimpse::core::eval::{EvalConfig, Evaluator};
use taxoglimpse::core::grid::GridRunner;
use taxoglimpse::core::model::LanguageModel;
use taxoglimpse::core::prompts::{render_prefix, render_prompt, render_prompt_into};
use taxoglimpse::core::templates::TemplateVariant;
use taxoglimpse::llm::knowledge::trigram_similarity;
use taxoglimpse::llm::similarity::SimilarityCache;
use taxoglimpse::prelude::*;

fn datasets() -> Vec<Dataset> {
    [
        (TaxonomyKind::Ebay, QuestionDataset::Hard),
        (TaxonomyKind::Ncbi, QuestionDataset::Easy),
        (TaxonomyKind::Oae, QuestionDataset::Mcq),
    ]
    .into_iter()
    .map(|(kind, flavor)| {
        let scale = if kind == TaxonomyKind::Ncbi { 0.01 } else { 0.3 };
        let t = generate(kind, GenOptions { seed: 17, scale }).unwrap();
        DatasetBuilder::new(&t, kind, 17).sample_cap(Some(60)).build(flavor).unwrap()
    })
    .collect()
}

/// Chunked-parallel grid output must be byte-identical to a plain
/// sequential evaluator pass — for every thread count and chunk size,
/// including a chunk of 1 and a chunk larger than any dataset.
#[test]
fn chunked_parallel_grid_is_byte_identical_to_sequential() {
    let ds = datasets();
    let dataset_refs: Vec<&Dataset> = ds.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let gpt4 = zoo.get(ModelId::Gpt4).unwrap();
    let flan = zoo.get(ModelId::FlanT5_3b).unwrap();
    let models: Vec<&dyn LanguageModel> = vec![gpt4.as_ref(), flan.as_ref()];

    for setting in PromptSetting::ALL {
        let config = EvalConfig { setting, ..Default::default() };
        let evaluator = Evaluator::builder().with_config(config).build();
        let sequential: Vec<String> = models
            .iter()
            .flat_map(|m| dataset_refs.iter().map(|d| {
                taxoglimpse::json::to_string(&evaluator.run(*m, d)).unwrap()
            }))
            .collect();

        for threads in [1usize, 2, 8] {
            for chunk in [1usize, 7, usize::MAX] {
                let reports = GridRunner::builder()
                    .with_config(config)
                    .with_threads(threads)
                    .with_chunk_size(chunk)
                    .build()
                    .run_cross(&models, &dataset_refs);
                let rendered: Vec<String> = reports
                    .iter()
                    .map(|r| taxoglimpse::json::to_string(r).unwrap())
                    .collect();
                assert_eq!(
                    rendered, sequential,
                    "setting {setting}, threads {threads}, chunk {chunk}"
                );
            }
        }
    }
}

/// Prompts assembled from a cached per-level prefix must equal a fresh
/// whole-prompt render for every setting × template variant.
#[test]
fn cached_prefix_prompts_equal_fresh_renders() {
    let ds = datasets();
    for dataset in &ds {
        for setting in PromptSetting::ALL {
            for variant in TemplateVariant::ALL {
                for slice in &dataset.levels {
                    let prefix =
                        render_prefix(setting, variant, &slice.exemplars, PromptSetting::SHOTS);
                    // The buffer is deliberately reused across questions
                    // and (dirty) across settings — render_prompt_into
                    // must fully overwrite it.
                    let mut buf = String::from("stale content from a previous query");
                    for question in &slice.questions {
                        render_prompt_into(question, setting, variant, &prefix, &mut buf);
                        let fresh = render_prompt(question, setting, variant, &slice.exemplars);
                        assert_eq!(buf, fresh, "{setting} {variant:?}");
                    }
                }
            }
        }
    }
}

/// The interner must agree exactly with the direct trigram similarity
/// on a fuzz-style corpus: real generated taxonomy names (repeated, so
/// the cached path is actually exercised) plus adversarial edge cases.
#[test]
fn similarity_cache_matches_direct_on_fuzz_corpus() {
    let mut corpus: Vec<String> = vec![
        String::new(),
        "a".into(),
        "ab".into(),
        "abc".into(),
        "ABC".into(),
        "aBc".into(),
        "CARS".into(),
        "cars".into(),
        "Pencils".into(),
        "pencil".into(),
        "  spaced  name ".into(),
        "naïve café names".into(),
        "ends with s".into(),
        "ENDS WITH S".into(),
        "日本語 ラベル".into(),
        "mixed 日本語 tail s".into(),
    ];
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 23, scale: 0.1 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Amazon, 23)
        .sample_cap(Some(30))
        .build(QuestionDataset::Hard)
        .unwrap();
    for q in d.questions().take(40) {
        corpus.push(q.child.clone());
        corpus.push(q.true_parent.clone());
    }

    let cache = SimilarityCache::new();
    // Two passes: the first populates the interner, the second is served
    // entirely from cached entries. Both must agree with the direct
    // computation bit-for-bit (f64 equality, not approximate).
    for _ in 0..2 {
        for a in &corpus {
            for b in &corpus {
                let direct = trigram_similarity(a, b);
                let cached = cache.similarity(a, b);
                assert!(
                    cached == direct,
                    "similarity({a:?}, {b:?}): cached {cached} != direct {direct}"
                );
            }
        }
    }
}

/// Parallel generation must produce the same content digest no matter
/// how many workers run — for every taxonomy kind, across worker
/// counts 1, 2 and 8. The chunk-indexed streams make the partition
/// (and therefore the bytes) a function of the options alone.
#[test]
fn parallel_generation_digest_is_worker_count_invariant() {
    let options = GenOptions { seed: 29, scale: 0.05 };
    for kind in TaxonomyKind::ALL {
        let digests: Vec<u64> = [1usize, 2, 8]
            .into_iter()
            .map(|workers| generate_par(kind, options, workers).unwrap().content_digest())
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{kind:?}: digests differ across worker counts: {digests:x?}"
        );
    }
}

/// Evaluation reports built on taxonomies from different worker counts
/// must be byte-identical — the digest equality above, pushed through
/// the whole pipeline (dataset sampling included, which walks the
/// taxonomy directly). Worker count is an execution detail; nothing
/// downstream may observe it.
#[test]
fn reports_are_worker_count_invariant() {
    let options = GenOptions { seed: 31, scale: 0.02 };
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    let evaluator = Evaluator::default();
    for kind in [TaxonomyKind::Ncbi, TaxonomyKind::Glottolog] {
        let one = generate_par(kind, options, 1).unwrap();
        let eight = generate_par(kind, options, 8).unwrap();
        let rendered = [&one, &eight].map(|t| {
            let d = DatasetBuilder::new(t, kind, 31)
                .sample_cap(Some(40))
                .build(QuestionDataset::Easy)
                .unwrap();
            taxoglimpse::json::to_string(&evaluator.run(model.as_ref(), &d)).unwrap()
        });
        assert_eq!(rendered[0], rendered[1], "{kind:?}");
    }
}

/// PR 6: the batched executor and the response cache are pure execution
/// details. Reports must be byte-identical across batch sizes {1, 32,
/// 256} × worker counts {1, 2, 8}, with the cache off, cold, and warm
/// — all compared against the plain sequential evaluator pass.
#[test]
fn batched_and_cached_grid_is_byte_identical_to_sequential() {
    use std::sync::Arc;

    let ds = datasets();
    let dataset_refs: Vec<&Dataset> = ds.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let gpt4 = zoo.get(ModelId::Gpt4).unwrap();
    let flan = zoo.get(ModelId::FlanT5_3b).unwrap();

    for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
        let config = EvalConfig { setting, ..Default::default() };
        let evaluator = Evaluator::builder().with_config(config).build();
        let sequential: Vec<String> = [gpt4.as_ref(), flan.as_ref()]
            .iter()
            .flat_map(|m| {
                dataset_refs
                    .iter()
                    .map(|d| taxoglimpse::json::to_string(&evaluator.run(*m, d)).unwrap())
            })
            .collect();

        for batch in [1usize, 32, 256] {
            for threads in [1usize, 2, 8] {
                for cache_on in [false, true] {
                    let shared = Arc::new(ResponseCache::new());
                    let cached = [Arc::clone(&gpt4), Arc::clone(&flan)]
                        .map(|m| CachedModel::with_cache(m, Arc::clone(&shared)));
                    let models: Vec<&dyn LanguageModel> = if cache_on {
                        cached.iter().map(|m| m as &dyn LanguageModel).collect()
                    } else {
                        vec![gpt4.as_ref(), flan.as_ref()]
                    };
                    let runner = GridRunner::builder()
                        .with_config(config)
                        .with_threads(threads)
                        .with_chunk_size(16)
                        .with_batch_size(batch)
                        .build();
                    // Two passes with the same cache: the first runs
                    // cold (filling it), the second warm (served from
                    // it). Both must equal the sequential bytes.
                    for pass in ["cold", "warm"] {
                        let rendered: Vec<String> = runner
                            .run_cross(&models, &dataset_refs)
                            .iter()
                            .map(|r| taxoglimpse::json::to_string(r).unwrap())
                            .collect();
                        assert_eq!(
                            rendered, sequential,
                            "setting {setting}, batch {batch}, threads {threads}, \
                             cache {cache_on} ({pass})"
                        );
                        if !cache_on {
                            break;
                        }
                    }
                    if cache_on {
                        let stats = shared.stats();
                        assert!(
                            stats.hits > 0 && stats.misses > 0,
                            "warm pass must actually hit: {stats:?}"
                        );
                    }
                }
            }
        }
    }
}

/// The same invariance under the PR 5 fault/resilience stack: with a
/// deterministic fault plan injecting failures around a cached model
/// (`FaultInjector<CachedModel<_>>` — the cache only ever sees
/// successful deliveries), reports stay byte-identical across batch
/// sizes, worker counts, and cache off/cold/warm.
#[test]
fn batched_and_cached_grid_is_fault_invariant() {
    use std::sync::Arc;
    use taxoglimpse::core::resilience::ResiliencePolicy;
    use taxoglimpse::llm::faults::{FaultInjector, FaultPlan};

    let ds = datasets();
    let dataset_refs: Vec<&Dataset> = ds.iter().collect();
    let plan = FaultPlan::uniform(0x5EED_FA17, 0.3);
    let policy = ResiliencePolicy::default().with_max_attempts(4).without_breaker();
    let config = EvalConfig::default();

    let sequential: Vec<String> = {
        let model =
            FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan.clone());
        let evaluator = Evaluator::builder().with_config(config).build().with_resilience(policy);
        dataset_refs
            .iter()
            .map(|d| taxoglimpse::json::to_string(&evaluator.run(&model, d)).unwrap())
            .collect()
    };

    for batch in [1usize, 32, 256] {
        for threads in [1usize, 2, 8] {
            for cache_on in [false, true] {
                let shared = Arc::new(ResponseCache::new());
                let cached = FaultInjector::new(
                    CachedModel::with_cache(SimulatedLlm::new(ModelId::Gpt4), Arc::clone(&shared)),
                    plan.clone(),
                );
                let plain =
                    FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan.clone());
                let models: Vec<&dyn LanguageModel> = if cache_on {
                    vec![&cached]
                } else {
                    vec![&plain]
                };
                let runner = GridRunner::builder()
                    .with_config(config)
                    .with_threads(threads)
                    .with_chunk_size(16)
                    .with_batch_size(batch)
                    .with_resilience(policy)
                    .build();
                for pass in ["cold", "warm"] {
                    let rendered: Vec<String> = runner
                        .run_cross(&models, &dataset_refs)
                        .iter()
                        .map(|r| taxoglimpse::json::to_string(r).unwrap())
                        .collect();
                    assert_eq!(
                        rendered, sequential,
                        "batch {batch}, threads {threads}, cache {cache_on} ({pass})"
                    );
                    if !cache_on {
                        break;
                    }
                }
            }
        }
    }
}

/// A saved snapshot must load back digest-identical, and a corrupted
/// one must miss (load → `None`) and regenerate through
/// `load_or_generate` — silently serving corrupt bytes is the one
/// unacceptable outcome for a cache.
#[test]
fn snapshot_round_trips_and_corruption_falls_back_to_regeneration() {
    let dir = std::env::temp_dir().join("taxoglimpse-perf-equiv-snap");
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::new(&dir);
    let options = GenOptions { seed: 37, scale: 0.05 };
    let t = generate_par(TaxonomyKind::Glottolog, options, 2).unwrap();
    let key = SnapshotStore::key(t.label(), options.seed, options.scale, PAR_STREAM_VERSION);

    store.save(&key, &t).unwrap();
    let loaded = store.load(&key).expect("fresh snapshot must hit");
    assert_eq!(loaded.content_digest(), t.content_digest());
    assert_eq!(loaded.to_binary(), t.to_binary(), "round-trip is byte-exact");

    // Flip one byte in the middle of the payload: the checksum must
    // reject it, and load_or_generate must transparently regenerate.
    let path = store.path_for(&key);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(store.load(&key).is_none(), "corrupt snapshot must miss");
    let mut regenerated = 0;
    let back = store.load_or_generate(&key, || {
        regenerated += 1;
        generate_par(TaxonomyKind::Glottolog, options, 2).unwrap()
    });
    assert_eq!(regenerated, 1, "corruption must force regeneration");
    assert_eq!(back.content_digest(), t.content_digest());
    // The regenerated taxonomy was re-saved; the store must hit again.
    assert_eq!(store.load(&key).expect("re-saved").content_digest(), t.content_digest());
    let _ = std::fs::remove_dir_all(&dir);
}
