//! Equivalence guarantees for the allocation-free hot path and the
//! chunked grid scheduler: every fast path must produce byte-identical
//! results to its straightforward counterpart.
//!
//! Three groups, matching the three tentpole optimisations:
//! * chunked-parallel [`GridRunner`] output equals a sequential
//!   [`Evaluator`] pass, across thread counts and chunk sizes;
//! * cached-prefix prompt rendering equals fresh whole-prompt renders
//!   for every `PromptSetting × TemplateVariant`;
//! * the [`SimilarityCache`] interner equals direct
//!   `trigram_similarity` on a fuzz-style name corpus.

use taxoglimpse::core::dataset::Dataset;
use taxoglimpse::core::eval::{EvalConfig, Evaluator};
use taxoglimpse::core::grid::GridRunner;
use taxoglimpse::core::model::LanguageModel;
use taxoglimpse::core::prompts::{render_prefix, render_prompt, render_prompt_into};
use taxoglimpse::core::templates::TemplateVariant;
use taxoglimpse::llm::knowledge::trigram_similarity;
use taxoglimpse::llm::similarity::SimilarityCache;
use taxoglimpse::prelude::*;

fn datasets() -> Vec<Dataset> {
    [
        (TaxonomyKind::Ebay, QuestionDataset::Hard),
        (TaxonomyKind::Ncbi, QuestionDataset::Easy),
        (TaxonomyKind::Oae, QuestionDataset::Mcq),
    ]
    .into_iter()
    .map(|(kind, flavor)| {
        let scale = if kind == TaxonomyKind::Ncbi { 0.01 } else { 0.3 };
        let t = generate(kind, GenOptions { seed: 17, scale }).unwrap();
        DatasetBuilder::new(&t, kind, 17).sample_cap(Some(60)).build(flavor).unwrap()
    })
    .collect()
}

/// Chunked-parallel grid output must be byte-identical to a plain
/// sequential evaluator pass — for every thread count and chunk size,
/// including a chunk of 1 and a chunk larger than any dataset.
#[test]
fn chunked_parallel_grid_is_byte_identical_to_sequential() {
    let ds = datasets();
    let dataset_refs: Vec<&Dataset> = ds.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let gpt4 = zoo.get(ModelId::Gpt4).unwrap();
    let flan = zoo.get(ModelId::FlanT5_3b).unwrap();
    let models: Vec<&dyn LanguageModel> = vec![gpt4.as_ref(), flan.as_ref()];

    for setting in PromptSetting::ALL {
        let config = EvalConfig { setting, ..Default::default() };
        let evaluator = Evaluator::new(config);
        let sequential: Vec<String> = models
            .iter()
            .flat_map(|m| dataset_refs.iter().map(|d| {
                taxoglimpse::json::to_string(&evaluator.run(*m, d)).unwrap()
            }))
            .collect();

        for threads in [1usize, 2, 8] {
            for chunk in [1usize, 7, usize::MAX] {
                let reports = GridRunner::new(config, threads)
                    .with_chunk_size(chunk)
                    .run_cross(&models, &dataset_refs);
                let rendered: Vec<String> = reports
                    .iter()
                    .map(|r| taxoglimpse::json::to_string(r).unwrap())
                    .collect();
                assert_eq!(
                    rendered, sequential,
                    "setting {setting}, threads {threads}, chunk {chunk}"
                );
            }
        }
    }
}

/// Prompts assembled from a cached per-level prefix must equal a fresh
/// whole-prompt render for every setting × template variant.
#[test]
fn cached_prefix_prompts_equal_fresh_renders() {
    let ds = datasets();
    for dataset in &ds {
        for setting in PromptSetting::ALL {
            for variant in TemplateVariant::ALL {
                for slice in &dataset.levels {
                    let prefix =
                        render_prefix(setting, variant, &slice.exemplars, PromptSetting::SHOTS);
                    // The buffer is deliberately reused across questions
                    // and (dirty) across settings — render_prompt_into
                    // must fully overwrite it.
                    let mut buf = String::from("stale content from a previous query");
                    for question in &slice.questions {
                        render_prompt_into(question, setting, variant, &prefix, &mut buf);
                        let fresh = render_prompt(question, setting, variant, &slice.exemplars);
                        assert_eq!(buf, fresh, "{setting} {variant:?}");
                    }
                }
            }
        }
    }
}

/// The interner must agree exactly with the direct trigram similarity
/// on a fuzz-style corpus: real generated taxonomy names (repeated, so
/// the cached path is actually exercised) plus adversarial edge cases.
#[test]
fn similarity_cache_matches_direct_on_fuzz_corpus() {
    let mut corpus: Vec<String> = vec![
        String::new(),
        "a".into(),
        "ab".into(),
        "abc".into(),
        "ABC".into(),
        "aBc".into(),
        "CARS".into(),
        "cars".into(),
        "Pencils".into(),
        "pencil".into(),
        "  spaced  name ".into(),
        "naïve café names".into(),
        "ends with s".into(),
        "ENDS WITH S".into(),
        "日本語 ラベル".into(),
        "mixed 日本語 tail s".into(),
    ];
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 23, scale: 0.1 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Amazon, 23)
        .sample_cap(Some(30))
        .build(QuestionDataset::Hard)
        .unwrap();
    for q in d.questions().take(40) {
        corpus.push(q.child.clone());
        corpus.push(q.true_parent.clone());
    }

    let cache = SimilarityCache::new();
    // Two passes: the first populates the interner, the second is served
    // entirely from cached entries. Both must agree with the direct
    // computation bit-for-bit (f64 equality, not approximate).
    for _ in 0..2 {
        for a in &corpus {
            for b in &corpus {
                let direct = trigram_similarity(a, b);
                let cached = cache.similarity(a, b);
                assert!(
                    cached == direct,
                    "similarity({a:?}, {b:?}): cached {cached} != direct {direct}"
                );
            }
        }
    }
}
