//! Adversarial answer-extraction corpus.
//!
//! The three PR 6 parser fixes each came from a realistic response the
//! old extractor misread:
//!
//! 1. `parse_mcq` dropped answers whose marker was separated from the
//!    letter by punctuation ("The answer is: B" → Unparsed);
//! 2. `parse_mcq` scanned for hedges before options, so a decisive
//!    option followed by a hedge ("B) — none of the other options
//!    fit.") was misread as IDontKnow;
//! 3. `parse_tf` let a trailing abstention phrase override an earlier
//!    decisive interjection ("No, I cannot say for sure…" → IDontKnow).
//!
//! This corpus pins the fixed behaviour on those shapes plus the
//! near-miss forms that must *stay* Unparsed, and closes with a
//! digest-neutrality proof: the canonical pinned workload still
//! produces the pre-fix report digests, so none of the rewrites moved a
//! single byte of the benchmark's observable output.

use taxoglimpse::core::parse::{parse_mcq, parse_tf, ParsedAnswer};
use taxoglimpse::prelude::*;

fn check(cases: &[(&str, ParsedAnswer)], parser: fn(&str) -> ParsedAnswer, tag: &str) {
    for (response, expected) in cases {
        let got = parser(response);
        assert_eq!(got, *expected, "{tag}: {response:?} parsed as {got:?}, expected {expected:?}");
    }
}

#[test]
fn mcq_marker_punctuation_corpus() {
    use ParsedAnswer::Option;
    check(
        &[
            ("The answer is: B", Option(1)),
            ("The answer is:B", Option(1)),
            ("Answer: C", Option(2)),
            ("The answer is — B", Option(1)),
            ("The answer is 'C'", Option(2)),
            ("The answer is \"D\".", Option(3)),
            ("answer is (A)", Option(0)),
            ("I would choose: D", Option(3)),
            ("Let me think. The answer is...B", Option(1)),
            ("My answer: [C]", Option(2)),
        ],
        parse_mcq,
        "mcq punctuation after marker",
    );
}

#[test]
fn mcq_decisive_option_beats_hedge_corpus() {
    use ParsedAnswer::{IDontKnow, Option};
    check(
        &[
            ("B) — none of the other options fit.", Option(1)),
            ("The answer is A; I'm not sure about the rest.", Option(0)),
            ("C). None of the alternatives make sense.", Option(2)),
            ("D) because the others don't know their place in the hierarchy.", Option(3)),
            // Abstention first still abstains — scope only shields
            // hedges that FOLLOW a decisive option reference.
            ("I'm not sure, but maybe B)?", IDontKnow),
            ("I don't know. Possibly C)?", IDontKnow),
            ("None of these — not even A).", IDontKnow),
            ("I cannot determine which option is correct.", IDontKnow),
        ],
        parse_mcq,
        "mcq decisive-before-hedge",
    );
}

#[test]
fn mcq_near_miss_forms_stay_unparsed() {
    use ParsedAnswer::Unparsed;
    check(
        &[
            // Word-boundary rule: the marker must not be a fragment of a
            // longer word.
            ("optional b", Unparsed),
            ("he chooses badly", Unparsed),
            ("the answer isn't clear", Unparsed),
            ("selection bias", Unparsed),
            // A marker followed by a non-option letter.
            ("The answer is: zebra", Unparsed),
            ("Answer: 7", Unparsed),
            // Free text with no marker, no leading letter, no "x)" form.
            ("It depends entirely on the taxonomy.", Unparsed),
            ("", Unparsed),
        ],
        parse_mcq,
        "mcq near-miss",
    );
}

#[test]
fn mcq_abstain_option_corpus() {
    use ParsedAnswer::{IDontKnow, Option, Unparsed};
    check(
        &[
            // The explicit abstain slot: letter 'e' in any decisive form.
            ("E) None of the above.", IDontKnow),
            ("The answer is E", IDontKnow),
            ("Answer: E.", IDontKnow),
            ("e", IDontKnow),
            ("(E)", IDontKnow),
            // A bare "none of the above" after an echoed option list is
            // an abstention, not a pick of the first echoed option.
            ("A) Audio B) Video C) Garden D) Books — none of the above.", IDontKnow),
            ("Options were A) cars B) boats C) trains D) planes. None of the above fits.", IDontKnow),
            // A decisive pick before the echo still wins.
            ("B) Video — the rest, including None of the above, are wrong.", Option(1)),
            // 'e' embedded in a longer word is not the abstain letter.
            ("every option seems plausible", Unparsed),
            ("elephants are mammals", Unparsed),
        ],
        parse_mcq,
        "mcq abstain option",
    );
}

#[test]
fn tf_first_decisive_token_wins_corpus() {
    use ParsedAnswer::{No, Yes};
    check(
        &[
            ("No, I cannot say for sure whether that holds.", No),
            ("No — I don't know the full hierarchy, though.", No),
            ("Yes, although I'm not sure about the edge cases.", Yes),
            ("Yes. Well, I cannot determine every subcase.", Yes),
            ("Yeah, I think so, but don't know for certain.", Yes),
            ("Nope — and I'm uncertain about the rest.", No),
            // Negation flips on the composed forms.
            ("That is not correct, though I'm not sure why.", No),
            ("Not true. I cannot say more.", No),
            ("That's true, but I am not sure it helps.", Yes),
        ],
        parse_tf,
        "tf decisive-beats-hedge",
    );
}

#[test]
fn tf_abstention_corpus() {
    use ParsedAnswer::IDontKnow;
    check(
        &[
            ("I don't know.", IDontKnow),
            ("I do not know whether that is a kind of anything.", IDontKnow),
            ("I'm not sure about that one.", IDontKnow),
            ("I am uncertain here.", IDontKnow),
            ("I cannot determine that relation.", IDontKnow),
            ("We can't determine this from the name alone.", IDontKnow),
            ("I cannot say.", IDontKnow),
            ("UNSURE", IDontKnow),
            ("Honestly, I'M NOT SURE!", IDontKnow),
        ],
        parse_tf,
        "tf abstention",
    );
}

#[test]
fn tf_near_miss_forms_stay_unparsed() {
    use ParsedAnswer::Unparsed;
    check(
        &[
            // Decisive words embedded in longer tokens must not fire.
            ("noted and filed", Unparsed),
            ("yesterday it changed", Unparsed),
            ("the correction was published", Unparsed),
            ("falsehoods abound", Unparsed),
            // Abstention fragments without their completing token.
            ("I know the answer", Unparsed),
            ("say what you will", Unparsed),
            ("I can determine this easily", Unparsed),
            ("not withstanding", Unparsed),
            ("", Unparsed),
        ],
        parse_tf,
        "tf near-miss",
    );
}

/// Digest neutrality: the canonical pinned workload (same as
/// `determinism.rs`) must still produce the pre-fix digests. The parser
/// rewrites change behaviour only on response shapes the simulated
/// models never emit, and the batched executor changes no bytes at all
/// — so the pins must not move.
#[test]
fn parser_fixes_are_digest_neutral_on_the_pinned_workload() {
    use taxoglimpse::core::dataset::Dataset;
    use taxoglimpse::core::eval::EvalConfig;
    use taxoglimpse::core::grid::GridRunner;
    use taxoglimpse::core::model::LanguageModel;
    use taxoglimpse::synth::rng::{hash_str, mix64};

    let datasets: Vec<Dataset> = [TaxonomyKind::Ebay, TaxonomyKind::GeoNames]
        .into_iter()
        .map(|kind| {
            let t = generate(kind, GenOptions { seed: 42, scale: 0.1 }).unwrap();
            DatasetBuilder::new(&t, kind, 42)
                .sample_cap(Some(60))
                .build(QuestionDataset::Hard)
                .unwrap()
        })
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let model_arcs = [zoo.get(ModelId::Gpt4).unwrap(), zoo.get(ModelId::Llama2_7b).unwrap()];
    let models: Vec<&dyn LanguageModel> =
        model_arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();

    let mut digests = Vec::new();
    for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
        let runner = GridRunner::builder()
            .with_config(EvalConfig::default().with_setting(setting))
            .with_threads(4)
            .build();
        let reports = runner.run_cross(&models, &dataset_refs);
        let mut digest = 0xBA5E_11AEu64;
        for report in &reports {
            let json = taxoglimpse::json::to_string(report).unwrap();
            digest = mix64(digest ^ hash_str(0x5EED, &json));
        }
        digests.push(format!("{digest:016x}"));
    }
    assert_eq!(digests, ["55e93db6e5f85df9", "ca98ddf7b5163d0a"]);
}
