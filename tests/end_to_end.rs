//! End-to-end pipeline tests spanning all crates: synthesize → build
//! datasets → prompt → simulate → parse → aggregate.

use taxoglimpse::prelude::*;

fn dataset(kind: TaxonomyKind, scale: f64, flavor: QuestionDataset, cap: usize) -> (taxoglimpse::taxonomy::Taxonomy, Dataset) {
    let taxonomy = generate(kind, GenOptions { seed: 1234, scale }).expect("valid options");
    let dataset = DatasetBuilder::new(&taxonomy, kind, 1234)
        .sample_cap(Some(cap))
        .build(flavor)
        .expect("probe levels exist");
    (taxonomy, dataset)
}

use taxoglimpse::core::dataset::Dataset;

#[test]
fn full_pipeline_runs_for_every_taxonomy_and_flavor() {
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama3_8b).unwrap();
    let evaluator = Evaluator::default();
    for kind in TaxonomyKind::ALL {
        let scale = if kind == TaxonomyKind::Ncbi { 0.003 } else { 0.15 };
        for flavor in QuestionDataset::ALL {
            let (_t, d) = dataset(kind, scale, flavor, 40);
            assert!(!d.is_empty(), "{kind} {flavor}");
            let report = evaluator.run(model.as_ref(), &d);
            assert_eq!(report.overall.total(), d.len());
            let sum = report.overall.correct + report.overall.missed + report.overall.wrong;
            assert_eq!(sum, d.len());
        }
    }
}

#[test]
fn all_eighteen_models_answer_parseably() {
    // Every model's free-text output must be understood by the parser:
    // with a valid question, the outcome distribution can contain
    // correct/missed/wrong, but *unparseable garbage* would inflate
    // `wrong` to near 100% for strong models — so GPT-4-class models
    // scoring well is evidence the loop is airtight.
    let (_t, d) = dataset(TaxonomyKind::Ebay, 1.0, QuestionDataset::Hard, 30);
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();
    for model in zoo.all() {
        let report = evaluator.run(model.as_ref(), &d);
        assert_eq!(report.overall.total(), d.len(), "{}", report.model);
    }
    let strong = evaluator.run(zoo.get(ModelId::Gpt4).unwrap().as_ref(), &d);
    assert!(strong.overall.accuracy() > 0.8, "GPT-4 accuracy {}", strong.overall.accuracy());
}

#[test]
fn prompt_settings_flow_through_the_whole_stack() {
    let (_t, d) = dataset(TaxonomyKind::Amazon, 0.1, QuestionDataset::Hard, 50);
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama2_7b).unwrap();
    let mut misses = Vec::new();
    for setting in PromptSetting::ALL {
        let report = Evaluator::builder().with_config(EvalConfig { setting, ..Default::default() }).build().run(model.as_ref(), &d);
        assert_eq!(report.setting, setting);
        misses.push(report.overall.miss_rate());
    }
    // zero-shot, few-shot, CoT: few-shot strictly lowest miss for
    // Llama-2-7B, CoT at least zero-shot.
    assert!(misses[1] < misses[0], "few-shot {} vs zero-shot {}", misses[1], misses[0]);
    assert!(misses[2] >= misses[0] * 0.95, "cot {} vs zero-shot {}", misses[2], misses[0]);
}

#[test]
fn instance_typing_pipeline_end_to_end() {
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    let evaluator = Evaluator::default();
    for kind in TaxonomyKind::ALL.into_iter().filter(|k| k.has_instances()) {
        let scale = if kind == TaxonomyKind::Ncbi { 0.003 } else { 0.1 };
        let taxonomy = generate(kind, GenOptions { seed: 99, scale }).expect("valid options");
        let d = InstanceTypingWorkload::new(QuestionDataset::Hard)
            .with_sample_cap(Some(40))
            .build(&WorkloadContext::new(&taxonomy, kind, 99))
            .expect("hard flavor defined for instance-bearing kinds");
        assert!(!d.is_empty(), "{kind}");
        let report = evaluator.run(model.as_ref(), &d);
        assert!(report.overall.accuracy() > 0.2, "{kind}: {}", report.overall.accuracy());
        // Slices are keyed by target ancestor level and cover the root.
        assert!(d.levels.iter().any(|s| s.child_level == 0), "{kind} misses root-level pairs");
    }
}

#[test]
fn template_paraphrases_leave_results_stable() {
    // §2.2: "We observed similar results when using slight paraphrasing
    // of the templates."
    use taxoglimpse::core::templates::TemplateVariant;
    let (_t, d) = dataset(TaxonomyKind::Google, 0.3, QuestionDataset::Hard, 80);
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::FlanT5_11b).unwrap();
    let mut accuracies = Vec::new();
    for variant in TemplateVariant::ALL {
        let report =
            Evaluator::builder().with_config(EvalConfig { variant, ..Default::default() }).build().run(model.as_ref(), &d);
        accuracies.push(report.overall.accuracy());
    }
    let spread = accuracies.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - accuracies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.08, "paraphrase spread {spread} too large: {accuracies:?}");
}

#[test]
fn reports_serialize_for_downstream_tools() {
    let (_t, d) = dataset(TaxonomyKind::Schema, 0.5, QuestionDataset::Mcq, 40);
    let zoo = ModelZoo::default_zoo();
    let report = Evaluator::default().run(zoo.get(ModelId::Mixtral8x7b).unwrap().as_ref(), &d);
    let json = taxoglimpse::json::to_string(&report).expect("reports are serializable");
    let back: taxoglimpse::core::eval::EvalReport = taxoglimpse::json::from_str(&json).expect("round trip");
    assert_eq!(back.overall, report.overall);
    assert_eq!(back.model, "Mixtral");
}
