//! Property tests for the virtual-time serving layer (`core::serve`):
//! the full serving report — trace digest included — must be
//! byte-identical across prefetch worker counts {1, 2, 8}, under any
//! combination of queue capacities, batch deadlines, and fault plans;
//! and the log-scale latency histogram's percentile estimates must
//! land in the same bucket as an exact-sort oracle over the same serve
//! latencies. Runs on the same in-tree deterministic proptest harness
//! as `proptests.rs` and `shard.rs`.

use std::sync::Arc;
use taxoglimpse::core::question::Question;
use taxoglimpse::core::serve::{ServeConfig, TenantSpec};
use taxoglimpse::prelude::*;
use taxoglimpse::report::histogram::{bucket_index, LatencyHistogram};
use taxoglimpse::synth::rng::{fork, Rng, SynthRng};

const PROPTEST_SEED: u64 = 0x5AAD_7E57_5052_0009; // "serve test PR 9"

/// Run `f` for `n` deterministic cases, reporting the failing case.
fn cases(n: u64, tag: &str, f: impl Fn(&mut SynthRng, u64)) {
    for i in 0..n {
        let mut rng = fork(PROPTEST_SEED, tag, i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, i)));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("property `{tag}` failed at case {i}/{n}: {message}");
        }
    }
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn question_pool(seed: u64, cap: usize) -> Vec<Question> {
    let taxonomy =
        generate(TaxonomyKind::Ebay, GenOptions { seed, scale: 0.5 }).expect("valid options");
    DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, seed)
        .sample_cap(Some(cap))
        .build(QuestionDataset::Hard)
        .expect("ebay has probe levels")
        .questions()
        .cloned()
        .collect()
}

/// One serving tower per lane: fault injection over a private cache
/// over a shared simulated model — the full PR 5 + 6 composition the
/// benchmarks serve through.
fn towers(seed: u64, fault_rate: f64) -> Vec<Box<dyn LanguageModel>> {
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b]
        .iter()
        .map(|&id| {
            let base = Arc::new(SimulatedLlm::with_seed(id, seed));
            let plan = if fault_rate > 0.0 {
                FaultPlan::uniform(seed ^ 0xFA_57, fault_rate)
            } else {
                FaultPlan::disabled(seed ^ 0xFA_57)
            };
            Box::new(FaultInjector::new(CachedModel::new(base), plan)) as Box<dyn LanguageModel>
        })
        .collect()
}

/// The serving report — counters, latencies, per-tenant rows, and the
/// event-trace digest — is invariant under the prefetch worker count,
/// across random loads, queue capacities, batch deadlines, and fault
/// plans.
#[test]
fn reports_are_worker_count_invariant() {
    cases(6, "serve-worker-invariant", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let questions = question_pool(seed, 40);
        let fault_rate = [0.0, 0.05, 0.20][rng.gen_index(3)];
        let total_qps = 200.0 + rng.gen::<f64>() * 2000.0;
        let traffic = TrafficConfig::mixed_fleet(seed ^ 0x7EA7, total_qps, 1.5);
        let base_config = ServeConfig::default()
            .with_queue_capacity(16 + rng.gen_index(256))
            .with_batch_deadline_s(0.002 + rng.gen::<f64>() * 0.05)
            .with_max_batch(4 + rng.gen_index(60));

        let mut reports = Vec::new();
        for workers in WORKER_COUNTS {
            // Fresh towers per worker count: caches and fault stats are
            // instance state, and instance history must not leak into
            // the comparison.
            let stacks = towers(seed, fault_rate);
            let refs: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();
            let config = base_config.with_workers(workers);
            reports.push(run_serve(&refs, &questions, &traffic, &config));
        }
        assert_eq!(reports[0], reports[1], "1 vs 2 workers, fault rate {fault_rate}");
        assert_eq!(reports[0], reports[2], "1 vs 8 workers, fault rate {fault_rate}");
        assert!(reports[0].arrivals > 0, "degenerate case: no traffic offered");
        assert_eq!(
            reports[0].admitted + reports[0].shed.total(),
            reports[0].arrivals,
            "every arrival is admitted or shed"
        );
        assert_eq!(
            reports[0].completed + reports[0].failed,
            reports[0].admitted,
            "every admitted request completes or fails"
        );
        if fault_rate == 0.0 {
            assert_eq!(reports[0].failed, 0, "no faults, no failures");
        }
    });
}

/// Distinct traffic seeds must produce distinct traces (the digest
/// actually commits to the arrival stream, not just the counts).
#[test]
fn trace_digest_separates_seeds() {
    let questions = question_pool(7, 30);
    let stacks = towers(7, 0.0);
    let refs: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();
    let config = ServeConfig::default();
    let mut digests = std::collections::BTreeSet::new();
    for seed in 0..8u64 {
        let traffic = TrafficConfig::mixed_fleet(seed, 500.0, 0.5);
        let report = run_serve(&refs, &questions, &traffic, &config);
        digests.insert(report.trace_digest);
    }
    assert_eq!(digests.len(), 8, "seed collisions in the trace digest");
}

/// Histogram percentiles vs. exact-sort oracle, over real serve
/// latencies: for random loads and quantiles, the histogram's estimate
/// must land in the same log-scale bucket as the oracle value and
/// never exceed it (the estimate is the bucket's lower bound).
#[test]
fn histogram_percentiles_match_exact_sort_oracle() {
    cases(6, "serve-histogram-oracle", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let questions = question_pool(seed, 30);
        let stacks = towers(seed, [0.0, 0.20][rng.gen_index(2)]);
        let refs: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();
        let traffic =
            TrafficConfig::mixed_fleet(seed, 300.0 + rng.gen::<f64>() * 3000.0, 1.0);
        let config = ServeConfig::default()
            .with_batch_deadline_s(0.002 + rng.gen::<f64>() * 0.03)
            .with_queue_capacity(32 + rng.gen_index(128));
        let report = run_serve(&refs, &questions, &traffic, &config);
        assert!(
            report.latencies.len() > 50,
            "need a meaningful sample, got {}",
            report.latencies.len()
        );

        let mut histogram = LatencyHistogram::new();
        histogram.record_all(&report.latencies);
        assert_eq!(histogram.count(), report.latencies.len() as u64);

        let mut sorted = report.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let estimate = histogram.quantile(q);
            assert_eq!(
                bucket_index(estimate),
                bucket_index(oracle),
                "q{q}: estimate {estimate} vs oracle {oracle}"
            );
            assert!(estimate <= oracle, "q{q}: estimate {estimate} above oracle {oracle}");
        }
        // Percentiles are monotone in q.
        assert!(histogram.p50() <= histogram.p99());
        assert!(histogram.p99() <= histogram.p999());
    });
}

/// Load shedding kicks in exactly when configured to: a tight abusive
/// allowance sheds by rate, a tiny queue sheds by capacity, and a
/// saturated lane keeps its shed requests out of the latency
/// population.
#[test]
fn shed_reasons_track_their_knobs() {
    let questions = question_pool(3, 30);
    let stacks = towers(3, 0.0);
    let refs: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();

    // Rate-limit sheds: one abusive tenant offering far over allowance.
    let abusive = TrafficConfig {
        seed: 5,
        horizon_s: 1.0,
        tenants: vec![TenantSpec::abusive("hog", 400.0, 20.0)],
    };
    let report = run_serve(&refs, &questions, &abusive, &ServeConfig::default());
    assert!(report.shed.rate_limited > 0);
    assert_eq!(report.shed.queue_full, 0, "allowance sheds before the queue fills");

    // Queue-full sheds: steady overload into a tiny queue.
    let overload = TrafficConfig {
        seed: 5,
        horizon_s: 1.0,
        tenants: vec![TenantSpec::poisson("flood", 20_000.0)],
    };
    let config = ServeConfig::default().with_queue_capacity(8);
    let report = run_serve(&refs, &questions, &overload, &config);
    assert!(report.shed.queue_full > 0, "20k qps into a queue of 8 must tail-drop");
    assert_eq!(
        report.latencies.len() as u64,
        report.completed,
        "shed requests never enter the latency population"
    );
}
