//! Wrapper-tower forwarding audit.
//!
//! The serving layer (and before it the grid/shard runners) dispatch
//! whole batches through arbitrary compositions of the model wrappers
//! — `CachedModel`, `FaultInjector`, `Resilient`, plus the blanket
//! `Box`/`&M`/`Arc` impls. Two properties keep that sound, and this
//! file pins both:
//!
//! 1. **Forwarding**: every wrapper and blanket impl routes
//!    `answer_batch` to the wrapped model's *batch* path (not the
//!    default per-element loop), so batch-level optimizations like the
//!    cache's shared-prefix hashing survive any stacking order.
//! 2. **Batch/single agreement**: for every documented tower,
//!    `answer_batch` returns exactly what element-wise `answer` calls
//!    would, query for query, on a fresh instance — the contract the
//!    `LanguageModel` docs promise and the serving batcher relies on
//!    when it folds prefetched batch answers back into the sequential
//!    resilience session.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::rng::{fork, Rng};

/// A base model that observably distinguishes the batch path from the
/// single path, and answers deterministically per question id.
struct ProbeModel {
    single_calls: AtomicU64,
    batch_calls: AtomicU64,
}

impl ProbeModel {
    fn new() -> Self {
        ProbeModel { single_calls: AtomicU64::new(0), batch_calls: AtomicU64::new(0) }
    }
}

impl LanguageModel for ProbeModel {
    fn name(&self) -> &str {
        "probe"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        // Relaxed: independent monotonic counter, read only after the
        // calls under test returned.
        self.single_calls.fetch_add(1, Ordering::Relaxed);
        if query.question.id % 2 == 0 {
            Ok(Response::new(format!("Yes. (q{})", query.question.id)))
        } else {
            Ok(Response::new(format!("No. (q{})", query.question.id)))
        }
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        // Relaxed: independent monotonic counter, read only after the
        // calls under test returned.
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        queries
            .iter()
            .map(|query| {
                if query.question.id % 2 == 0 {
                    Ok(Response::new(format!("Yes. (q{})", query.question.id)))
                } else {
                    Ok(Response::new(format!("No. (q{})", query.question.id)))
                }
            })
            .collect()
    }
}

/// Compile-time audit: every composition this repo documents — and the
/// blanket impls gluing them together — satisfies `LanguageModel`.
/// Fails to *compile* if a wrapper loses the trait bound.
#[allow(dead_code)]
fn tower_compositions_implement_language_model() {
    fn assert_model<M: LanguageModel>() {}
    assert_model::<ProbeModel>();
    assert_model::<&ProbeModel>();
    assert_model::<Box<ProbeModel>>();
    assert_model::<Arc<ProbeModel>>();
    assert_model::<Box<dyn LanguageModel>>();
    assert_model::<CachedModel<ProbeModel>>();
    assert_model::<FaultInjector<ProbeModel>>();
    assert_model::<Resilient<ProbeModel>>();
    // The PR 5/6 serving tower and its boxed/shared variants.
    assert_model::<FaultInjector<CachedModel<Arc<SimulatedLlm>>>>();
    assert_model::<Resilient<FaultInjector<CachedModel<Arc<SimulatedLlm>>>>>();
    assert_model::<CachedModel<FaultInjector<SimulatedLlm>>>();
    assert_model::<Resilient<Box<dyn LanguageModel>>>();
    assert_model::<Arc<FaultInjector<CachedModel<Box<dyn LanguageModel>>>>>();
}

fn queries_for<'a>(
    dataset: &'a [(Question, String)],
) -> Vec<Query<'a>> {
    dataset
        .iter()
        .map(|(question, prompt)| Query::new(prompt, question, PromptSetting::ZeroShot))
        .collect()
}

fn rendered_dataset(seed: u64, cap: usize) -> Vec<(Question, String)> {
    let taxonomy =
        generate(TaxonomyKind::Ebay, GenOptions { seed, scale: 0.5 }).expect("valid options");
    let dataset = DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, seed)
        .sample_cap(Some(cap))
        .build(QuestionDataset::Hard)
        .expect("ebay has probe levels");
    dataset
        .questions()
        .map(|q| {
            let prompt = taxoglimpse::core::prompts::render_prompt(
                q,
                PromptSetting::ZeroShot,
                taxoglimpse::core::templates::TemplateVariant::default(),
                &[],
            );
            (q.clone(), prompt)
        })
        .collect()
}

/// The blanket impls (`&M`, `Box`, `Arc`, `Box<dyn>`) must forward
/// `answer_batch` to the wrapped batch path, not fall back to the
/// trait's default per-element loop.
#[test]
fn blanket_impls_forward_the_batch_path() {
    let data = rendered_dataset(21, 12);
    let queries = queries_for(&data);

    fn batch_through(model: &dyn LanguageModel, queries: &[Query<'_>]) {
        let answers = model.answer_batch(queries);
        assert_eq!(answers.len(), queries.len());
    }

    // &M
    let probe = ProbeModel::new();
    batch_through(&&probe, &queries);
    assert_eq!(probe.batch_calls.load(Ordering::Relaxed), 1, "&M must not default-loop");
    assert_eq!(probe.single_calls.load(Ordering::Relaxed), 0);

    // Box<M> and Box<dyn LanguageModel>
    let boxed: Box<dyn LanguageModel> = Box::new(ProbeModel::new());
    batch_through(&boxed, &queries);

    // Arc<M>
    let shared = Arc::new(ProbeModel::new());
    batch_through(&Arc::clone(&shared), &queries);
    assert_eq!(shared.batch_calls.load(Ordering::Relaxed), 1, "Arc<M> must not default-loop");
    assert_eq!(shared.single_calls.load(Ordering::Relaxed), 0);
}

/// Every wrapper forwards `answer_batch` as (at most) one sub-batch to
/// its base — the invariant that lets batch-level work amortize through
/// any stack.
#[test]
fn wrappers_forward_the_batch_path() {
    let data = rendered_dataset(22, 12);
    let queries = queries_for(&data);

    let cached = CachedModel::new(ProbeModel::new());
    cached.answer_batch(&queries);
    assert_eq!(cached.base().batch_calls.load(Ordering::Relaxed), 1, "cold cache: one sub-batch");
    assert_eq!(cached.base().single_calls.load(Ordering::Relaxed), 0);
    cached.answer_batch(&queries);
    assert_eq!(
        cached.base().batch_calls.load(Ordering::Relaxed),
        1,
        "warm cache: no base traffic at all"
    );

    let injector = FaultInjector::new(ProbeModel::new(), FaultPlan::disabled(3));
    injector.answer_batch(&queries);
    assert_eq!(injector.base().batch_calls.load(Ordering::Relaxed), 1);
    assert_eq!(injector.base().single_calls.load(Ordering::Relaxed), 0);

    // Resilient prefetches attempt 0 through the base batch path; with
    // a healthy base there is no retry traffic, so exactly one batch
    // call and zero single calls.
    let resilient = Resilient::new(ProbeModel::new());
    resilient.answer_batch(&queries);
    assert_eq!(resilient.stats().queries, queries.len() as u64);
}

/// For every documented tower (and both cache/injector stacking
/// orders), a batched call returns exactly what element-wise singles
/// return on a fresh instance.
#[test]
fn batch_equals_element_wise_singles_for_every_tower() {
    let data = rendered_dataset(23, 30);
    let queries = queries_for(&data);
    let plan = || FaultPlan::uniform(41, 0.25);
    let base = || SimulatedLlm::new(ModelId::Gpt35);

    // Each entry builds the same tower twice: one instance for the
    // batched call, a fresh one for the element-wise singles, so
    // stateful wrappers (cache fills, breaker clocks) see identical
    // histories on both paths.
    let towers: Vec<(&str, Box<dyn Fn() -> Box<dyn LanguageModel>>)> = vec![
        ("simulated", Box::new(move || Box::new(base()))),
        ("cached", Box::new(move || Box::new(CachedModel::new(base())))),
        ("injector", Box::new(move || Box::new(FaultInjector::new(base(), plan())))),
        (
            "injector-over-cache",
            Box::new(move || Box::new(FaultInjector::new(CachedModel::new(base()), plan()))),
        ),
        (
            "cache-over-injector",
            Box::new(move || Box::new(CachedModel::new(FaultInjector::new(base(), plan())))),
        ),
        (
            "resilient-full-tower",
            Box::new(move || {
                Box::new(Resilient::new(FaultInjector::new(CachedModel::new(base()), plan())))
            }),
        ),
    ];

    for (label, build) in &towers {
        let batched = build();
        let singles = build();
        let batch_answers = batched.answer_batch(&queries);
        let single_answers: Vec<_> = queries.iter().map(|q| singles.answer(q)).collect();
        assert_eq!(batch_answers.len(), queries.len(), "tower `{label}`");
        for (i, (a, b)) in batch_answers.iter().zip(&single_answers).enumerate() {
            assert_eq!(a, b, "tower `{label}` diverges at query {i}");
        }
        assert_eq!(batched.name(), singles.name(), "tower `{label}` renames the base");
    }
}

/// Mixing batched and single calls against one shared tower instance
/// keeps answers consistent with an all-singles shadow instance — the
/// access pattern the serving loop produces (batch prefetch followed by
/// sequential session replay).
#[test]
fn interleaved_batch_and_single_calls_agree() {
    let data = rendered_dataset(24, 24);
    let queries = queries_for(&data);
    let tower = FaultInjector::new(
        CachedModel::new(SimulatedLlm::new(ModelId::Llama2_7b)),
        FaultPlan::uniform(77, 0.3),
    );
    let shadow = FaultInjector::new(
        CachedModel::new(SimulatedLlm::new(ModelId::Llama2_7b)),
        FaultPlan::uniform(77, 0.3),
    );

    let mut rng = fork(0x70_0E_12, "tower-interleave", 0);
    let mut cursor = 0usize;
    while cursor < queries.len() {
        let take = 1 + rng.gen_index(4);
        let end = (cursor + take).min(queries.len());
        let slice = &queries[cursor..end];
        let batched = if rng.gen_bool(0.5) {
            tower.answer_batch(slice)
        } else {
            slice.iter().map(|q| tower.answer(q)).collect()
        };
        let expected: Vec<_> = slice.iter().map(|q| shadow.answer(q)).collect();
        assert_eq!(batched, expected, "divergence in window {cursor}..{end}");
        cursor = end;
    }
    assert_eq!(tower.stats().calls, queries.len() as u64);
}
