//! Integration tests for the extension systems built on top of the
//! benchmark: the hybrid taxonomy (§5.1), enrichment, baselines, the
//! parallel grid runner, the serving/cost layer, and release drift.

use taxoglimpse::core::analysis::{level_trend, two_proportion_z};
use taxoglimpse::core::enrich::evaluate_reattachment;
use taxoglimpse::core::grid::GridRunner;
use taxoglimpse::core::hybrid::{recommended_cutoff, HybridTaxonomy};
use taxoglimpse::core::model::LanguageModel;
use taxoglimpse::llm::api::ApiClient;
use taxoglimpse::llm::baselines::{LexicalBaseline, NgramVectorBaseline, RandomBaseline};
use taxoglimpse::llm::SimulatedLlm;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::drift::{evolve, DriftConfig};
use taxoglimpse::taxonomy::diff::diff;

#[test]
fn hybrid_reliability_recommends_shallower_cutoffs_for_specialized_domains() {
    // The paper's core recommendation: common domains can push more of
    // the tree into the LLM than specialized ones. Measure it via
    // recommended_cutoff at a fixed target: a *smaller* cutoff means
    // more levels can be replaced.
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    let target = 0.75;

    let ebay = generate(TaxonomyKind::Ebay, GenOptions { seed: 70, scale: 1.0 }).unwrap();
    let ebay_cutoff = recommended_cutoff(&ebay, TaxonomyKind::Ebay, model.as_ref(), target, 70, Some(150));

    let glotto = generate(TaxonomyKind::Glottolog, GenOptions { seed: 70, scale: 0.3 }).unwrap();
    let glotto_cutoff =
        recommended_cutoff(&glotto, TaxonomyKind::Glottolog, model.as_ref(), target, 70, Some(150));

    // eBay: the whole tree below the roots is replaceable at 75%.
    assert_eq!(ebay_cutoff, Some(1), "eBay should be fully replaceable, got {ebay_cutoff:?}");
    // Glottolog: nothing (or almost nothing) meets 75%.
    assert!(
        glotto_cutoff.is_none() || glotto_cutoff.unwrap() > 3,
        "Glottolog should resist replacement, got {glotto_cutoff:?}"
    );
}

#[test]
fn hybrid_end_to_end_routing_and_querying() {
    let full = generate(TaxonomyKind::Amazon, GenOptions { seed: 71, scale: 0.1 }).unwrap();
    let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 3);
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();

    // Route every removed level-3 concept; all must land on a kept node.
    let mut routed = 0;
    for &concept in full.nodes_at_level(3).iter().take(25) {
        if hybrid.route(full.name(concept), model.as_ref()).is_some() {
            routed += 1;
        }
    }
    assert_eq!(routed, 25);
}

#[test]
fn enrichment_quality_orders_models_sensibly() {
    let t = generate(TaxonomyKind::Ncbi, GenOptions { seed: 72, scale: 0.002 }).unwrap();
    let zoo = ModelZoo::default_zoo();
    let strong = evaluate_reattachment(&t, TaxonomyKind::Ncbi, zoo.get(ModelId::Gpt4).unwrap().as_ref(), 72, Some(50));
    let weak = evaluate_reattachment(&t, TaxonomyKind::Ncbi, &RandomBaseline::new(1), 72, Some(50));
    assert!(strong.evaluated > 0);
    // The shortlist is shared; the model quality shows in top-1.
    assert!(
        strong.top1_accuracy >= weak.top1_accuracy,
        "GPT-4 {} vs random {}",
        strong.top1_accuracy,
        weak.top1_accuracy
    );
    assert!(strong.shortlist_mrr > 0.5, "species shortlists find the genus");
}

#[test]
fn baselines_tell_the_surface_form_story() {
    // The paper attributes NCBI's species-level performance to surface
    // forms. If that is right, a pure surface baseline must beat the
    // random baseline decisively on NCBI hard, and the gap must be
    // statistically significant.
    let t = generate(TaxonomyKind::Ncbi, GenOptions { seed: 73, scale: 0.003 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Ncbi, 73)
        .sample_cap(Some(120))
        .build(QuestionDataset::Hard)
        .unwrap();
    let evaluator = Evaluator::default();
    let vsm = evaluator.run(&NgramVectorBaseline::default(), &d);
    let lex = evaluator.run(&LexicalBaseline::default(), &d);
    let rnd = evaluator.run(&RandomBaseline::new(2), &d);
    let test = two_proportion_z(&vsm.overall, &rnd.overall);
    assert!(test.significant(), "vsm {} vs random {}: p = {}", vsm.overall.accuracy(), rnd.overall.accuracy(), test.p_value);
    assert!(lex.overall.accuracy() > rnd.overall.accuracy());
}

#[test]
fn grid_runner_parallel_equals_sequential_on_real_models() {
    let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 74, scale: 1.0 }).unwrap();
    let datasets: Vec<_> = QuestionDataset::ALL
        .iter()
        .map(|&f| DatasetBuilder::new(&t, TaxonomyKind::Ebay, 74).sample_cap(Some(40)).build(f).unwrap())
        .collect();
    let dataset_refs: Vec<_> = datasets.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let arcs: Vec<_> = [ModelId::Gpt4, ModelId::Mistral7b, ModelId::Vicuna33b]
        .into_iter()
        .map(|id| zoo.get(id).unwrap())
        .collect();
    let models: Vec<&dyn LanguageModel> = arcs.iter().map(|a| a.as_ref() as &dyn LanguageModel).collect();

    let parallel =
        GridRunner::builder().with_threads(6).build().run_cross(&models, &dataset_refs);
    let sequential: Vec<_> = models
        .iter()
        .flat_map(|m| dataset_refs.iter().map(|d| Evaluator::default().run(*m, d)))
        .collect();
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.overall, s.overall, "{} on {} {}", p.model, p.taxonomy, p.flavor);
    }
}

#[test]
fn api_layer_is_transparent_to_quality() {
    let t = generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 75, scale: 0.3 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Icd10Cm, 75)
        .sample_cap(Some(60))
        .build(QuestionDataset::Hard)
        .unwrap();
    let evaluator = Evaluator::default();
    let direct = evaluator.run(&SimulatedLlm::new(ModelId::Claude3), &d);
    let served = ApiClient::new(SimulatedLlm::new(ModelId::Claude3));
    let through_api = evaluator.run(&served, &d);
    // Default 2% transient failures always recover within 4 attempts.
    assert_eq!(direct.overall, through_api.overall);
    assert!(served.stats().cost_usd > 0.0);
}

#[test]
fn drift_then_diff_supports_the_maintenance_argument() {
    let v1 = generate(TaxonomyKind::Amazon, GenOptions { seed: 76, scale: 0.05 }).unwrap();
    let v2 = evolve(&v1, TaxonomyKind::Amazon, DriftConfig::default(), 76);
    let d = diff(&v1, &v2);
    assert!(!d.is_empty());
    // All drift is at depth >= 1 and the lion's share at the leaves
    // (depth >= 3 of this 5-level taxonomy).
    assert_eq!(d.changes_at_or_below(1), d.total_changes());
    assert!(d.changes_at_or_below(3) * 2 > d.total_changes());
}

#[test]
fn level_trends_are_negative_for_strong_models_on_deep_taxonomies() {
    let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 77, scale: 0.3 }).unwrap();
    let d = DatasetBuilder::new(&t, TaxonomyKind::Glottolog, 77).build(QuestionDataset::Hard).unwrap();
    let zoo = ModelZoo::default_zoo();
    for id in [ModelId::Gpt4, ModelId::FlanT5_11b, ModelId::Vicuna7b] {
        let report = Evaluator::default().run(zoo.get(id).unwrap().as_ref(), &d);
        assert!(level_trend(&report) < 0.0, "{id} should decline root-to-leaf");
    }
}
