//! Property tests for the resilience stack: the fault injector, the
//! retry/breaker middleware, and their interaction with the parallel
//! grid. Runs on the same in-tree deterministic proptest harness as
//! `proptests.rs` — inputs are forked from a fixed seed per case, so
//! any failure replays from its printed case index.

use taxoglimpse::prelude::*;
use taxoglimpse::synth::rng::{fork, hash_str, mix64, Rng, SynthRng};

const PROPTEST_SEED: u64 = 0x7265_7369_6c50_5235; // "resilPR5"

/// Run `f` for `n` deterministic cases, reporting the failing case.
fn cases(n: u64, tag: &str, f: impl Fn(&mut SynthRng, u64)) {
    for i in 0..n {
        let mut rng = fork(PROPTEST_SEED, tag, i);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, i)));
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("property `{tag}` failed at case {i}/{n}: {message}");
        }
    }
}

fn small_dataset(seed: u64) -> taxoglimpse::core::dataset::Dataset {
    let kind = TaxonomyKind::Ebay;
    let taxonomy = generate(kind, GenOptions { seed, scale: 0.5 }).expect("valid options");
    DatasetBuilder::new(&taxonomy, kind, seed)
        .sample_cap(Some(30))
        .build(QuestionDataset::Hard)
        .expect("ebay has probe levels")
}

/// A random fault plan: arbitrary per-class rates, retry-after, and a
/// few taxonomy/model factors.
fn random_plan(rng: &mut SynthRng) -> FaultPlan {
    let mut plan = FaultPlan::disabled(rng.gen_range(0u64..1 << 48))
        .with_timeout_rate(rng.gen_range(0u64..30) as f64 / 100.0)
        .with_rate_limit_rate(rng.gen_range(0u64..30) as f64 / 100.0)
        .with_truncated_rate(rng.gen_range(0u64..20) as f64 / 100.0)
        .with_unavailable_rate(rng.gen_range(0u64..20) as f64 / 100.0)
        .with_malformed_rate(rng.gen_range(0u64..10) as f64 / 100.0)
        .with_retry_after_s(rng.gen_range(0u64..500) as f64 / 100.0);
    if rng.gen_bool(0.5) {
        plan = plan.with_taxonomy_factor(TaxonomyKind::Ebay, rng.gen_range(0u64..30) as f64 / 10.0);
    }
    if rng.gen_bool(0.3) {
        plan = plan.with_model_factor("GPT-4", rng.gen_range(0u64..30) as f64 / 10.0);
    }
    plan
}

fn digest_reports(reports: &[EvalReport]) -> u64 {
    let mut digest = 0xBA5E_11AEu64;
    for report in reports {
        let json = taxoglimpse::json::to_string(report).expect("reports serialize");
        digest = mix64(digest ^ hash_str(0x5EED, &json));
    }
    digest
}

/// `Resilient<FaultInjector<SimulatedLlm>>` at fault rate 0 is
/// byte-identical to the bare model, query by query, for any policy.
#[test]
fn zero_rate_stack_is_byte_identical_to_bare_model() {
    cases(8, "zero-rate-transparent", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let dataset = small_dataset(seed);
        let policy = ResiliencePolicy::default()
            .with_max_attempts(rng.gen_range(1u64..6) as u32)
            .with_seed(rng.gen_range(0u64..1 << 32));
        let bare = SimulatedLlm::with_seed(ModelId::Gpt4, seed);
        let stacked = Resilient::with_policy(
            FaultInjector::new(
                SimulatedLlm::with_seed(ModelId::Gpt4, seed),
                FaultPlan::disabled(rng.gen_range(0u64..1 << 32)),
            ),
            policy,
        );
        assert_eq!(stacked.name(), bare.name());
        let evaluator = Evaluator::default();
        let bare_report = evaluator.run(&bare, &dataset);
        let stacked_report = evaluator.run(&stacked, &dataset);
        assert_eq!(
            taxoglimpse::json::to_string(&bare_report).expect("report serializes"),
            taxoglimpse::json::to_string(&stacked_report).expect("report serializes"),
        );
        assert_eq!(stacked_report.overall.failed, 0);
    });
}

/// For ANY fault plan, grid report digests are invariant across worker
/// counts {1, 2, 8}: fault streams key on question identity, breaker
/// state is per-chunk, and chunk partitioning ignores thread count.
#[test]
fn report_digests_are_worker_count_invariant_under_any_fault_plan() {
    cases(6, "worker-invariant-faults", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let dataset = small_dataset(seed);
        let dataset_refs = [&dataset];
        let plan = random_plan(rng);
        let chunk = rng.gen_range(1u64..40) as usize;

        let mut digests = Vec::new();
        for workers in [1usize, 2, 8] {
            let injectors = [
                FaultInjector::new(SimulatedLlm::with_seed(ModelId::Gpt4, seed), plan.clone()),
                FaultInjector::new(SimulatedLlm::with_seed(ModelId::Llama2_7b, seed), plan.clone()),
            ];
            let models: Vec<&dyn LanguageModel> =
                injectors.iter().map(|m| m as &dyn LanguageModel).collect();
            let reports = GridRunner::builder()
                .with_threads(workers)
                .with_chunk_size(chunk)
                .build()
                .run_cross(&models, &dataset_refs);
            digests.push(digest_reports(&reports));
        }
        assert_eq!(digests[0], digests[1], "1 vs 2 workers, plan {plan:?}");
        assert_eq!(digests[0], digests[2], "1 vs 8 workers, plan {plan:?}");
    });
}

/// Exhausted retries surface as `Outcome::Failed`, never a panic, and
/// availability accounts for exactly the failed questions.
#[test]
fn heavy_faults_degrade_gracefully_into_availability() {
    cases(6, "graceful-degradation", |rng, _| {
        let seed = rng.gen_range(0u64..1000);
        let dataset = small_dataset(seed);
        let rate = 0.5 + rng.gen_range(0u64..50) as f64 / 100.0;
        let injector = FaultInjector::new(
            SimulatedLlm::with_seed(ModelId::Gpt35, seed),
            FaultPlan::uniform(rng.gen_range(0u64..1 << 32), rate),
        );
        let report = Evaluator::default().run(&injector, &dataset);
        let metrics = report.overall;
        assert_eq!(metrics.total(), dataset.len());
        let expected = 1.0 - metrics.failed as f64 / metrics.total() as f64;
        assert!((metrics.availability() - expected).abs() < 1e-12);
        if rate >= 0.9 {
            assert!(metrics.failed > 0, "rate {rate} must exhaust some retries");
        }
    });
}

/// The `Resilient` wrapper recovers transiently-faulty models: at a
/// modest fault rate, retries push availability well above the
/// no-retry floor.
#[test]
fn retries_buy_availability() {
    let dataset = small_dataset(7);
    let plan = FaultPlan::uniform(3, 0.4).with_malformed_rate(0.0);

    let no_retries = Evaluator::default()
        .with_resilience(ResiliencePolicy::default().with_max_attempts(1).without_breaker());
    let with_retries = Evaluator::default()
        .with_resilience(ResiliencePolicy::default().with_max_attempts(5).without_breaker());

    let fragile = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan.clone());
    let floor = no_retries.run(&fragile, &dataset).overall.availability();
    let sturdy = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan);
    let ceiling = with_retries.run(&sturdy, &dataset).overall.availability();
    assert!(
        ceiling > floor + 0.2,
        "5 attempts ({ceiling:.3}) should clear 1 attempt ({floor:.3}) by a wide margin"
    );
}
