//! `taxoglimpse` — command-line interface to the benchmark.
//!
//! ```text
//! taxoglimpse generate <taxonomy> [--scale S] [--seed N] [--format tsv|json|binary] [--out FILE]
//! taxoglimpse stats    <taxonomy|FILE> [--scale S] [--seed N]
//! taxoglimpse dataset  <taxonomy> --flavor easy|hard|mcq [--cap N] [--out FILE]
//! taxoglimpse eval     <taxonomy> --model NAME [--flavor F] [--setting zero|few|cot] [--cap N]
//! taxoglimpse ask      <taxonomy> --model NAME <child> <parent>
//! taxoglimpse hybrid   <taxonomy> --model NAME --cutoff K [--cap N]
//! taxoglimpse models
//! ```

use std::io::Write;
use taxoglimpse::core::hybrid::HybridTaxonomy;
use taxoglimpse::core::model::Query;
use taxoglimpse::core::parse::parse_tf;
use taxoglimpse::core::question::{Question, QuestionBody};
use taxoglimpse::core::templates::render_question;
use taxoglimpse::prelude::*;
use taxoglimpse::taxonomy::TaxonomyStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => println!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
usage:
  taxoglimpse generate <taxonomy> [--scale S] [--seed N] [--format tsv|json|binary] [--out FILE]
  taxoglimpse stats    <taxonomy> [--scale S] [--seed N]
  taxoglimpse dataset  <taxonomy> --flavor easy|hard|mcq [--cap N] [--seed N] [--out FILE]
  taxoglimpse eval     <taxonomy> --model NAME [--flavor F] [--setting zero|few|cot] [--cap N]
  taxoglimpse ask      <taxonomy> --model NAME <child> <parent>
  taxoglimpse hybrid   <taxonomy> --model NAME --cutoff K [--cap N]
  taxoglimpse enrich   <taxonomy> --model NAME [--cap N]
  taxoglimpse evolve   <taxonomy> [--seed N] [--scale S]
  taxoglimpse models";

/// Parsed common flags.
#[derive(Debug)]
struct Flags {
    scale: f64,
    seed: u64,
    cap: Option<usize>,
    model: Option<String>,
    flavor: QuestionDataset,
    setting: PromptSetting,
    format: String,
    out: Option<String>,
    cutoff: Option<usize>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        scale: 1.0,
        seed: 42,
        cap: None,
        model: None,
        flavor: QuestionDataset::Hard,
        setting: PromptSetting::ZeroShot,
        format: "tsv".to_owned(),
        out: None,
        cutoff: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => flags.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--seed" => flags.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--cap" => flags.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
            "--model" => flags.model = Some(value("--model")?),
            "--format" => flags.format = value("--format")?,
            "--out" => flags.out = Some(value("--out")?),
            "--cutoff" => {
                flags.cutoff = Some(value("--cutoff")?.parse().map_err(|e| format!("--cutoff: {e}"))?)
            }
            "--flavor" => {
                flags.flavor = match value("--flavor")?.to_ascii_lowercase().as_str() {
                    "easy" => QuestionDataset::Easy,
                    "hard" => QuestionDataset::Hard,
                    "mcq" => QuestionDataset::Mcq,
                    other => return Err(format!("unknown flavor {other:?}")),
                }
            }
            "--setting" => {
                flags.setting = match value("--setting")?.to_ascii_lowercase().as_str() {
                    "zero" | "zero-shot" => PromptSetting::ZeroShot,
                    "few" | "few-shot" => PromptSetting::FewShot,
                    "cot" => PromptSetting::ChainOfThought,
                    other => return Err(format!("unknown setting {other:?}")),
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            positional => flags.positional.push(positional.to_owned()),
        }
    }
    Ok(flags)
}

fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".to_owned());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "dataset" => cmd_dataset(&flags),
        "eval" => cmd_eval(&flags),
        "ask" => cmd_ask(&flags),
        "hybrid" => cmd_hybrid(&flags),
        "enrich" => cmd_enrich(&flags),
        "evolve" => cmd_evolve(&flags),
        "models" => Ok(cmd_models()),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn taxonomy_arg(flags: &Flags) -> Result<TaxonomyKind, String> {
    flags
        .positional
        .first()
        .ok_or_else(|| "missing taxonomy argument".to_owned())?
        .parse::<TaxonomyKind>()
}

fn model_arg(flags: &Flags) -> Result<std::sync::Arc<taxoglimpse::llm::SimulatedLlm>, String> {
    let name = flags.model.as_deref().ok_or("missing --model")?;
    ModelZoo::default_zoo()
        .by_name(name)
        .ok_or_else(|| format!("unknown model {name:?} (see `taxoglimpse models`)"))
}

fn emit(flags: &Flags, content: &[u8], what: &str) -> Result<String, String> {
    match &flags.out {
        Some(path) => {
            let mut file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            file.write_all(content).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!("wrote {what} ({} bytes) to {path}", content.len()))
        }
        None => String::from_utf8(content.to_vec())
            .map_err(|_| format!("{what} is binary; pass --out FILE")),
    }
}

fn cmd_generate(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    match flags.format.as_str() {
        "tsv" => emit(flags, taxonomy.to_tsv().as_bytes(), "taxonomy (tsv)"),
        "json" => emit(flags, taxonomy.to_json().as_bytes(), "taxonomy (json)"),
        "binary" if flags.out.is_none() => {
            Err("binary output goes to a file; pass --out FILE".to_owned())
        }
        "binary" => emit(flags, &taxonomy.to_binary(), "taxonomy (binary)"),
        other => Err(format!("unknown format {other:?} (tsv|json|binary)")),
    }
}

fn cmd_stats(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let stats = TaxonomyStats::compute(&taxonomy);
    Ok(format!(
        "{stats}\nleaves: {}, max branching: {}, mean internal branching: {:.2}",
        stats.num_leaves, stats.max_children, stats.mean_children_of_internal
    ))
}

fn cmd_dataset(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let dataset = DatasetBuilder::new(&taxonomy, kind, flags.seed)
        .sample_cap(flags.cap)
        .build(flags.flavor)
        .map_err(|e| e.to_string())?;
    let json = taxoglimpse_json::to_string_pretty(&dataset).map_err(|e| e.to_string())?;
    emit(flags, json.as_bytes(), "dataset (json)")
}

fn cmd_eval(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let model = model_arg(flags)?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let dataset = DatasetBuilder::new(&taxonomy, kind, flags.seed)
        .sample_cap(flags.cap)
        .build(flags.flavor)
        .map_err(|e| e.to_string())?;
    let report = Evaluator::builder().with_config(EvalConfig { setting: flags.setting, ..Default::default() }).build()
        .run(model.as_ref(), &dataset);
    let mut out = format!(
        "{} on {} {} ({}):\n  overall: {}\n",
        report.model, kind, flags.flavor, flags.setting, report.overall
    );
    for level in &report.by_level {
        out.push_str(&format!(
            "  level {} -> {}: A={:.3} M={:.3} (n={})\n",
            level.child_level,
            level.child_level - 1,
            level.metrics.accuracy(),
            level.metrics.miss_rate(),
            level.metrics.total(),
        ));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_ask(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let model = model_arg(flags)?;
    let [_, child, parent] = flags.positional.as_slice() else {
        return Err("ask needs <taxonomy> <child> <parent>".to_owned());
    };
    let question = Question {
        id: 0,
        taxonomy: kind,
        child: child.clone(),
        child_level: 1,
        parent_level: 0,
        true_parent: parent.clone(),
        instance_typing: false,
        body: QuestionBody::TrueFalse {
            candidate: parent.clone(),
            expected_yes: true,
            negative: None,
        },
    };
    let prompt = render_question(&question, Default::default());
    let query = Query::new(&prompt, &question, flags.setting);
    match model.answer(&query) {
        Ok(response) => Ok(format!(
            "Q: {prompt}\n{}: {}\nparsed: {:?}",
            model.id(),
            response.text,
            parse_tf(&response.text)
        )),
        Err(error) => Ok(format!("Q: {prompt}\n{}: request failed: {error}", model.id())),
    }
}

fn cmd_hybrid(flags: &Flags) -> Result<String, String> {
    let kind = taxonomy_arg(flags)?;
    let model = model_arg(flags)?;
    let cutoff = flags.cutoff.ok_or("missing --cutoff")?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let hybrid = HybridTaxonomy::build(&taxonomy, kind, cutoff);
    let reliability = hybrid.reliability(&taxonomy, model.as_ref(), flags.seed, flags.cap);
    let mut out = format!(
        "hybrid {kind} at cutoff {cutoff}: kept {} of {} nodes ({:.1}% saving)\nper-level Is-A reliability with {}:\n",
        hybrid.explicit().len(),
        taxonomy.len(),
        hybrid.cost_saving() * 100.0,
        model.id(),
    );
    for (level, accuracy) in reliability {
        let source = if level < cutoff { "tree " } else { "model" };
        out.push_str(&format!("  L{level} [{source}]: {accuracy:.3}\n"));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_enrich(flags: &Flags) -> Result<String, String> {
    use taxoglimpse::core::enrich::evaluate_reattachment;
    let kind = taxonomy_arg(flags)?;
    let model = model_arg(flags)?;
    let taxonomy = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let report = evaluate_reattachment(&taxonomy, kind, model.as_ref(), flags.seed, flags.cap.or(Some(200)));
    Ok(format!(
        "leaf re-attachment on {kind} with {}:\n  leaves evaluated:  {}\n  top-1 accuracy:    {:.3}\n  shortlist MRR:     {:.3}\n  model-confirmed:   {:.1}%",
        model.id(),
        report.evaluated,
        report.top1_accuracy,
        report.shortlist_mrr,
        report.confirmed_rate * 100.0
    ))
}

fn cmd_evolve(flags: &Flags) -> Result<String, String> {
    use taxoglimpse::synth::drift::{evolve, DriftConfig};
    use taxoglimpse::taxonomy::diff::diff;
    let kind = taxonomy_arg(flags)?;
    let v1 = generate(kind, GenOptions { seed: flags.seed, scale: flags.scale })
        .map_err(|e| e.to_string())?;
    let v2 = evolve(&v1, kind, DriftConfig::default(), flags.seed ^ 1);
    let d = diff(&v1, &v2);
    let mut out = format!(
        "simulated next release of {kind}: {} -> {} nodes\n  added {}, removed {}, moved {}\n",
        v1.len(),
        v2.len(),
        d.added.len(),
        d.removed.len(),
        d.moved.len()
    );
    for path in d.added.iter().take(5) {
        out.push_str(&format!("  + {path}\n"));
    }
    for path in d.removed.iter().take(5) {
        out.push_str(&format!("  - {path}\n"));
    }
    for (name, from, to) in d.moved.iter().take(5) {
        out.push_str(&format!("  ~ {name}: {from} -> {to}\n"));
    }
    Ok(out.trim_end().to_owned())
}

fn cmd_models() -> String {
    let mut out = String::from("the eighteen evaluated models:\n");
    for id in taxoglimpse::llm::profile::ModelId::ALL {
        let size = id
            .params_billion()
            .map(|b| format!("{b}B"))
            .unwrap_or_else(|| "closed".to_owned());
        out.push_str(&format!("  {:<12} {:?} ({size})\n", id.to_string(), id.family()));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn models_lists_eighteen() {
        let out = runv(&["models"]).unwrap();
        assert_eq!(out.lines().count(), 19);
        assert!(out.contains("GPT-4"));
        assert!(out.contains("closed"));
    }

    #[test]
    fn stats_prints_table1_row() {
        let out = runv(&["stats", "ebay"]).unwrap();
        assert!(out.contains("595 entities"));
        assert!(out.contains("shape 13-110-472"));
    }

    #[test]
    fn generate_tsv_to_stdout() {
        let out = runv(&["generate", "geonames", "--scale", "0.5"]).unwrap();
        assert!(out.starts_with("# geonames"));
    }

    #[test]
    fn eval_reports_metrics() {
        let out = runv(&["eval", "ebay", "--model", "GPT-4", "--cap", "10"]).unwrap();
        assert!(out.contains("GPT-4 on eBay hard"));
        assert!(out.contains("level 1 -> 0"));
    }

    #[test]
    fn ask_round_trips() {
        let out = runv(&["ask", "ncbi", "--model", "Flan-T5-3B", "Verbascum chaixii", "Verbascum"]).unwrap();
        assert!(out.contains("Is Verbascum chaixii a type of Verbascum?"));
        assert!(out.contains("parsed:"));
    }

    #[test]
    fn hybrid_reports_reliability() {
        let out = runv(&[
            "hybrid", "ebay", "--model", "GPT-4", "--cutoff", "2", "--cap", "10",
        ])
        .unwrap();
        assert!(out.contains("saving"));
        assert!(out.contains("L1 [tree ]: 1.000"));
        assert!(out.contains("L2 [model]"));
    }

    #[test]
    fn enrich_reports_reattachment() {
        let out = runv(&["enrich", "oae", "--model", "GPT-4", "--scale", "0.1", "--cap", "20"]).unwrap();
        assert!(out.contains("top-1 accuracy"));
        assert!(out.contains("shortlist MRR"));
    }

    #[test]
    fn evolve_shows_a_release_diff() {
        let out = runv(&["evolve", "glottolog", "--scale", "0.05"]).unwrap();
        assert!(out.contains("simulated next release"));
        assert!(out.contains("added"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(runv(&[]).is_err());
        assert!(runv(&["bogus"]).unwrap_err().contains("unknown command"));
        assert!(runv(&["eval", "ebay"]).unwrap_err().contains("--model"));
        assert!(runv(&["eval", "ebay", "--model", "GPT-5"]).unwrap_err().contains("unknown model"));
        assert!(runv(&["generate", "nope"]).unwrap_err().contains("unknown taxonomy"));
        assert!(runv(&["generate", "ebay", "--format", "xml"]).unwrap_err().contains("unknown format"));
    }

    #[test]
    fn binary_format_requires_out_file() {
        let err = runv(&["generate", "ebay", "--format", "binary"]).unwrap_err();
        assert!(err.contains("--out"));
    }
}
