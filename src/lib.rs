//! # TaxoGlimpse-RS
//!
//! A from-scratch Rust reproduction of *"Are Large Language Models a Good
//! Replacement of Taxonomies?"* (Sun et al., VLDB 2024) — the TaxoGlimpse
//! benchmark.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`taxonomy`] — the Is-A forest substrate,
//! * [`synth`] — synthetic taxonomy/instance generators for the paper's
//!   ten taxonomies,
//! * [`core`] — the benchmark itself: question design, sampling, datasets,
//!   prompting settings, metrics, evaluation harness, case study,
//! * [`llm`] — the simulated-LLM substrate with the eighteen-model zoo,
//! * [`report`] — table and figure renderers.
//!
//! ```
//! use taxoglimpse::prelude::*;
//!
//! // Generate a small shopping taxonomy and evaluate one simulated
//! // model on its hard QA workload through the unified Workload API.
//! let tax = generate(TaxonomyKind::Ebay, GenOptions::default()).unwrap();
//! let cx = WorkloadContext::new(&tax, TaxonomyKind::Ebay, 7);
//! let model = ModelZoo::default_zoo().get(ModelId::Gpt4).unwrap();
//! let report = WorkloadRunner::default()
//!     .run(&QaWorkload::new(QuestionDataset::Hard), model.as_ref(), &cx)
//!     .unwrap();
//! assert!(report.overall.accuracy() > 0.5);
//! ```

#![warn(missing_docs)]

pub use taxoglimpse_core as core;
pub use taxoglimpse_json as json;
pub use taxoglimpse_llm as llm;
pub use taxoglimpse_report as report;
pub use taxoglimpse_synth as synth;
pub use taxoglimpse_taxonomy as taxonomy;

/// Convenient glob-import surface covering the common workflow types:
/// dataset construction, the fallible model interface, the unified
/// [`Workload`](taxoglimpse_core::workload::Workload) surface (grid QA,
/// instance typing, hierarchical classification), evaluation (sequential
/// and grid), resilience, fault injection, and the virtual-time serving
/// layer.
pub mod prelude {
    pub use taxoglimpse_core::{
        cache::{CachedModel, ResponseCache},
        dataset::{DatasetBuilder, QuestionDataset},
        domain::{Domain, TaxonomyKind},
        eval::{EvalConfig, EvalReport, Evaluator},
        grid::GridRunner,
        hier::{DescentConfig, HierMetrics, HierReport, HierWorkload, RouterConfig},
        metrics::{Metrics, Outcome},
        model::{LanguageModel, ModelError, Query, Response},
        prompts::PromptSetting,
        question::{Question, QuestionKind},
        resilience::{BackoffPolicy, BreakerPolicy, Resilient, ResiliencePolicy},
        serve::{run_serve, ServeConfig, ServeReport, TenantSpec, TrafficConfig},
        shard::{run_grid_sharded, run_sharded, ShardRouter, ShardRun, ShardedDataset},
        workload::{
            InstanceTypingWorkload, QaWorkload, Workload, WorkloadContext, WorkloadError,
            WorkloadRunner,
        },
    };
    pub use taxoglimpse_report::histogram::LatencyHistogram;
    pub use taxoglimpse_report::merge::{merge_reports, merge_sharded, MergeError};
    pub use taxoglimpse_llm::{
        faults::{FaultInjector, FaultPlan},
        profile::ModelId,
        simulate::SimulatedLlm,
        zoo::ModelZoo,
    };
    pub use taxoglimpse_synth::{generate, GenOptions};
    pub use taxoglimpse_taxonomy::{NodeId, SubtreePartition, Taxonomy, TaxonomyBuilder};
}
