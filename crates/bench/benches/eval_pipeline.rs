//! End-to-end pipeline benchmark: generate → build dataset → evaluate,
//! the unit of work behind one (model, taxonomy) cell of Tables 5–7,
//! plus the §5.3 case study.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taxoglimpse_core::casestudy::{CaseStudy, CaseStudyConfig};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_cell(c: &mut Criterion) {
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    c.bench_function("pipeline/ebay_hard_full_cell", |b| {
        b.iter(|| {
            let taxonomy = generate(TaxonomyKind::Ebay, GenOptions { seed: 3, scale: 1.0 }).unwrap();
            let dataset = DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, 3)
                .build(QuestionDataset::Hard)
                .unwrap();
            black_box(Evaluator::default().run(model.as_ref(), &dataset))
        });
    });
}

fn bench_case_study(c: &mut Criterion) {
    let taxonomy = generate(TaxonomyKind::Amazon, GenOptions { seed: 3, scale: 0.1 }).unwrap();
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama2_70b).unwrap();
    c.bench_function("pipeline/casestudy_amazon_50_concepts", |b| {
        b.iter(|| {
            let study = CaseStudy::new(&taxonomy, TaxonomyKind::Amazon, CaseStudyConfig {
                cutoff_level: 3,
                products_per_concept: 8,
                sample_cap: Some(50),
                seed: 3,
            });
            black_box(study.run(model.as_ref()))
        });
    });
}

criterion_group!(benches, bench_cell, bench_case_study);
criterion_main!(benches);
