//! End-to-end pipeline benchmark: generate → build dataset → evaluate,
//! the unit of work behind one (model, taxonomy) cell of Tables 5–7,
//! plus the §5.3 case study.

use taxoglimpse_bench::harness::{black_box, Bench};
use taxoglimpse_core::casestudy::{CaseStudy, CaseStudyConfig};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_cell(b: &mut Bench) {
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).unwrap();
    b.bench("pipeline/ebay_hard_full_cell", || {
        let taxonomy = generate(TaxonomyKind::Ebay, GenOptions { seed: 3, scale: 1.0 }).unwrap();
        let dataset = DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, 3)
            .build(QuestionDataset::Hard)
            .unwrap();
        black_box(Evaluator::default().run(model.as_ref(), &dataset))
    });
}

fn bench_case_study(b: &mut Bench) {
    let taxonomy = generate(TaxonomyKind::Amazon, GenOptions { seed: 3, scale: 0.1 }).unwrap();
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama2_70b).unwrap();
    b.bench("pipeline/casestudy_amazon_50_concepts", || {
        let study = CaseStudy::new(&taxonomy, TaxonomyKind::Amazon, CaseStudyConfig {
            cutoff_level: 3,
            products_per_concept: 8,
            sample_cap: Some(50),
            seed: 3,
        });
        black_box(study.run(model.as_ref()))
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_cell(&mut b);
    bench_case_study(&mut b);
}
