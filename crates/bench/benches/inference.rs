//! Benchmarks of simulated-LLM inference: decision + free-text response
//! + parsing throughput, per model family and prompt setting.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::{EvalConfig, Evaluator};
use taxoglimpse_core::parse::parse_tf;
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_llm::knowledge::trigram_similarity;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_trigram(c: &mut Criterion) {
    c.bench_function("trigram_similarity/species_genus", |b| {
        b.iter(|| black_box(trigram_similarity(black_box("Verbascum chaixii"), black_box("Verbascum"))));
    });
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_tf/verbose", |b| {
        b.iter(|| black_box(parse_tf(black_box("Yes, Hailu is a type of Hakka-Chinese."))));
    });
}

fn bench_inference(c: &mut Criterion) {
    let ebay = generate(TaxonomyKind::Ebay, GenOptions { seed: 9, scale: 1.0 }).unwrap();
    let dataset = DatasetBuilder::new(&ebay, TaxonomyKind::Ebay, 9)
        .sample_cap(Some(100))
        .build(QuestionDataset::Hard)
        .unwrap();
    let zoo = ModelZoo::default_zoo();

    let mut group = c.benchmark_group("inference/ebay_hard_200q");
    group.throughput(Throughput::Elements(dataset.len() as u64));
    for model_id in [ModelId::Gpt4, ModelId::FlanT5_3b, ModelId::Llama2_7b] {
        let model = zoo.get(model_id).unwrap();
        for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
            let evaluator = Evaluator::new(EvalConfig { setting, ..Default::default() });
            group.bench_with_input(
                BenchmarkId::new(model_id.display_name(), setting),
                &(),
                |b, _| {
                    b.iter(|| black_box(evaluator.run(model.as_ref(), &dataset)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trigram, bench_parse, bench_inference);
criterion_main!(benches);
