//! Benchmarks of simulated-LLM inference: decision + free-text response
//! + parsing throughput, per model family and prompt setting.

use taxoglimpse_bench::harness::{black_box, Bench, Throughput};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::{EvalConfig, Evaluator};
use taxoglimpse_core::parse::parse_tf;
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_llm::knowledge::trigram_similarity;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_trigram(b: &mut Bench) {
    b.bench("trigram_similarity/species_genus", || {
        trigram_similarity(black_box("Verbascum chaixii"), black_box("Verbascum"))
    });
}

fn bench_parse(b: &mut Bench) {
    b.bench("parse_tf/verbose", || {
        parse_tf(black_box("Yes, Hailu is a type of Hakka-Chinese."))
    });
}

fn bench_inference(b: &mut Bench) {
    let ebay = generate(TaxonomyKind::Ebay, GenOptions { seed: 9, scale: 1.0 }).unwrap();
    let dataset = DatasetBuilder::new(&ebay, TaxonomyKind::Ebay, 9)
        .sample_cap(Some(100))
        .build(QuestionDataset::Hard)
        .unwrap();
    let zoo = ModelZoo::default_zoo();
    let questions = dataset.len() as u64;

    for model_id in [ModelId::Gpt4, ModelId::FlanT5_3b, ModelId::Llama2_7b] {
        let model = zoo.get(model_id).unwrap();
        for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
            let evaluator = Evaluator::builder().with_config(EvalConfig { setting, ..Default::default() }).build();
            let name = format!(
                "inference/ebay_hard_200q/{}/{setting}",
                model_id.display_name()
            );
            b.bench_with_throughput(&name, Throughput::Elements(questions), || {
                evaluator.run(model.as_ref(), &dataset)
            });
        }
    }
}

fn main() {
    let mut b = Bench::from_env();
    bench_trigram(&mut b);
    bench_parse(&mut b);
    bench_inference(&mut b);
}
