//! Micro-benchmarks of the taxonomy substrate: construction, traversal,
//! uncle lookup, validation, and the §5.3 truncation edit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_taxonomy_ops(c: &mut Criterion) {
    let amazon = generate(TaxonomyKind::Amazon, GenOptions { seed: 1, scale: 1.0 }).unwrap();
    let glottolog = generate(TaxonomyKind::Glottolog, GenOptions { seed: 1, scale: 1.0 }).unwrap();

    c.bench_function("ancestors/amazon_leaf", |b| {
        let leaf = *amazon.nodes_at_level(4).first().unwrap();
        b.iter(|| black_box(amazon.ancestors(black_box(leaf))));
    });

    c.bench_function("uncles/amazon_level3", |b| {
        let node = *amazon.nodes_at_level(3).first().unwrap();
        b.iter(|| black_box(amazon.uncles(black_box(node))));
    });

    c.bench_function("breadth_first/glottolog_full", |b| {
        b.iter(|| black_box(glottolog.breadth_first().count()));
    });

    c.bench_function("validate/amazon", |b| {
        b.iter(|| taxoglimpse_taxonomy::validate(black_box(&amazon)).unwrap());
    });

    c.bench_function("truncate_below/amazon_level4", |b| {
        b.iter(|| black_box(amazon.truncate_below(4)));
    });

    c.bench_function("stats/amazon", |b| {
        b.iter(|| black_box(taxoglimpse_taxonomy::TaxonomyStats::compute(&amazon)));
    });
}

criterion_group!(benches, bench_taxonomy_ops);
criterion_main!(benches);
