//! Micro-benchmarks of the taxonomy substrate: construction, traversal,
//! uncle lookup, validation, and the §5.3 truncation edit.

use taxoglimpse_bench::harness::{black_box, Bench};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_synth::{generate, GenOptions};

fn main() {
    let mut b = Bench::from_env();
    let amazon = generate(TaxonomyKind::Amazon, GenOptions { seed: 1, scale: 1.0 }).unwrap();
    let glottolog = generate(TaxonomyKind::Glottolog, GenOptions { seed: 1, scale: 1.0 }).unwrap();

    let leaf = *amazon.nodes_at_level(4).first().unwrap();
    b.bench("ancestors/amazon_leaf", || amazon.ancestors(black_box(leaf)));

    let node = *amazon.nodes_at_level(3).first().unwrap();
    b.bench("uncles/amazon_level3", || amazon.uncles(black_box(node)));

    b.bench("breadth_first/glottolog_full", || glottolog.breadth_first().count());

    b.bench("validate/amazon", || taxoglimpse_taxonomy::validate(black_box(&amazon)).unwrap());

    b.bench("truncate_below/amazon_level4", || amazon.truncate_below(4));

    b.bench("stats/amazon", || taxoglimpse_taxonomy::TaxonomyStats::compute(&amazon));
}
