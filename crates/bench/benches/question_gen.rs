//! Benchmarks of question/dataset generation: Cochran sampling,
//! negative sampling, MCQ assembly, and whole-dataset builds.

use taxoglimpse_bench::harness::{black_box, Bench, Throughput};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::workload::{InstanceTypingWorkload, Workload, WorkloadContext};
use taxoglimpse_core::sampling::cochran_sample_size;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_sampling(b: &mut Bench) {
    b.bench("cochran_sample_size/2M", || cochran_sample_size(black_box(2_069_560)));
}

fn bench_dataset_build(b: &mut Bench) {
    let google = generate(TaxonomyKind::Google, GenOptions { seed: 5, scale: 1.0 }).unwrap();
    for flavor in QuestionDataset::ALL {
        let n = DatasetBuilder::new(&google, TaxonomyKind::Google, 5).build(flavor).unwrap().len();
        let name = format!("dataset_build/google/{flavor}");
        b.bench_with_throughput(&name, Throughput::Elements(n as u64), || {
            DatasetBuilder::new(&google, TaxonomyKind::Google, 5).build(flavor).unwrap()
        });
    }
}

fn bench_instance_typing_build(b: &mut Bench) {
    let icd = generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 5, scale: 1.0 }).unwrap();
    b.bench("instance_typing_build/icd_hard", || {
        InstanceTypingWorkload::new(QuestionDataset::Hard)
            .with_sample_cap(Some(200))
            .build(&WorkloadContext::new(&icd, TaxonomyKind::Icd10Cm, 5))
            .unwrap()
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_sampling(&mut b);
    bench_dataset_build(&mut b);
    bench_instance_typing_build(&mut b);
}
