//! Benchmarks of question/dataset generation: Cochran sampling,
//! negative sampling, MCQ assembly, and whole-dataset builds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::instance_typing::InstanceTypingBuilder;
use taxoglimpse_core::sampling::cochran_sample_size;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_sampling(c: &mut Criterion) {
    c.bench_function("cochran_sample_size/2M", |b| {
        b.iter(|| black_box(cochran_sample_size(black_box(2_069_560))));
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let google = generate(TaxonomyKind::Google, GenOptions { seed: 5, scale: 1.0 }).unwrap();
    let mut group = c.benchmark_group("dataset_build/google");
    for flavor in QuestionDataset::ALL {
        let builder = DatasetBuilder::new(&google, TaxonomyKind::Google, 5);
        let n = builder.build(flavor).unwrap().len();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(flavor), &flavor, |b, &flavor| {
            b.iter(|| {
                black_box(
                    DatasetBuilder::new(&google, TaxonomyKind::Google, 5)
                        .build(flavor)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_instance_typing_build(c: &mut Criterion) {
    let icd = generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 5, scale: 1.0 }).unwrap();
    c.bench_function("instance_typing_build/icd_hard", |b| {
        b.iter(|| {
            black_box(
                InstanceTypingBuilder::new(&icd, TaxonomyKind::Icd10Cm, 5)
                    .unwrap()
                    .sample_cap(Some(200))
                    .build(QuestionDataset::Hard)
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_sampling, bench_dataset_build, bench_instance_typing_build);
criterion_main!(benches);
