//! Benchmarks of synthetic taxonomy generation (Table-1 fidelity) and
//! instance synthesis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_synth::instances::InstanceGenerator;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    for kind in [TaxonomyKind::Ebay, TaxonomyKind::Google, TaxonomyKind::Glottolog, TaxonomyKind::Oae] {
        let n = taxoglimpse_synth::TaxonomyProfile::of(kind).num_entities();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| black_box(generate(kind, GenOptions { seed: 7, scale: 1.0 }).unwrap()));
        });
    }
    // NCBI is 2.19M nodes; bench it at 10% so one sample stays sub-second.
    group.throughput(Throughput::Elements(219_012));
    group.bench_function("ncbi_scale_0.1", |b| {
        b.iter(|| black_box(generate(TaxonomyKind::Ncbi, GenOptions { seed: 7, scale: 0.1 }).unwrap()));
    });
    group.finish();
}

fn bench_instances(c: &mut Criterion) {
    let amazon = generate(TaxonomyKind::Amazon, GenOptions { seed: 7, scale: 0.2 }).unwrap();
    let leaves = amazon.leaves();
    let instgen = InstanceGenerator::new(TaxonomyKind::Amazon, 7).unwrap();
    let sample: Vec<_> = leaves.iter().copied().take(100).collect();
    c.bench_function("instances/amazon_100_leaves_x12", |b| {
        b.iter(|| black_box(instgen.instances_for(&amazon, &sample, 12)));
    });
}

criterion_group!(benches, bench_generation, bench_instances);
criterion_main!(benches);
