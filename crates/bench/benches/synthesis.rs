//! Benchmarks of synthetic taxonomy generation (Table-1 fidelity) and
//! instance synthesis.

use taxoglimpse_bench::harness::{Bench, Throughput};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_synth::instances::InstanceGenerator;
use taxoglimpse_synth::{generate, GenOptions};

fn bench_generation(b: &mut Bench) {
    for kind in [TaxonomyKind::Ebay, TaxonomyKind::Google, TaxonomyKind::Glottolog, TaxonomyKind::Oae] {
        let n = taxoglimpse_synth::TaxonomyProfile::of(kind).num_entities();
        let name = format!("generate/{}", kind.label());
        b.bench_with_throughput(&name, Throughput::Elements(n as u64), || {
            generate(kind, GenOptions { seed: 7, scale: 1.0 }).unwrap()
        });
    }
    // NCBI is 2.19M nodes; bench it at 10% so one sample stays sub-second.
    b.bench_with_throughput("generate/ncbi_scale_0.1", Throughput::Elements(219_012), || {
        generate(TaxonomyKind::Ncbi, GenOptions { seed: 7, scale: 0.1 }).unwrap()
    });
}

fn bench_instances(b: &mut Bench) {
    let amazon = generate(TaxonomyKind::Amazon, GenOptions { seed: 7, scale: 0.2 }).unwrap();
    let leaves = amazon.leaves();
    let instgen = InstanceGenerator::new(TaxonomyKind::Amazon, 7).unwrap();
    let sample: Vec<_> = leaves.iter().copied().take(100).collect();
    b.bench("instances/amazon_100_leaves_x12", || {
        instgen.instances_for(&amazon, &sample, 12)
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_generation(&mut b);
    bench_instances(&mut b);
}
