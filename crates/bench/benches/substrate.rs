//! Micro-benchmarks of the storage and lookup substrate: the binary
//! codec, the name index, structural reasoning (LCA), diffs, and the
//! parallel grid runner.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::drift::{evolve, DriftConfig};
use taxoglimpse_synth::{generate, GenOptions};
use taxoglimpse_taxonomy::diff::diff;
use taxoglimpse_taxonomy::Taxonomy;

fn bench_binary_codec(c: &mut Criterion) {
    let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    let bytes = t.to_binary();
    let mut group = c.benchmark_group("binary_codec/glottolog_12k");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(t.to_binary())));
    group.bench_function("decode", |b| b.iter(|| black_box(Taxonomy::from_binary(&bytes).unwrap())));
    group.finish();
}

fn bench_name_index(c: &mut Criterion) {
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    c.bench_function("name_index/build_amazon_44k", |b| b.iter(|| black_box(t.name_index())));
    let idx = t.name_index();
    let probe = t.name(t.nodes_at_level(3)[17]).to_owned();
    c.bench_function("name_index/lookup", |b| b.iter(|| black_box(idx.lookup(&probe))));
    c.bench_function("name_index/prefix", |b| b.iter(|| black_box(idx.prefix("wireless", 20))));
}

fn bench_reasoning(c: &mut Criterion) {
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    let a = *t.nodes_at_level(4).first().unwrap();
    let b_node = *t.nodes_at_level(4).last().unwrap();
    c.bench_function("reason/lca_amazon_leaves", |bch| b_iter_lca(bch, &t, a, b_node));
}

fn b_iter_lca(b: &mut criterion::Bencher, t: &Taxonomy, a: taxoglimpse_taxonomy::NodeId, c: taxoglimpse_taxonomy::NodeId) {
    b.iter(|| black_box(t.lca(black_box(a), black_box(c))));
}

fn bench_diff(c: &mut Criterion) {
    let v1 = generate(TaxonomyKind::Glottolog, GenOptions { seed: 3, scale: 0.5 }).unwrap();
    let v2 = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 3);
    c.bench_function("diff/glottolog_6k_one_release", |b| {
        b.iter(|| black_box(diff(&v1, &v2)))
    });
}

fn bench_grid(c: &mut Criterion) {
    let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 4, scale: 1.0 }).unwrap();
    let datasets: Vec<Dataset> = QuestionDataset::ALL
        .iter()
        .map(|&f| DatasetBuilder::new(&t, TaxonomyKind::Ebay, 4).sample_cap(Some(60)).build(f).unwrap())
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let arcs: Vec<_> = ModelId::ALL.iter().map(|&id| zoo.get(id).unwrap()).collect();
    let models: Vec<&dyn LanguageModel> = arcs.iter().map(|a| a.as_ref() as &dyn LanguageModel).collect();
    let mut group = c.benchmark_group("grid/18_models_x_3_flavors");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let runner = GridRunner::new(Default::default(), 1);
        b.iter(|| black_box(runner.run_cross(&models, &dataset_refs)))
    });
    group.bench_function("parallel", |b| {
        let runner = GridRunner::with_available_parallelism(Default::default());
        b.iter(|| black_box(runner.run_cross(&models, &dataset_refs)))
    });
    group.finish();
}

criterion_group!(benches, bench_binary_codec, bench_name_index, bench_reasoning, bench_diff, bench_grid);
criterion_main!(benches);
