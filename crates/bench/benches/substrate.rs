//! Micro-benchmarks of the storage and lookup substrate: the binary
//! codec, the name index, structural reasoning (LCA), diffs, and the
//! parallel grid runner.

use taxoglimpse_bench::harness::{black_box, Bench, Throughput};
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::drift::{evolve, DriftConfig};
use taxoglimpse_synth::{generate, GenOptions};
use taxoglimpse_taxonomy::diff::diff;
use taxoglimpse_taxonomy::Taxonomy;

fn bench_binary_codec(b: &mut Bench) {
    let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    let bytes = t.to_binary();
    let len = bytes.len() as u64;
    b.bench_with_throughput("binary_codec/glottolog_12k/encode", Throughput::Bytes(len), || {
        t.to_binary()
    });
    b.bench_with_throughput("binary_codec/glottolog_12k/decode", Throughput::Bytes(len), || {
        Taxonomy::from_binary(&bytes).unwrap()
    });
}

fn bench_name_index(b: &mut Bench) {
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    b.bench("name_index/build_amazon_44k", || t.name_index());
    let idx = t.name_index();
    let probe = t.name(t.nodes_at_level(3)[17]).to_owned();
    b.bench("name_index/lookup", || idx.lookup(black_box(&probe)));
    b.bench("name_index/prefix", || idx.prefix(black_box("wireless"), 20));
}

fn bench_reasoning(b: &mut Bench) {
    let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 2, scale: 1.0 }).unwrap();
    let a = *t.nodes_at_level(4).first().unwrap();
    let z = *t.nodes_at_level(4).last().unwrap();
    b.bench("reason/lca_amazon_leaves", || t.lca(black_box(a), black_box(z)));
}

fn bench_diff(b: &mut Bench) {
    let v1 = generate(TaxonomyKind::Glottolog, GenOptions { seed: 3, scale: 0.5 }).unwrap();
    let v2 = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 3);
    b.bench("diff/glottolog_6k_one_release", || diff(&v1, &v2));
}

fn bench_grid(b: &mut Bench) {
    let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 4, scale: 1.0 }).unwrap();
    let datasets: Vec<Dataset> = QuestionDataset::ALL
        .iter()
        .map(|&f| DatasetBuilder::new(&t, TaxonomyKind::Ebay, 4).sample_cap(Some(60)).build(f).unwrap())
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let zoo = ModelZoo::default_zoo();
    let arcs: Vec<_> = ModelId::ALL.iter().map(|&id| zoo.get(id).unwrap()).collect();
    let models: Vec<&dyn LanguageModel> = arcs.iter().map(|a| a.as_ref() as &dyn LanguageModel).collect();
    let sequential = GridRunner::builder().with_threads(1).build();
    b.bench("grid/18_models_x_3_flavors/sequential", || {
        sequential.run_cross(&models, &dataset_refs)
    });
    let parallel = GridRunner::builder().build();
    b.bench("grid/18_models_x_3_flavors/parallel", || {
        parallel.run_cross(&models, &dataset_refs)
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_binary_codec(&mut b);
    bench_name_index(&mut b);
    bench_reasoning(&mut b);
    bench_diff(&mut b);
    bench_grid(&mut b);
}
