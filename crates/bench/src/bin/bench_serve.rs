//! `bench_serve` — the machine-readable online-serving baseline.
//!
//! Drives the virtual-time serving layer (`core::serve`) with the
//! mixed tenant fleet over the Ebay hard dataset, one lane per model
//! in the default zoo subset, each lane a full
//! `FaultInjector<CachedModel<Arc<SimulatedLlm>>>` tower. The sweep
//! crosses arrival-rate factors (relative to the closed-form aggregate
//! lane capacity) × batch deadlines × fault rates {0%, 5%, 20%} and
//! records for each cell:
//!
//! * virtual latency percentiles (p50/p99/p999) from the log-scale
//!   [`LatencyHistogram`],
//! * sustained virtual throughput, shed rate by admission reason,
//!   availability, and batch occupancy,
//! * wall-clock serving throughput at one prefetch worker, plus the
//!   cell's event-trace digest.
//!
//! Two invariants are *enforced in-run*, not just recorded:
//!
//! 1. at every cell the trace digest — and the entire serving report —
//!    is identical across prefetch worker counts {1, 2, 8};
//! 2. at the fault-free saturation cell, wall-clock serving throughput
//!    stays within `MAX_OVERHEAD_RATIO` of the offline single-threaded
//!    grid throughput over the same towers — the serving loop (event
//!    heap, admission, batching, digest) must not eat the pipeline.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_serve -- \
//!     [--scale S] [--cap N] [--seed N] [--models CSV] [--repeat R] \
//!     [--requests N] [--label L] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_serve -- --check FILE
//! ```
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size
//! (and relaxes the overhead gate, which is noisy at tiny volumes).

use std::sync::Arc;
use std::time::Instant;
use taxoglimpse_bench::TaxonomyCache;
use taxoglimpse_core::cache::CachedModel;
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_core::question::Question;
use taxoglimpse_core::resilience::{BackoffPolicy, BreakerPolicy, ResiliencePolicy};
use taxoglimpse_core::serve::{run_serve, ServeConfig, ServeReport, TrafficConfig};
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_llm::faults::{FaultInjector, FaultPlan};
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_report::histogram::LatencyHistogram;

/// Current schema version of `BENCH_serve.json` (see README.md).
const SCHEMA_VERSION: u64 = 1;

/// Offered load as a fraction of the aggregate closed-form lane
/// capacity: comfortable, near-saturated, overloaded.
const RATE_FACTORS: [f64; 3] = [0.5, 0.9, 1.3];

/// Batch deadlines swept (seconds of virtual time): latency-leaning
/// and throughput-leaning.
const BATCH_DEADLINES_S: [f64; 2] = [0.005, 0.05];

/// The fault-rate ladder every cell is measured at.
const FAULT_RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// Prefetch worker counts whose serving reports must be byte-identical.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Same default model subset as `bench_eval` / `bench_resilience`.
const DEFAULT_MODELS: [ModelId; 4] =
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b, ModelId::FlanT5_3b];

/// Ceiling on `offline_qps / serve_wall_qps` at the fault-free
/// saturation cell (full workload).
const MAX_OVERHEAD_RATIO: f64 = 1.5;

/// The same ceiling under `TAXOGLIMPSE_BENCH_QUICK`, where per-run
/// fixed costs dominate a few hundred requests.
const MAX_OVERHEAD_RATIO_QUICK: f64 = 6.0;

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    cap: Option<usize>,
    seed: u64,
    models: Vec<ModelId>,
    repeat: usize,
    requests: usize,
    label: String,
    out: String,
    check: Option<String>,
    quick: bool,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.05 } else { 0.1 },
            cap: Some(if quick { 20 } else { 250 }),
            seed: 42,
            models: DEFAULT_MODELS.to_vec(),
            repeat: if quick { 1 } else { 3 },
            requests: if quick { 400 } else { 25_000 },
            label: "current".to_owned(),
            out: "BENCH_serve.json".to_owned(),
            check: None,
            quick,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--cap" => o.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?,
                "--requests" => o.requests = value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?,
                "--label" => o.label = value("--label")?,
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                "--models" => {
                    let csv = value("--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    o.models = models;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// A retry/breaker policy scaled to millisecond service times: the
/// evaluator's default (half-second backoff, 30 s cooldown) models
/// interactive clients, not a serving data plane.
fn serving_policy() -> ResiliencePolicy {
    ResiliencePolicy::default()
        .with_backoff(
            BackoffPolicy::default().with_base_s(0.01).with_multiplier(2.0).with_max_s(0.1),
        )
        .with_breaker(
            BreakerPolicy::default()
                .with_failure_threshold(5)
                .with_cooldown_s(0.5)
                .with_fast_fail_s(0.001),
        )
}

/// One lane tower: fault injection over a private response cache over
/// a simulated model.
fn tower(id: ModelId, seed: u64, fault_rate: f64) -> FaultInjector<CachedModel<Arc<SimulatedLlm>>> {
    let plan = if fault_rate > 0.0 {
        FaultPlan::uniform(seed, fault_rate).with_retry_after_s(0.02)
    } else {
        FaultPlan::disabled(seed)
    };
    FaultInjector::new(CachedModel::new(Arc::new(SimulatedLlm::new(id))), plan)
}

/// Run one serving cell with fresh towers, returning the report.
fn run_cell(
    opts: &BenchOptions,
    questions: &[Question],
    traffic: &TrafficConfig,
    config: &ServeConfig,
    fault_rate: f64,
) -> ServeReport {
    let towers: Vec<_> =
        opts.models.iter().map(|&id| tower(id, opts.seed, fault_rate)).collect();
    let refs: Vec<&dyn LanguageModel> = towers.iter().map(|t| t as &dyn LanguageModel).collect();
    run_serve(&refs, questions, traffic, config)
}

/// Offline reference: single-threaded grid evaluation over the same
/// fault-free towers and dataset, best-of-`repeat` queries/second.
fn offline_baseline(opts: &BenchOptions, dataset: &Dataset) -> f64 {
    let towers: Vec<_> = opts.models.iter().map(|&id| tower(id, opts.seed, 0.0)).collect();
    let refs: Vec<&dyn LanguageModel> = towers.iter().map(|t| t as &dyn LanguageModel).collect();
    let runner = GridRunner::builder().with_threads(1).build();
    let dataset_refs = [dataset];
    let queries = dataset.len() * opts.models.len();
    let mut best = f64::INFINITY;
    for _ in 0..opts.repeat.max(1) {
        let start = Instant::now();
        runner.run_cross(&refs, &dataset_refs);
        best = best.min(start.elapsed().as_secs_f64());
    }
    queries as f64 / best
}

/// Run the measured sweep and build the `BENCH_serve.json` document.
fn run_bench(opts: &BenchOptions) -> Json {
    let cache = TaxonomyCache::new();
    let kind = TaxonomyKind::Ebay;
    eprintln!("generating {} taxonomy at scale {} ...", kind.label(), opts.scale);
    let taxonomy = cache.get(kind, opts.seed, opts.scale);
    let dataset = DatasetBuilder::new(&taxonomy, kind, opts.seed)
        .sample_cap(opts.cap)
        .build(QuestionDataset::Hard)
        .expect("ebay has probe levels");
    let questions: Vec<Question> = dataset.questions().cloned().collect();

    let offline_qps = offline_baseline(opts, &dataset);
    eprintln!("offline baseline (1 thread): {offline_qps:.0} q/s over {} questions", dataset.len());

    let base_config = ServeConfig::default().with_resilience(serving_policy());
    let aggregate_capacity_qps = base_config.lane_capacity_qps() * opts.models.len() as f64;
    let max_ratio = if opts.quick { MAX_OVERHEAD_RATIO_QUICK } else { MAX_OVERHEAD_RATIO };

    let mut results = Vec::new();
    let mut saturation_wall_qps = 0.0f64;
    for rate_factor in RATE_FACTORS {
        let offered_qps = aggregate_capacity_qps * rate_factor;
        let horizon_s = opts.requests as f64 / offered_qps;
        let traffic = TrafficConfig::mixed_fleet(opts.seed, offered_qps, horizon_s);
        for deadline_s in BATCH_DEADLINES_S {
            for fault_rate in FAULT_RATES {
                let config = base_config.with_batch_deadline_s(deadline_s);

                // Invariant 1: the whole report — trace digest included
                // — is identical across prefetch worker counts.
                let mut wall_best = f64::INFINITY;
                let mut reference: Option<ServeReport> = None;
                for workers in WORKER_COUNTS {
                    let worker_config = config.with_workers(workers);
                    let start = Instant::now();
                    let report =
                        run_cell(opts, &questions, &traffic, &worker_config, fault_rate);
                    let elapsed = start.elapsed().as_secs_f64();
                    if workers == 1 {
                        wall_best = wall_best.min(elapsed);
                    }
                    match &reference {
                        None => reference = Some(report),
                        Some(first) => {
                            if report.trace_digest != first.trace_digest {
                                eprintln!(
                                    "error: rate {rate_factor} deadline {deadline_s} fault {fault_rate}: \
                                     digest {:016x} at {workers} workers != {:016x} at 1 worker",
                                    report.trace_digest, first.trace_digest
                                );
                                std::process::exit(1);
                            }
                            if &report != first {
                                eprintln!(
                                    "error: rate {rate_factor} deadline {deadline_s} fault {fault_rate}: \
                                     report diverges at {workers} workers despite equal digests"
                                );
                                std::process::exit(1);
                            }
                        }
                    }
                }
                // Extra timed repeats at one worker for a stable wall
                // number.
                for _ in 1..opts.repeat.max(1) {
                    let start = Instant::now();
                    run_cell(opts, &questions, &traffic, &config.with_workers(1), fault_rate);
                    wall_best = wall_best.min(start.elapsed().as_secs_f64());
                }

                let report = reference.expect("worker loop always runs");
                let mut histogram = LatencyHistogram::new();
                histogram.record_all(&report.latencies);
                let wall_qps = report.admitted as f64 / wall_best;
                if rate_factor == RATE_FACTORS[2] && fault_rate == 0.0 {
                    saturation_wall_qps = saturation_wall_qps.max(wall_qps);
                }

                eprintln!(
                    "rate {rate_factor} deadline {:.0}ms fault {fault_rate}: {} arrivals, \
                     shed {:.3}, p50 {:.2}ms p99 {:.2}ms, occ {:.1}, {:.0} virt-q/s, {:.0} wall-q/s, digest {:016x}",
                    deadline_s * 1e3,
                    report.arrivals,
                    report.shed_rate(),
                    histogram.p50() * 1e3,
                    histogram.p99() * 1e3,
                    report.mean_occupancy(),
                    report.sustained_qps(),
                    wall_qps,
                    report.trace_digest,
                );

                results.push(Json::obj(vec![
                    ("rate_factor", rate_factor.to_json()),
                    ("offered_qps", offered_qps.to_json()),
                    ("batch_deadline_ms", (deadline_s * 1e3).to_json()),
                    ("fault_rate", fault_rate.to_json()),
                    ("arrivals", report.arrivals.to_json()),
                    ("admitted", report.admitted.to_json()),
                    ("completed", report.completed.to_json()),
                    ("failed", report.failed.to_json()),
                    ("shed_rate", report.shed_rate().to_json()),
                    ("shed_rate_limited", report.shed.rate_limited.to_json()),
                    ("shed_overload", report.shed.overload.to_json()),
                    ("shed_queue_full", report.shed.queue_full.to_json()),
                    ("availability", report.availability().to_json()),
                    ("sustained_qps", report.sustained_qps().to_json()),
                    ("p50_ms", (histogram.p50() * 1e3).to_json()),
                    ("p99_ms", (histogram.p99() * 1e3).to_json()),
                    ("p999_ms", (histogram.p999() * 1e3).to_json()),
                    ("latency_samples", histogram.count().to_json()),
                    ("batches", report.batches.to_json()),
                    ("mean_occupancy", report.mean_occupancy().to_json()),
                    ("occupancy_max", report.occupancy_max.to_json()),
                    ("makespan_s", report.makespan_s.to_json()),
                    ("wall_ms", (wall_best * 1e3).to_json()),
                    ("wall_qps", wall_qps.to_json()),
                    ("trace_digest", format!("{:016x}", report.trace_digest).to_json()),
                    ("trace_events", report.trace_events.to_json()),
                    (
                        "workers_checked",
                        Json::Arr(WORKER_COUNTS.iter().map(|w| (*w as u64).to_json()).collect()),
                    ),
                ]));
            }
        }
    }

    // Invariant 2: the serving loop keeps up with the offline pipeline.
    let overhead_ratio = offline_qps / saturation_wall_qps;
    eprintln!(
        "headline: serve {saturation_wall_qps:.0} wall-q/s vs offline {offline_qps:.0} q/s \
         (ratio {overhead_ratio:.3}, gate {max_ratio})"
    );
    if overhead_ratio > max_ratio {
        eprintln!(
            "error: serving overhead ratio {overhead_ratio:.3} exceeds {max_ratio} — the \
             serving loop is eating the pipeline"
        );
        std::process::exit(1);
    }

    let workload = Json::obj(vec![
        ("models", Json::Arr(opts.models.iter().map(|m| m.to_string().to_json()).collect())),
        ("taxonomy", kind.label().to_json()),
        ("flavor", "hard".to_json()),
        ("scale", opts.scale.to_json()),
        ("cap", opts.cap.map(|c| (c as u64).to_json()).unwrap_or(Json::Null)),
        ("seed", opts.seed.to_json()),
        ("questions", (questions.len() as u64).to_json()),
        ("tenants", 8u64.to_json()),
        ("target_requests", (opts.requests as u64).to_json()),
        ("repeats", (opts.repeat as u64).to_json()),
        ("aggregate_capacity_qps", aggregate_capacity_qps.to_json()),
        ("quick", opts.quick.to_json()),
    ]);

    let headline = Json::obj(vec![
        ("offline_qps", offline_qps.to_json()),
        ("saturation_wall_qps", saturation_wall_qps.to_json()),
        ("overhead_ratio", overhead_ratio.to_json()),
        ("max_overhead_ratio", max_ratio.to_json()),
    ]);

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload),
        ("headline", headline),
        ("results", Json::Arr(results)),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate shape
/// plus the invariants the document claims.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    doc.get("workload").ok_or("missing workload object")?;

    let headline = doc.get("headline").ok_or("missing headline object")?;
    let offline = headline
        .get("offline_qps")
        .and_then(Json::as_f64)
        .filter(|q| *q > 0.0)
        .ok_or("offline_qps must be a positive number")?;
    let serve = headline
        .get("saturation_wall_qps")
        .and_then(Json::as_f64)
        .filter(|q| *q > 0.0)
        .ok_or("saturation_wall_qps must be a positive number")?;
    let ratio = headline
        .get("overhead_ratio")
        .and_then(Json::as_f64)
        .ok_or("missing overhead_ratio")?;
    let max_ratio = headline
        .get("max_overhead_ratio")
        .and_then(Json::as_f64)
        .ok_or("missing max_overhead_ratio")?;
    if (ratio - offline / serve).abs() > 1e-6 * ratio.abs().max(1.0) {
        return Err(format!("overhead_ratio {ratio} != offline_qps / saturation_wall_qps"));
    }
    if ratio > max_ratio {
        return Err(format!("overhead_ratio {ratio} exceeds the {max_ratio} gate"));
    }

    let results = doc.get("results").and_then(Json::as_arr).ok_or("missing results array")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    let mut rate_factors = std::collections::BTreeSet::new();
    let mut fault_rates = std::collections::BTreeSet::new();
    for entry in results {
        for key in [
            "rate_factor",
            "offered_qps",
            "batch_deadline_ms",
            "fault_rate",
            "arrivals",
            "admitted",
            "completed",
            "shed_rate",
            "availability",
            "sustained_qps",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "mean_occupancy",
            "wall_qps",
            "trace_digest",
            "workers_checked",
        ] {
            if entry.get(key).is_none() {
                return Err(format!("result entry missing {key:?}"));
            }
        }
        let fault_rate =
            entry.get("fault_rate").and_then(Json::as_f64).ok_or("fault_rate must be a number")?;
        let shed_rate = entry
            .get("shed_rate")
            .and_then(Json::as_f64)
            .filter(|s| (0.0..=1.0).contains(s))
            .ok_or("shed_rate must be in [0, 1]")?;
        let availability = entry
            .get("availability")
            .and_then(Json::as_f64)
            .filter(|a| (0.0..=1.0).contains(a))
            .ok_or("availability must be in [0, 1]")?;
        let p50 = entry.get("p50_ms").and_then(Json::as_f64).ok_or("p50_ms must be a number")?;
        let p99 = entry.get("p99_ms").and_then(Json::as_f64).ok_or("p99_ms must be a number")?;
        let p999 =
            entry.get("p999_ms").and_then(Json::as_f64).ok_or("p999_ms must be a number")?;
        if !(p50 <= p99 && p99 <= p999) {
            return Err(format!("percentiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}"));
        }
        if fault_rate == 0.0 && availability != 1.0 {
            return Err(format!("fault rate 0 availability {availability} != 1"));
        }
        let arrivals = entry.get("arrivals").and_then(Json::as_u64).ok_or("arrivals must be an integer")?;
        let admitted = entry.get("admitted").and_then(Json::as_u64).ok_or("admitted must be an integer")?;
        if admitted > arrivals {
            return Err(format!("admitted {admitted} exceeds arrivals {arrivals}"));
        }
        let expected_shed = (arrivals - admitted) as f64 / arrivals.max(1) as f64;
        if (shed_rate - expected_shed).abs() > 1e-9 {
            return Err(format!("shed_rate {shed_rate} inconsistent with arrivals/admitted"));
        }
        let workers = entry
            .get("workers_checked")
            .and_then(Json::as_arr)
            .ok_or("workers_checked must be an array")?;
        if workers.len() < WORKER_COUNTS.len() {
            return Err("workers_checked must cover {1, 2, 8}".to_owned());
        }
        rate_factors.insert(format!("{:.3}", entry.get("rate_factor").and_then(Json::as_f64).ok_or("rate_factor must be a number")?));
        fault_rates.insert(format!("{fault_rate:.3}"));
    }
    if rate_factors.len() < 3 {
        return Err(format!("need >= 3 arrival rates, found {}", rate_factors.len()));
    }
    if fault_rates.len() < 3 {
        return Err(format!("need >= 3 fault rates, found {}", fault_rates.len()));
    }
    Ok(format!(
        "{path}: OK ({} cells, {} rates x {} fault rates, overhead ratio {ratio:.3} <= {max_ratio}, schema v{version})",
        results.len(),
        rate_factors.len(),
        fault_rates.len(),
    ))
}
