//! `bench_synth` — the machine-readable data-production benchmark.
//!
//! Measures the cost of everything upstream of evaluation, per taxonomy
//! kind: sequential generation (the legacy pinned stream), parallel
//! chunk-stream generation at several worker counts, dataset assembly,
//! and snapshot save/load through the on-disk cache. Writes
//! `BENCH_synth.json` (same conventions as `BENCH_eval.json`: schema
//! version, label, workload, results, embedded baseline) so perf PRs
//! record before/after numbers on the same machine.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_synth -- \
//!     [--scale S] [--seed N] [--repeat R] [--label L] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_synth -- --check FILE
//! ```
//!
//! Determinism is enforced, not assumed: for every kind the parallel
//! generator runs at 1, 2 and 8 workers and the binary content digests
//! must be identical, and the snapshot round-trip must reproduce the
//! sequential taxonomy's digest — any mismatch aborts the run.
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size.

use std::time::Instant;
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_synth::{generate, generate_par, GenOptions, SEQ_STREAM_VERSION};
use taxoglimpse_taxonomy::SnapshotStore;

/// Current schema version of `BENCH_synth.json` (see README.md).
const SCHEMA_VERSION: u64 = 1;

/// Worker counts exercised by the parallel generator; digests across
/// all of them must agree.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Single-thread sequential generation baseline: best-of-N milliseconds
/// per kind at scale 1.0, seed 42, measured at commit b8d9056 on the
/// reference machine. Embedded so the committed benchmark always shows
/// before/after against the pre-optimization generator.
const BASELINE_COMMIT: &str = "b8d9056";
const BASELINE_GEN_MS: [(&str, f64); 10] = [
    ("ebay", 0.117),
    ("amazon", 9.836),
    ("google", 1.233),
    ("schema", 0.349),
    ("acm-ccs", 0.510),
    ("geonames", 0.184),
    ("glottolog", 3.216),
    ("icd-10-cm", 1.573),
    ("oae", 2.854),
    ("ncbi", 787.272),
];

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    seed: u64,
    repeat: usize,
    label: String,
    out: String,
    check: Option<String>,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.02 } else { 1.0 },
            seed: 42,
            repeat: if quick { 1 } else { 3 },
            label: "current".to_owned(),
            out: "BENCH_synth.json".to_owned(),
            check: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => {
                    o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
                }
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => {
                    o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?
                }
                "--label" => o.label = value("--label")?,
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// JSON key for a worker count (the counts are fixed by `WORKER_COUNTS`).
fn worker_key(workers: usize) -> &'static str {
    match workers {
        1 => "t1",
        2 => "t2",
        8 => "t8",
        _ => unreachable!("WORKER_COUNTS only contains 1, 2 and 8"),
    }
}

/// Best-of-N wall time in milliseconds of `f`, keeping the last result.
/// The previous round's result is dropped *before* the next timed run:
/// holding a ~100 MB taxonomy across rounds would deny the allocator
/// its pages and charge every round a fresh page-fault bill that no
/// real caller pays.
fn best_of<T>(repeat: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeat.max(1) {
        out = None;
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("repeat is at least one"))
}

fn run_bench(opts: &BenchOptions) -> Json {
    let gen_opts = GenOptions { seed: opts.seed, scale: opts.scale };
    let store = SnapshotStore::open_default();
    // The embedded baseline was measured at scale 1.0, seed 42; at any
    // other workload the comparison would be apples-to-oranges.
    let baseline_applies = opts.scale == 1.0 && opts.seed == 42;
    let dataset_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut results = Vec::new();
    for kind in TaxonomyKind::ALL {
        let label = kind.label();

        // Sequential (legacy pinned stream) generation.
        let (gen_seq_ms, seq) =
            best_of(opts.repeat, || generate(kind, gen_opts).expect("valid scale"));
        let seq_digest = seq.content_digest();

        // Parallel chunk-stream generation at each worker count; the
        // digest must not depend on the worker count.
        let mut par_ms = Vec::with_capacity(WORKER_COUNTS.len());
        let mut par_digest = None;
        for &workers in &WORKER_COUNTS {
            let (ms, t) = best_of(opts.repeat, || {
                generate_par(kind, gen_opts, workers).expect("valid scale")
            });
            let digest = t.content_digest();
            match par_digest {
                None => par_digest = Some(digest),
                Some(expected) if expected != digest => {
                    eprintln!(
                        "error: {label}: generate_par digest {digest:016x} at {workers} workers \
                         != {expected:016x} at {} workers — parallel generation is not \
                         worker-count invariant",
                        WORKER_COUNTS[0],
                    );
                    std::process::exit(1);
                }
                Some(_) => {}
            }
            par_ms.push((workers, ms));
        }
        let par_digest = par_digest.expect("at least one worker count is measured");

        // Dataset assembly over the sequential taxonomy.
        let (dataset_ms, dataset) = best_of(opts.repeat, || {
            DatasetBuilder::new(&seq, kind, opts.seed)
                .threads(dataset_threads)
                .build(QuestionDataset::Hard)
                .expect("benchmark taxonomies have probe levels")
        });

        // Snapshot round trip through the on-disk store.
        let key = SnapshotStore::key(label, opts.seed, opts.scale, SEQ_STREAM_VERSION);
        let (snap_save_ms, _) = best_of(opts.repeat, || {
            store.save(&key, &seq).expect("snapshot dir is writable")
        });
        let (snap_load_ms, loaded) = best_of(opts.repeat, || {
            store.load(&key).expect("just-saved snapshot loads")
        });
        if loaded.content_digest() != seq_digest {
            eprintln!("error: {label}: snapshot round trip changed the taxonomy bytes");
            std::process::exit(1);
        }

        let baseline_gen_ms = BASELINE_GEN_MS
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, ms)| ms)
            .filter(|_| baseline_applies);
        let par8_ms = par_ms
            .iter()
            .find(|&&(w, _)| w == 8)
            .map(|&(_, ms)| ms)
            .expect("worker count 8 is always measured");
        let speedup = baseline_gen_ms.map(|base| base / par8_ms);

        eprintln!(
            "{label}: {} nodes, seq {gen_seq_ms:.3} ms, par8 {par8_ms:.3} ms{}, \
             dataset {dataset_ms:.3} ms ({} questions), snapshot save {snap_save_ms:.3} ms \
             / load {snap_load_ms:.3} ms",
            seq.len(),
            speedup.map(|s| format!(" ({s:.2}x vs {BASELINE_COMMIT})")).unwrap_or_default(),
            dataset.len(),
        );

        let mut entry = vec![
            ("taxonomy", label.to_json()),
            ("nodes", (seq.len() as u64).to_json()),
            ("gen_seq_ms", gen_seq_ms.to_json()),
            ("seq_digest", format!("{seq_digest:016x}").to_json()),
            (
                "gen_par_ms",
                Json::obj(
                    par_ms
                        .iter()
                        .map(|&(w, ms)| (worker_key(w), ms.to_json()))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("par_digest", format!("{par_digest:016x}").to_json()),
            ("dataset_questions", (dataset.len() as u64).to_json()),
            ("dataset_ms", dataset_ms.to_json()),
            ("snap_save_ms", snap_save_ms.to_json()),
            ("snap_load_ms", snap_load_ms.to_json()),
            ("load_speedup_vs_gen", (gen_seq_ms / snap_load_ms).to_json()),
        ];
        if let (Some(base), Some(s)) = (baseline_gen_ms, speedup) {
            entry.push(("baseline_gen_ms", base.to_json()));
            entry.push(("gen_speedup_par8_vs_baseline", s.to_json()));
            // Load speedup against what a bench bin paid for this
            // taxonomy before the cache existed: the b8d9056
            // single-thread generation cost.
            entry.push(("load_speedup_vs_baseline_gen", (base / snap_load_ms).to_json()));
        }
        results.push(Json::obj(entry));
    }

    let workload = Json::obj(vec![
        (
            "taxonomies",
            Json::Arr(TaxonomyKind::ALL.iter().map(|k| k.label().to_json()).collect()),
        ),
        ("scale", opts.scale.to_json()),
        ("seed", opts.seed.to_json()),
        ("repeats", (opts.repeat as u64).to_json()),
        (
            "worker_counts",
            Json::Arr(WORKER_COUNTS.iter().map(|&w| (w as u64).to_json()).collect()),
        ),
        ("dataset_threads", (dataset_threads as u64).to_json()),
        ("cache_dir", store.dir().display().to_string().to_json()),
    ]);

    let baseline = Json::obj(vec![
        ("label", BASELINE_COMMIT.to_json()),
        (
            "note",
            "single-thread sequential generate() at scale 1.0, seed 42, best-of-N on the \
             reference machine"
                .to_json(),
        ),
        (
            "gen_ms",
            Json::obj(
                BASELINE_GEN_MS.iter().map(|&(l, ms)| (l, ms.to_json())).collect::<Vec<_>>(),
            ),
        ),
    ]);

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload),
        ("results", Json::Arr(results)),
        ("baseline", baseline),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate shape.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version =
        doc.get("schema_version").and_then(Json::as_u64).ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    doc.get("workload").and_then(Json::as_obj).ok_or("missing workload object")?;
    let results = doc.get("results").and_then(Json::as_arr).ok_or("missing results array")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    for entry in results {
        for key in [
            "taxonomy",
            "nodes",
            "gen_seq_ms",
            "seq_digest",
            "gen_par_ms",
            "par_digest",
            "dataset_ms",
            "snap_save_ms",
            "snap_load_ms",
        ] {
            if entry.get(key).is_none() {
                return Err(format!("result entry missing {key:?}"));
            }
        }
        for key in ["gen_seq_ms", "dataset_ms", "snap_save_ms", "snap_load_ms"] {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v > 0.0)
                .ok_or_else(|| format!("{key} must be a positive number"))?;
        }
    }
    let _ = doc.get("baseline").ok_or("missing baseline")?;
    Ok(format!("{path}: OK ({} taxonomies, schema v{version})", results.len()))
}
