//! Statistical companion to the headline tables: significance tests,
//! the popularity→accuracy correlation behind Finding 1, per-model
//! level-trend slopes behind Finding 2, and multi-seed variance of the
//! simulation vs the benchmark's own sampling error.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin analysis [--cap 200]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::analysis::{level_trend, spearman, two_proportion_z};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::table::Table;
use taxoglimpse_synth::PopularityModel;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();

    // ── popularity → accuracy correlation (Finding 1, quantified) ────
    println!("Popularity vs accuracy (hard datasets, Spearman rank correlation)\n");
    let popularity = PopularityModel::new(opts.seed);
    let mut table = Table::new(
        "per-model correlation between taxonomy popularity and accuracy".to_owned(),
        vec!["Model".into(), "rho".into()],
    );
    let pops: Vec<f64> = TaxonomyKind::ALL.iter().map(|&k| popularity.anchor(k)).collect();
    for model_id in [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama3_8b, ModelId::FlanT5_11b, ModelId::Llms4Ol] {
        let model = zoo.get(model_id).expect("zoo covers all ids");
        let accs: Vec<f64> = TaxonomyKind::ALL
            .iter()
            .map(|&kind| {
                let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
                let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);
                evaluator.run(model.as_ref(), &dataset).overall.accuracy()
            })
            .collect();
        table.push_row(vec![model_id.to_string(), format!("{:+.3}", spearman(&pops, &accs))]);
    }
    println!("{}", table.render_ascii());

    // ── pairwise significance on a specialized taxonomy ──────────────
    println!("Pairwise significance, Glottolog hard (two-proportion z-test)\n");
    let glotto = cache.get(TaxonomyKind::Glottolog, opts.seed, opts.scale_for(TaxonomyKind::Glottolog));
    let gd = build_dataset(&glotto, TaxonomyKind::Glottolog, QuestionDataset::Hard, &opts);
    let contenders = [ModelId::Gpt4, ModelId::Llms4Ol, ModelId::Llama3_8b, ModelId::FlanT5_11b];
    let reports: Vec<_> = contenders
        .iter()
        .map(|&id| evaluator.run(zoo.get(id).unwrap().as_ref(), &gd))
        .collect();
    for i in 0..contenders.len() {
        for j in (i + 1)..contenders.len() {
            let t = two_proportion_z(&reports[i].overall, &reports[j].overall);
            println!(
                "  {:<12} ({:.3}) vs {:<12} ({:.3}): z = {:+.2}, p = {:.4} {}",
                contenders[i].to_string(),
                reports[i].overall.accuracy(),
                contenders[j].to_string(),
                reports[j].overall.accuracy(),
                t.z,
                t.p_value,
                if t.significant() { "*" } else { "" }
            );
        }
    }

    // ── level-trend slopes (Finding 2, quantified) ───────────────────
    println!("\nLevel-trend slopes (accuracy per level step; negative = root-to-leaf decline)\n");
    for kind in [TaxonomyKind::Amazon, TaxonomyKind::Glottolog, TaxonomyKind::Oae] {
        let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
        let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);
        let mut slopes = Vec::new();
        for model in zoo.all() {
            slopes.push(level_trend(&evaluator.run(model.as_ref(), &dataset)));
        }
        let declining = slopes.iter().filter(|&&s| s < 0.0).count();
        let mean = slopes.iter().sum::<f64>() / slopes.len() as f64;
        println!("  {:<10} mean slope {mean:+.3}, {declining}/18 models declining", kind.display_name());
    }

    // ── simulation variance vs sampling error ────────────────────────
    println!("\nMulti-seed variance (GPT-4, eBay hard): simulation noise vs the ±5% design margin\n");
    let ebay = cache.get(TaxonomyKind::Ebay, opts.seed, 1.0);
    let ed = build_dataset(&ebay, TaxonomyKind::Ebay, QuestionDataset::Hard, &opts);
    let accs: Vec<f64> = (0..8u64)
        .map(|s| {
            evaluator
                .run(&SimulatedLlm::with_seed(ModelId::Gpt4, s), &ed)
                .overall
                .accuracy()
        })
        .collect();
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let sd = (accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / accs.len() as f64).sqrt();
    let (lo, hi) = evaluator
        .run(&SimulatedLlm::new(ModelId::Gpt4), &ed)
        .overall
        .accuracy_ci95();
    println!("  8-seed accuracy: mean {mean:.3}, sd {sd:.3}; single-run Wilson 95% CI [{lo:.3}, {hi:.3}]");
    println!("  simulation noise sits inside the benchmark's own sampling error.");
}
