//! Regenerates the **§5.3 case study** — replacing level-4-and-below of
//! the Amazon Product Category with Llama-2-70B.
//!
//! Paper reference points: 59% construction/maintenance saving,
//! precision 0.713, recall 0.792.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin casestudy [--cap 100]
//! ```

use taxoglimpse_bench::{RunOptions, TaxonomyCache};
use taxoglimpse_core::casestudy::{CaseStudy, CaseStudyConfig};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let taxonomy = cache.get(TaxonomyKind::Amazon, opts.seed, opts.scale_for(TaxonomyKind::Amazon));

    let config = CaseStudyConfig {
        cutoff_level: 4,
        products_per_concept: 12,
        sample_cap: opts.cap,
        seed: opts.seed,
    };
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Llama2_70b).expect("zoo covers all ids");

    let study = CaseStudy::new(&taxonomy, TaxonomyKind::Amazon, config);
    let start = std::time::Instant::now();
    let result = study.run(model.as_ref());
    let elapsed = start.elapsed();

    println!("Case study (§5.3): Amazon Product Category levels >= 4 replaced by Llama-2-70B");
    println!("  kept nodes:        {}", result.kept_nodes);
    println!("  removed nodes:     {}", result.removed_nodes);
    println!("  cost saving:       {:.1}%   (paper: 59%)", result.cost_saving * 100.0);
    println!("  precision:         {:.3}   (paper: 0.713)", result.precision);
    println!("  recall:            {:.3}   (paper: 0.792)", result.recall);
    println!("  concepts sampled:  {}", result.concepts_evaluated);
    println!("  classifications:   {} in {elapsed:?}", result.classifications);
}
