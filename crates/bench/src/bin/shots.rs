//! Shot-count sweep: how many few-shot exemplars does it take to
//! unlock an abstention-prone model? The paper fixes five shots (§4.4);
//! this sweep shows where the benefit saturates.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin shots [--cap 150]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::score;
use taxoglimpse_core::metrics::{Metrics, Outcome};
use taxoglimpse_core::model::{LanguageModel, Query};
use taxoglimpse_core::parse::{parse_mcq, parse_tf};
use taxoglimpse_core::prompts::{render_prompt_n, PromptSetting};
use taxoglimpse_core::question::QuestionKind;
use taxoglimpse_core::templates::TemplateVariant;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::table::{fmt3, Table};

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let kind = TaxonomyKind::Amazon;
    let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind).min(0.3));
    let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);

    let shot_counts = [0usize, 1, 2, 3, 5];
    let mut headers = vec!["Model".into(), "".into()];
    headers.extend(shot_counts.iter().map(|s| format!("{s}-shot")));
    let mut table = Table::new(
        format!("Few-shot exemplar sweep on {} hard ({} questions)", kind.display_name(), dataset.len()),
        headers,
    );

    for model_id in [ModelId::Llama2_7b, ModelId::Falcon40b, ModelId::Mistral7b, ModelId::Gpt4] {
        let model = zoo.get(model_id).expect("zoo covers all ids");
        let mut row_a = vec![model_id.to_string(), "A".to_owned()];
        let mut row_m = vec![String::new(), "M".to_owned()];
        for &shots in &shot_counts {
            // 0 shots is rendered as zero-shot; >0 as few-shot with a
            // truncated exemplar block. The *setting* passed to the model
            // is FewShot whenever exemplars are present, because the
            // abstention effect comes from seeing answered examples.
            let setting = if shots == 0 { PromptSetting::ZeroShot } else { PromptSetting::FewShot };
            let mut metrics = Metrics::default();
            for slice in &dataset.levels {
                let exemplars = &slice.exemplars[..shots.min(slice.exemplars.len())];
                for question in &slice.questions {
                    let prompt = render_prompt_n(question, setting, TemplateVariant::Canonical, exemplars, shots);
                    let query = Query::new(&prompt, question, setting);
                    let outcome = match model.answer(&query) {
                        Ok(response) => {
                            let parsed = match question.kind() {
                                QuestionKind::TrueFalse => parse_tf(&response.text),
                                QuestionKind::Mcq => parse_mcq(&response.text),
                            };
                            score(question, parsed)
                        }
                        Err(_) => Outcome::Failed,
                    };
                    metrics.record(outcome);
                }
            }
            row_a.push(fmt3(metrics.accuracy()));
            row_m.push(fmt3(metrics.miss_rate()));
        }
        table.push_row(row_a);
        table.push_row(row_m);
    }
    println!("{}", table.render_ascii());
    println!("the paper's five-shot choice sits on the plateau: most of the miss-rate collapse arrives by the first exemplars.");
}
