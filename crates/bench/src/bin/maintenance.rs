//! Maintenance-cost experiment (extends §5.3's construction-cost
//! argument): simulate several releases of a taxonomy under realistic
//! curation drift and count how many edit operations a maintainer must
//! apply — versus how many a hybrid taxonomy (deep levels delegated to
//! an LLM) absorbs for free.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin maintenance [--scale 0.2]
//! ```

use taxoglimpse_bench::RunOptions;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_report::table::Table;
use taxoglimpse_synth::drift::{evolve, DriftConfig};
use taxoglimpse_synth::{generate, GenOptions};
use taxoglimpse_taxonomy::diff::diff;

fn main() {
    let opts = RunOptions::from_env();
    let releases = 5usize;
    let config = DriftConfig::default();

    let mut table = Table::new(
        format!(
            "Maintenance over {releases} releases (drift: +{:.0}% / -{:.0}% / ~{:.0}% of leaves per release)",
            config.add_rate * 100.0,
            config.remove_rate * 100.0,
            config.move_rate * 100.0
        ),
        vec![
            "Taxonomy".into(),
            "cutoff".into(),
            "total edits".into(),
            "edits in kept levels".into(),
            "maintenance absorbed".into(),
        ],
    );

    for (kind, cutoff, scale) in [
        (TaxonomyKind::Amazon, 4usize, opts.scale.min(0.2)),
        (TaxonomyKind::Glottolog, 4, opts.scale.min(0.3)),
        (TaxonomyKind::Oae, 3, opts.scale.min(0.3)),
    ] {
        let mut current = generate(kind, GenOptions { seed: opts.seed, scale }).expect("valid");
        let mut total_edits = 0usize;
        let mut kept_edits = 0usize;
        for release in 0..releases {
            let next = evolve(&current, kind, config, opts.seed ^ release as u64);
            let d = diff(&current, &next);
            total_edits += d.total_changes();
            // Edits strictly above the cutoff still need a human; edits
            // at or below it vanish in the hybrid form.
            kept_edits += d.total_changes() - d.changes_at_or_below(cutoff);
            current = next;
        }
        let absorbed = if total_edits == 0 {
            0.0
        } else {
            100.0 * (total_edits - kept_edits) as f64 / total_edits as f64
        };
        table.push_row(vec![
            kind.display_name().into(),
            cutoff.to_string(),
            total_edits.to_string(),
            kept_edits.to_string(),
            format!("{absorbed:.1}%"),
        ]);
    }
    println!("{}", table.render_ascii());
    println!(
        "curation churn concentrates at the leaves, so the hybrid form absorbs nearly all of it —\n\
         the maintenance-cost complement to the paper's 59% construction saving."
    );
}
