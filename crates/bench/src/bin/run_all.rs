//! Runs every experiment in sequence (Tables 1/4/5/6/7, Figures 2–7,
//! the case study), re-invoking the sibling binaries so each prints its
//! own artifact.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin run_all -- --scale 0.05 --cap 100
//! ```

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");

    let binaries = [
        "table1", "fig2", "table4", "tables567", "fig3", "fig4", "fig5", "fig6", "fig7",
        "casestudy", "ablation", "maintenance", "cost", "analysis", "leaderboard", "shots",
    ];
    for bin in binaries {
        println!("\n==================== {bin} ====================\n");
        let status = Command::new(dir.join(bin))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
    println!("\nall experiments completed");
}
