//! Regenerates **Table 1** — statistics of the ten taxonomies.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin table1 [--scale 1.0]
//! ```

use taxoglimpse_bench::RunOptions;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_report::table::Table;
use taxoglimpse_synth::{generate, GenOptions};
use taxoglimpse_taxonomy::TaxonomyStats;

fn main() {
    let opts = RunOptions::from_env();
    let mut table = Table::new(
        format!("Table 1: Statistics of taxonomies (scale {})", opts.scale),
        vec![
            "Domain".into(),
            "Taxonomy".into(),
            "# of entities".into(),
            "# of levels".into(),
            "# of trees".into(),
            "# of nodes and classes in each level".into(),
        ],
    );
    for kind in TaxonomyKind::ALL {
        let start = std::time::Instant::now();
        let taxonomy = generate(kind, GenOptions { seed: opts.seed, scale: opts.scale })
            .expect("valid scale");
        let stats = TaxonomyStats::compute(&taxonomy);
        eprintln!("generated {kind} ({} nodes) in {:?}", stats.num_entities, start.elapsed());
        table.push_row(vec![
            kind.domain().to_string(),
            kind.display_name().to_owned(),
            stats.num_entities.to_string(),
            stats.num_levels.to_string(),
            stats.num_trees.to_string(),
            stats.shape_string(),
        ]);
    }
    println!("{}", table.render_ascii());
}
