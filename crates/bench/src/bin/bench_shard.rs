//! `bench_shard` — the machine-readable sharded scale-out baseline.
//!
//! Exercises `core::shard` at both of its levels and records the
//! results in `BENCH_shard.json` (schema v1):
//!
//! * **Grid section**: the ten-taxonomy × model grid runs as
//!   {1, 2, 8} shards, each shard owning a disjoint set of
//!   (model, taxonomy) cells with its own `GridRunner`, its own
//!   response cache, and its own fault-injector instances, at fault
//!   rates 0% / 5% / 20%.
//! * **Big-taxonomy section**: NCBI and ICD-10-CM at `--big-scale`
//!   (default 1.0 — NCBI is 2.19M nodes, ten times the grid section's
//!   0.1 scale) are split into content-keyed subtree slots
//!   (`SubtreePartition`), evaluated as {1, 2, 8} shards, and the
//!   per-shard partial reports merged in shard-index order.
//!
//! One invariant is *enforced in-run*, not just recorded: within every
//! fault rate the reports digest (grid) and the merged-report digest
//! (big taxonomies) must be byte-identical across all shard counts.
//! Any divergence aborts the run — sharding must be a pure executor.
//! Alongside the digests the document records scaling efficiency vs
//! the single-shard baseline and the availability-vs-shard-count curve
//! at every fault rate, plus per-shard cache hit rates.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_shard -- \
//!     [--scale S] [--big-scale B] [--cap N] [--seed N] [--models CSV] \
//!     [--repeat R] [--threads T] [--chunk C] [--label L] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_shard -- --check FILE
//! ```
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size.

use std::sync::Arc;
use std::time::Instant;
use taxoglimpse_bench::TaxonomyCache;
use taxoglimpse_core::cache::{CacheStats, CachedModel, ResponseCache};
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::{EvalReport, Evaluator};
use taxoglimpse_core::grid::GridRunnerBuilder;
use taxoglimpse_core::metrics::Metrics;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_core::shard::{run_grid_sharded, run_sharded, ShardedDataset, NUM_SLOTS};
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_llm::faults::{FaultInjector, FaultPlan};
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::merge::merge_sharded;
use taxoglimpse_synth::rng::{hash_str, mix64};
use taxoglimpse_taxonomy::SubtreePartition;

/// Current schema version of `BENCH_shard.json` (see README.md).
const SCHEMA_VERSION: u64 = 1;

/// Shard counts whose reports must be byte-identical within each rate.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// The fault-rate ladder every section measures.
const FAULT_RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// Batch size used throughout (the `bench_eval` headline batch tier).
const BATCH_SIZE: usize = 32;

/// The big taxonomies sharded at `--big-scale`.
const BIG_TAXONOMIES: [TaxonomyKind; 2] = [TaxonomyKind::Ncbi, TaxonomyKind::Icd10Cm];

/// Same default model subset as `bench_eval` / `bench_resilience`.
const DEFAULT_MODELS: [ModelId; 4] =
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b, ModelId::FlanT5_3b];

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    big_scale: f64,
    cap: Option<usize>,
    seed: u64,
    models: Vec<ModelId>,
    repeat: usize,
    threads: usize,
    chunk: usize,
    label: String,
    out: String,
    check: Option<String>,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.05 } else { 0.1 },
            big_scale: if quick { 0.1 } else { 1.0 },
            cap: Some(if quick { 20 } else { 250 }),
            seed: 42,
            models: DEFAULT_MODELS.to_vec(),
            repeat: if quick { 1 } else { 3 },
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            chunk: 256,
            label: "current".to_owned(),
            out: "BENCH_shard.json".to_owned(),
            check: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--big-scale" => {
                    o.big_scale =
                        value("--big-scale")?.parse().map_err(|e| format!("--big-scale: {e}"))?
                }
                "--cap" => o.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?,
                "--threads" => o.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
                "--chunk" => o.chunk = value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?,
                "--label" => o.label = value("--label")?,
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                "--models" => {
                    let csv = value("--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    o.models = models;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// Digest over the JSON of every report, in order (same recipe as
/// `bench_eval` / `bench_resilience` and the pinned determinism test).
fn digest_reports(reports: &[EvalReport]) -> u64 {
    let mut digest = 0xBA5E_11AEu64;
    for report in reports {
        let json = taxoglimpse_json::to_string(report).expect("reports serialize");
        digest = mix64(digest ^ hash_str(0x5EED, &json));
    }
    digest
}

/// Abort the run if `digest` diverges from the rate's first-seen digest.
fn enforce_rate_digest(
    rate_digest: &mut Option<u64>,
    digest: u64,
    section: &str,
    rate: f64,
    shards: usize,
) {
    if *rate_digest.get_or_insert(digest) != digest {
        eprintln!(
            "error: {section}: rate {rate}: {shards} shards produced digest {digest:016x}, \
             other shard counts produced {:016x} — sharding changed report bytes",
            rate_digest.expect("rate digest was just inserted"),
        );
        std::process::exit(1);
    }
}

/// Run the measured workload and build the `BENCH_shard.json` document.
fn run_bench(opts: &BenchOptions) -> Json {
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();

    // ---- Grid section: ten taxonomies × model subset, sharded by cell.
    eprintln!("generating {} taxonomies at scale {} ...", TaxonomyKind::ALL.len(), opts.scale);
    let datasets: Vec<Dataset> = TaxonomyKind::ALL
        .into_iter()
        .map(|kind| {
            let taxonomy = cache.get(kind, opts.seed, opts.scale);
            DatasetBuilder::new(&taxonomy, kind, opts.seed)
                .sample_cap(opts.cap)
                .build(QuestionDataset::Hard)
                .expect("benchmark taxonomies have probe levels")
        })
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let questions: usize = datasets.iter().map(Dataset::len).sum();
    let queries = questions * opts.models.len();
    let model_arcs: Vec<Arc<SimulatedLlm>> =
        opts.models.iter().map(|&id| zoo.get(id).expect("zoo covers all ids")).collect();

    let mut grid_results = Vec::new();
    for rate in FAULT_RATES {
        let mut rate_digest: Option<u64> = None;
        let mut single_best: Option<f64> = None;
        let mut entries = Vec::new();
        for shards in SHARD_COUNTS {
            // Keep the total worker budget roughly constant across
            // shard counts: each shard's runner gets its slice.
            let threads = (opts.threads / shards).max(1);
            let builder = GridRunnerBuilder::default()
                .with_threads(threads)
                .with_chunk_size(opts.chunk)
                .with_batch_size(BATCH_SIZE);
            // One response cache per shard, shared by that shard's
            // models across reps: rep 0 fills it cold, warm reps
            // measure the served path. Each shard also gets its own
            // injector instances (per-shard breakers and stats) over
            // the same pure fault plan.
            let shard_caches: Vec<Arc<ResponseCache>> =
                (0..shards).map(|_| Arc::new(ResponseCache::new())).collect();
            let stacks: Vec<Vec<FaultInjector<CachedModel<Arc<SimulatedLlm>>>>> = shard_caches
                .iter()
                .map(|shard_cache| {
                    model_arcs
                        .iter()
                        .map(|m| {
                            FaultInjector::new(
                                CachedModel::with_cache(Arc::clone(m), Arc::clone(shard_cache)),
                                FaultPlan::uniform(opts.seed, rate),
                            )
                        })
                        .collect()
                })
                .collect();
            let stack_refs: Vec<Vec<&dyn LanguageModel>> = stacks
                .iter()
                .map(|stack| stack.iter().map(|m| m as &dyn LanguageModel).collect())
                .collect();

            let mut best = f64::INFINITY;
            let mut total = 0.0;
            let mut digest = 0u64;
            let mut availability = 0.0;
            for rep in 0..opts.repeat.max(1) {
                let start = Instant::now();
                let reports = run_grid_sharded(builder, &stack_refs, &dataset_refs);
                let elapsed = start.elapsed().as_secs_f64();
                total += elapsed;
                best = best.min(elapsed);
                if rep == 0 {
                    digest = digest_reports(&reports);
                    let mut pooled = Metrics::default();
                    for report in &reports {
                        pooled += report.overall;
                    }
                    availability = pooled.availability();
                }
            }
            enforce_rate_digest(&mut rate_digest, digest, "grid", rate, shards);

            let repeats = opts.repeat.max(1) as f64;
            let qps = queries as f64 / best;
            let cache_stats: CacheStats = shard_caches.iter().map(|c| c.stats()).sum();
            let speedup = match single_best {
                None => {
                    single_best = Some(best);
                    1.0
                }
                Some(single) => single / best,
            };
            eprintln!(
                "grid rate {rate}: {shards} shards × {threads} workers: best {:.1} ms, \
                 {:.0} q/s, avail {:.4}, hit rate {:.2}, digest {digest:016x}",
                best * 1e3,
                qps,
                availability,
                cache_stats.hit_rate(),
            );
            entries.push(Json::obj(vec![
                ("shards", (shards as u64).to_json()),
                ("workers_per_shard", (threads as u64).to_json()),
                ("best_elapsed_ms", (best * 1e3).to_json()),
                ("mean_elapsed_ms", (total / repeats * 1e3).to_json()),
                ("queries_per_sec", qps.to_json()),
                ("availability", availability.to_json()),
                ("cache_hit_rate", cache_stats.hit_rate().to_json()),
                ("speedup_vs_single_shard", speedup.to_json()),
                ("reports_digest", format!("{digest:016x}").to_json()),
            ]));
        }
        grid_results.push(Json::obj(vec![
            ("fault_rate", rate.to_json()),
            ("queries", (queries as u64).to_json()),
            ("entries", Json::Arr(entries)),
        ]));
    }

    // ---- Big-taxonomy section: NCBI / ICD-10-CM subtree-sharded.
    let mut big_results = Vec::new();
    for kind in BIG_TAXONOMIES {
        eprintln!("generating {} at scale {} ...", kind.label(), opts.big_scale);
        let taxonomy = cache.get(kind, opts.seed, opts.big_scale);
        let dataset = DatasetBuilder::new(&taxonomy, kind, opts.seed)
            .sample_cap(opts.cap)
            .threads(opts.threads)
            .build(QuestionDataset::Hard)
            .expect("big taxonomies have probe levels");
        let partition = SubtreePartition::new(&taxonomy, NUM_SLOTS);
        let sharded = ShardedDataset::partition(&dataset, &taxonomy, &partition);
        assert_eq!(sharded.len(), dataset.len(), "partitioning must not drop questions");
        let evaluator = Evaluator::default().with_batch_size(BATCH_SIZE);
        let base = zoo.get(ModelId::Gpt4).expect("zoo covers GPT-4");

        let mut rate_results = Vec::new();
        for rate in FAULT_RATES {
            let mut rate_digest: Option<u64> = None;
            let mut single_best: Option<f64> = None;
            let mut entries = Vec::new();
            for shards in SHARD_COUNTS {
                let shard_caches: Vec<Arc<ResponseCache>> =
                    (0..shards).map(|_| Arc::new(ResponseCache::new())).collect();
                let stacks: Vec<FaultInjector<CachedModel<Arc<SimulatedLlm>>>> = shard_caches
                    .iter()
                    .map(|shard_cache| {
                        FaultInjector::new(
                            CachedModel::with_cache(Arc::clone(&base), Arc::clone(shard_cache)),
                            FaultPlan::uniform(opts.seed, rate),
                        )
                    })
                    .collect();
                let stack_refs: Vec<&dyn LanguageModel> =
                    stacks.iter().map(|m| m as &dyn LanguageModel).collect();

                let mut best = f64::INFINITY;
                let mut total = 0.0;
                let mut digest = 0u64;
                let mut availability = 0.0;
                let mut per_shard = Vec::new();
                for rep in 0..opts.repeat.max(1) {
                    let start = Instant::now();
                    let runs = run_sharded(&evaluator, &stack_refs, &sharded);
                    let elapsed = start.elapsed().as_secs_f64();
                    total += elapsed;
                    best = best.min(elapsed);
                    if rep == 0 {
                        let merged = merge_sharded(&runs).unwrap_or_else(|e| {
                            eprintln!("error: {}: {shards} shards: {e}", kind.label());
                            std::process::exit(1);
                        });
                        digest = digest_reports(std::slice::from_ref(&merged));
                        availability = merged.overall.availability();
                        per_shard = runs
                            .iter()
                            .map(|run| {
                                Json::obj(vec![
                                    ("shard", (run.shard as u64).to_json()),
                                    ("slots", (run.slots.len() as u64).to_json()),
                                    ("questions", (run.questions as u64).to_json()),
                                    (
                                        "availability",
                                        run.report.overall.availability().to_json(),
                                    ),
                                    (
                                        "cache_hit_rate",
                                        shard_caches[run.shard].stats().hit_rate().to_json(),
                                    ),
                                ])
                            })
                            .collect();
                    }
                }
                enforce_rate_digest(&mut rate_digest, digest, kind.label(), rate, shards);

                let repeats = opts.repeat.max(1) as f64;
                let qps = dataset.len() as f64 / best;
                let speedup = match single_best {
                    None => {
                        single_best = Some(best);
                        1.0
                    }
                    Some(single) => single / best,
                };
                let efficiency = speedup / shards as f64;
                eprintln!(
                    "{} rate {rate}: {shards} shards: best {:.1} ms, {:.0} q/s, \
                     avail {:.4}, speedup {speedup:.2}x, eff {efficiency:.2}, digest {digest:016x}",
                    kind.label(),
                    best * 1e3,
                    qps,
                    availability,
                );
                entries.push(Json::obj(vec![
                    ("shards", (shards as u64).to_json()),
                    ("best_elapsed_ms", (best * 1e3).to_json()),
                    ("mean_elapsed_ms", (total / repeats * 1e3).to_json()),
                    ("queries_per_sec", qps.to_json()),
                    ("availability", availability.to_json()),
                    ("speedup_vs_single_shard", speedup.to_json()),
                    ("scaling_efficiency", efficiency.to_json()),
                    ("merged_digest", format!("{digest:016x}").to_json()),
                    ("per_shard", Json::Arr(per_shard)),
                ]));
            }
            rate_results.push(Json::obj(vec![
                ("fault_rate", rate.to_json()),
                ("entries", Json::Arr(entries)),
            ]));
        }
        big_results.push(Json::obj(vec![
            ("taxonomy", kind.label().to_json()),
            ("nodes", (taxonomy.len() as u64).to_json()),
            ("questions", (dataset.len() as u64).to_json()),
            ("occupied_slots", (sharded.occupied_slots() as u64).to_json()),
            ("rates", Json::Arr(rate_results)),
        ]));
    }

    let workload = Json::obj(vec![
        ("models", Json::Arr(opts.models.iter().map(|m| m.to_string().to_json()).collect())),
        (
            "taxonomies",
            Json::Arr(TaxonomyKind::ALL.iter().map(|k| k.label().to_json()).collect()),
        ),
        (
            "big_taxonomies",
            Json::Arr(BIG_TAXONOMIES.iter().map(|k| k.label().to_json()).collect()),
        ),
        ("flavor", "hard".to_json()),
        ("scale", opts.scale.to_json()),
        ("big_scale", opts.big_scale.to_json()),
        ("cap", opts.cap.map(|c| (c as u64).to_json()).unwrap_or(Json::Null)),
        ("seed", opts.seed.to_json()),
        ("grid_questions", (questions as u64).to_json()),
        ("grid_queries_per_rate", (queries as u64).to_json()),
        ("num_slots", (NUM_SLOTS as u64).to_json()),
        ("batch_size", (BATCH_SIZE as u64).to_json()),
        ("threads", (opts.threads as u64).to_json()),
        ("chunk_size", (opts.chunk as u64).to_json()),
        ("repeats", (opts.repeat as u64).to_json()),
        (
            "shard_counts",
            Json::Arr(SHARD_COUNTS.iter().map(|s| (*s as u64).to_json()).collect()),
        ),
        ("fault_rates", Json::Arr(FAULT_RATES.iter().map(|r| r.to_json()).collect())),
    ]);

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload),
        ("grid", Json::Arr(grid_results)),
        ("big", Json::Arr(big_results)),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate shape
/// plus the invariants the document claims: within every fault rate the
/// digest is identical across shard counts (grid and big sections), at
/// rate 0 availability is exactly 1, and throughput / efficiency
/// numbers are positive.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    doc.get("workload").and_then(Json::as_obj).ok_or("missing workload object")?;

    let grid = doc.get("grid").and_then(Json::as_arr).ok_or("missing grid array")?;
    if grid.is_empty() {
        return Err("empty grid array".to_owned());
    }
    let mut grid_entries = 0usize;
    for group in grid {
        let rate =
            group.get("fault_rate").and_then(Json::as_f64).ok_or("grid group missing fault_rate")?;
        let tag = format!("grid rate {rate}");
        grid_entries += check_entry_group(group, &tag, rate, "reports_digest")?;
    }

    let big = doc.get("big").and_then(Json::as_arr).ok_or("missing big array")?;
    if big.is_empty() {
        return Err("empty big array".to_owned());
    }
    let mut big_entries = 0usize;
    for section in big {
        let taxonomy =
            section.get("taxonomy").and_then(Json::as_str).ok_or("big section missing taxonomy")?;
        for key in ["nodes", "questions", "occupied_slots"] {
            if section.get(key).is_none() {
                return Err(format!("{taxonomy}: big section missing {key:?}"));
            }
        }
        let rates =
            section.get("rates").and_then(Json::as_arr).ok_or("big section missing rates array")?;
        if rates.is_empty() {
            return Err(format!("{taxonomy}: empty rates array"));
        }
        for group in rates {
            let rate = group
                .get("fault_rate")
                .and_then(Json::as_f64)
                .ok_or("big rate group missing fault_rate")?;
            let tag = format!("{taxonomy} rate {rate}");
            big_entries += check_entry_group(group, &tag, rate, "merged_digest")?;
        }
    }

    Ok(format!(
        "{path}: OK ({} grid rates / {grid_entries} entries, {} big taxonomies / \
         {big_entries} entries, schema v{version})",
        grid.len(),
        big.len(),
    ))
}

/// Validate one rate group's `entries`: required keys, positive
/// throughput, availability in [0, 1] (exactly 1 at fault rate 0),
/// digests identical across every shard count in the group, and —
/// when present — positive scaling efficiency and per-shard stats in
/// range. Returns the number of entries checked.
fn check_entry_group(
    group: &Json,
    tag: &str,
    rate: f64,
    digest_key: &str,
) -> Result<usize, String> {
    let entries =
        group.get("entries").and_then(Json::as_arr).ok_or_else(|| format!("{tag}: missing entries"))?;
    if entries.is_empty() {
        return Err(format!("{tag}: empty entries array"));
    }
    let mut group_digest: Option<&str> = None;
    for entry in entries {
        let shards = entry
            .get("shards")
            .and_then(Json::as_u64)
            .filter(|s| *s >= 1)
            .ok_or_else(|| format!("{tag}: entry missing a positive shards count"))?;
        for key in ["best_elapsed_ms", "mean_elapsed_ms", "speedup_vs_single_shard"] {
            if entry.get(key).is_none() {
                return Err(format!("{tag}: {shards} shards: entry missing {key:?}"));
            }
        }
        entry
            .get("queries_per_sec")
            .and_then(Json::as_f64)
            .filter(|q| *q > 0.0)
            .ok_or_else(|| format!("{tag}: {shards} shards: queries_per_sec must be positive"))?;
        let avail = entry
            .get("availability")
            .and_then(Json::as_f64)
            .filter(|a| (0.0..=1.0).contains(a))
            .ok_or_else(|| format!("{tag}: {shards} shards: availability must be in [0, 1]"))?;
        if rate == 0.0 && avail != 1.0 {
            return Err(format!("{tag}: {shards} shards: availability {avail} != 1 at rate 0"));
        }
        if let Some(eff) = entry.get("scaling_efficiency") {
            eff.as_f64()
                .filter(|e| *e > 0.0)
                .ok_or_else(|| format!("{tag}: {shards} shards: scaling_efficiency must be positive"))?;
        }
        if let Some(hit) = entry.get("cache_hit_rate") {
            hit.as_f64()
                .filter(|h| (0.0..=1.0).contains(h))
                .ok_or_else(|| format!("{tag}: {shards} shards: cache_hit_rate must be in [0, 1]"))?;
        }
        if let Some(per_shard) = entry.get("per_shard") {
            let shard_entries = per_shard
                .as_arr()
                .filter(|a| a.len() == shards as usize)
                .ok_or_else(|| format!("{tag}: {shards} shards: per_shard must list every shard"))?;
            for shard_entry in shard_entries {
                for key in ["shard", "slots", "questions"] {
                    if shard_entry.get(key).is_none() {
                        return Err(format!("{tag}: {shards} shards: per-shard entry missing {key:?}"));
                    }
                }
                shard_entry
                    .get("availability")
                    .and_then(Json::as_f64)
                    .filter(|a| (0.0..=1.0).contains(a))
                    .ok_or_else(|| {
                        format!("{tag}: {shards} shards: per-shard availability must be in [0, 1]")
                    })?;
            }
        }
        let digest = entry
            .get(digest_key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{tag}: {shards} shards: entry missing {digest_key:?}"))?;
        if *group_digest.get_or_insert(digest) != digest {
            return Err(format!(
                "{tag}: {shards} shards digest {digest} differs from {} — \
                 sharding changed report bytes",
                group_digest.unwrap_or_default(),
            ));
        }
    }
    Ok(entries.len())
}
