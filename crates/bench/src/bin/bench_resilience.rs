//! `bench_resilience` — the machine-readable resilience baseline.
//!
//! Runs the grid pipeline with every model wrapped in the deterministic
//! [`FaultInjector`] at a ladder of fault rates (0%, 5%, 20%), and
//! records for each rate:
//!
//! * throughput (queries/second, best-of-repeats),
//! * pooled availability (fraction of questions that got any answer),
//! * the retry-amplification factor (model deliveries per question —
//!   how much extra serving the retry layer buys its availability with),
//! * virtual per-query latency percentiles of the retry layer (backoff
//!   waits + retries + fast-fails on a fresh session clock, via the
//!   log-scale histogram the serving benchmarks use),
//! * a `reports_digest` over every report's JSON.
//!
//! Two invariants are *enforced in-run*, not just recorded:
//!
//! 1. at every fault rate the digest is identical across worker counts
//!    {1, 2, 8} — fault streams key on question identity, never worker;
//! 2. at fault rate 0 the digest equals a bare (un-wrapped) model run —
//!    the resilience layer is byte-invisible when nothing fails.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_resilience -- \
//!     [--scale S] [--cap N] [--seed N] [--models CSV] [--repeat R] \
//!     [--threads T] [--chunk C] [--label L] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_resilience -- --check FILE
//! ```
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size.

use std::time::Instant;
use taxoglimpse_bench::TaxonomyCache;
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::EvalReport;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::metrics::Metrics;
use taxoglimpse_core::model::{LanguageModel, Query};
use taxoglimpse_core::prompts::{render_prompt, PromptSetting};
use taxoglimpse_core::resilience::{ResiliencePolicy, ResilienceSession};
use taxoglimpse_core::templates::TemplateVariant;
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_llm::faults::{FaultInjector, FaultPlan};
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_report::histogram::LatencyHistogram;
use taxoglimpse_synth::rng::{hash_str, mix64};

/// Current schema version of `BENCH_resilience.json` (see README.md).
const SCHEMA_VERSION: u64 = 1;

/// The fault-rate ladder every run measures.
const FAULT_RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// Worker counts whose reports must be byte-identical.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Same default model subset as `bench_eval`.
const DEFAULT_MODELS: [ModelId; 4] =
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b, ModelId::FlanT5_3b];

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    cap: Option<usize>,
    seed: u64,
    models: Vec<ModelId>,
    repeat: usize,
    threads: usize,
    chunk: usize,
    label: String,
    out: String,
    check: Option<String>,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.05 } else { 0.1 },
            cap: Some(if quick { 20 } else { 250 }),
            seed: 42,
            models: DEFAULT_MODELS.to_vec(),
            repeat: if quick { 1 } else { 3 },
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            chunk: 256,
            label: "current".to_owned(),
            out: "BENCH_resilience.json".to_owned(),
            check: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--cap" => o.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?,
                "--threads" => o.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
                "--chunk" => o.chunk = value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?,
                "--label" => o.label = value("--label")?,
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                "--models" => {
                    let csv = value("--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    o.models = models;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// Digest over the JSON of every report, in grid order (same recipe as
/// `bench_eval` and the pinned determinism test).
fn digest_reports(reports: &[EvalReport]) -> u64 {
    let mut digest = 0xBA5E_11AEu64;
    for report in reports {
        let json = taxoglimpse_json::to_string(report).expect("reports serialize");
        digest = mix64(digest ^ hash_str(0x5EED, &json));
    }
    digest
}

/// Per-query *virtual* latency of the retry layer at one fault rate:
/// replay every query through a fresh [`ResilienceSession`] per model
/// and measure the session-clock delta (backoff waits, retry
/// deliveries, breaker fast-fails) each query costs. Percentiles come
/// from the log-scale [`LatencyHistogram`] the serving benchmarks use.
fn virtual_latency(models: &[&dyn LanguageModel], datasets: &[&Dataset]) -> Json {
    let mut histogram = LatencyHistogram::new();
    for model in models {
        let mut session = ResilienceSession::new(ResiliencePolicy::default());
        for dataset in datasets {
            for question in dataset.questions() {
                let prompt = render_prompt(
                    question,
                    PromptSetting::ZeroShot,
                    TemplateVariant::default(),
                    &[],
                );
                let query = Query::new(&prompt, question, PromptSetting::ZeroShot);
                let before_s = session.clock_s();
                // The outcome itself is scored by the grid runs; here
                // only the clock cost matters.
                let _ = session.call(*model, &query);
                histogram.record(session.clock_s() - before_s);
            }
        }
    }
    Json::obj(vec![
        ("samples", histogram.count().to_json()),
        ("p50_s", histogram.p50().to_json()),
        ("p99_s", histogram.p99().to_json()),
        ("p999_s", histogram.p999().to_json()),
    ])
}

/// Run the measured workload and build the `BENCH_resilience.json`
/// document.
fn run_bench(opts: &BenchOptions) -> Json {
    let cache = TaxonomyCache::new();

    eprintln!("generating {} taxonomies at scale {} ...", TaxonomyKind::ALL.len(), opts.scale);
    let datasets: Vec<Dataset> = TaxonomyKind::ALL
        .into_iter()
        .map(|kind| {
            let taxonomy = cache.get(kind, opts.seed, opts.scale);
            DatasetBuilder::new(&taxonomy, kind, opts.seed)
                .sample_cap(opts.cap)
                .build(QuestionDataset::Hard)
                .expect("benchmark taxonomies have probe levels")
        })
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let questions: usize = datasets.iter().map(Dataset::len).sum();
    let queries = questions * opts.models.len();

    let runner_with = |threads: usize| {
        GridRunner::builder().with_threads(threads).with_chunk_size(opts.chunk).build()
    };

    // The rate-0 reference: bare models, no injector anywhere.
    let bare: Vec<SimulatedLlm> =
        opts.models.iter().map(|&id| SimulatedLlm::new(id)).collect();
    let bare_refs: Vec<&dyn LanguageModel> =
        bare.iter().map(|m| m as &dyn LanguageModel).collect();
    let bare_digest =
        digest_reports(&runner_with(opts.threads).run_cross(&bare_refs, &dataset_refs));

    let mut results = Vec::new();
    for rate in FAULT_RATES {
        let injectors: Vec<FaultInjector<SimulatedLlm>> = opts
            .models
            .iter()
            .map(|&id| {
                FaultInjector::new(SimulatedLlm::new(id), FaultPlan::uniform(opts.seed, rate))
            })
            .collect();
        let model_refs: Vec<&dyn LanguageModel> =
            injectors.iter().map(|m| m as &dyn LanguageModel).collect();

        // Invariant 1: digests identical across worker counts.
        let mut worker_digests = Vec::new();
        for workers in WORKER_COUNTS {
            let reports = runner_with(workers).run_cross(&model_refs, &dataset_refs);
            worker_digests.push((workers, digest_reports(&reports)));
        }
        let digest = worker_digests[0].1;
        for (workers, d) in &worker_digests {
            if *d != digest {
                eprintln!(
                    "error: rate {rate}: digest {d:016x} at {workers} workers != {digest:016x} at {} workers",
                    worker_digests[0].0
                );
                std::process::exit(1);
            }
        }

        // Invariant 2: at rate 0 the injector is byte-invisible.
        if rate == 0.0 && digest != bare_digest {
            eprintln!(
                "error: rate 0 digest {digest:016x} != bare-model digest {bare_digest:016x}"
            );
            std::process::exit(1);
        }

        // Measure throughput and collect availability + amplification
        // from a final clean run at the configured thread count.
        let runner = runner_with(opts.threads);
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..opts.repeat.max(1) {
            let start = Instant::now();
            runner.run_cross(&model_refs, &dataset_refs);
            let elapsed = start.elapsed().as_secs_f64();
            total += elapsed;
            best = best.min(elapsed);
        }
        for injector in &injectors {
            injector.reset();
        }
        let reports = runner.run_cross(&model_refs, &dataset_refs);
        let mut pooled = Metrics::default();
        for report in &reports {
            pooled += report.overall;
        }
        let deliveries: u64 = injectors.iter().map(|i| i.stats().calls).sum();
        let injected: u64 = injectors.iter().map(|i| i.stats().injected).sum();
        let amplification = deliveries as f64 / queries.max(1) as f64;

        let repeats = opts.repeat.max(1) as f64;
        let qps = queries as f64 / best;
        let latency = virtual_latency(&model_refs, &dataset_refs);
        eprintln!(
            "rate {rate}: {queries} queries, best {:.1} ms, {:.0} q/s, avail {:.4}, amp {:.3}, digest {digest:016x}",
            best * 1e3,
            qps,
            pooled.availability(),
            amplification,
        );
        results.push(Json::obj(vec![
            ("fault_rate", rate.to_json()),
            ("queries", (queries as u64).to_json()),
            ("best_elapsed_ms", (best * 1e3).to_json()),
            ("mean_elapsed_ms", (total / repeats * 1e3).to_json()),
            ("queries_per_sec", qps.to_json()),
            ("availability", pooled.availability().to_json()),
            ("failed", (pooled.failed as u64).to_json()),
            ("deliveries", deliveries.to_json()),
            ("injected_faults", injected.to_json()),
            ("retry_amplification", amplification.to_json()),
            ("virtual_latency", latency),
            ("reports_digest", format!("{digest:016x}").to_json()),
            (
                "workers_checked",
                Json::Arr(WORKER_COUNTS.iter().map(|w| (*w as u64).to_json()).collect()),
            ),
        ]));
    }

    let workload = Json::obj(vec![
        ("models", Json::Arr(opts.models.iter().map(|m| m.to_string().to_json()).collect())),
        (
            "taxonomies",
            Json::Arr(TaxonomyKind::ALL.iter().map(|k| k.label().to_json()).collect()),
        ),
        ("flavor", "hard".to_json()),
        ("scale", opts.scale.to_json()),
        ("cap", opts.cap.map(|c| (c as u64).to_json()).unwrap_or(Json::Null)),
        ("seed", opts.seed.to_json()),
        ("questions", (questions as u64).to_json()),
        ("queries_per_rate", (queries as u64).to_json()),
        ("threads", (opts.threads as u64).to_json()),
        ("chunk_size", (opts.chunk as u64).to_json()),
        ("repeats", (opts.repeat as u64).to_json()),
        ("bare_digest", format!("{bare_digest:016x}").to_json()),
    ]);

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload),
        ("results", Json::Arr(results)),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate shape
/// plus the cross-rate invariants the document claims.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    let workload = doc.get("workload").ok_or("missing workload object")?;
    let bare_digest =
        workload.get("bare_digest").and_then(Json::as_str).ok_or("missing bare_digest")?;
    let results = doc.get("results").and_then(Json::as_arr).ok_or("missing results array")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    for entry in results {
        for key in [
            "fault_rate",
            "queries",
            "best_elapsed_ms",
            "queries_per_sec",
            "availability",
            "retry_amplification",
            "reports_digest",
        ] {
            if entry.get(key).is_none() {
                return Err(format!("result entry missing {key:?}"));
            }
        }
        entry
            .get("queries_per_sec")
            .and_then(Json::as_f64)
            .filter(|q| *q > 0.0)
            .ok_or("queries_per_sec must be a positive number")?;
        let rate = entry.get("fault_rate").and_then(Json::as_f64).ok_or("fault_rate must be a number")?;
        let avail = entry
            .get("availability")
            .and_then(Json::as_f64)
            .filter(|a| (0.0..=1.0).contains(a))
            .ok_or("availability must be in [0, 1]")?;
        let amp = entry
            .get("retry_amplification")
            .and_then(Json::as_f64)
            .filter(|a| *a >= 1.0 - 1e-9)
            .ok_or("retry_amplification must be >= 1")?;
        let digest =
            entry.get("reports_digest").and_then(Json::as_str).ok_or("missing reports_digest")?;
        // Optional (added after the first pinned baseline): virtual
        // retry-layer latency percentiles must be monotone when present.
        if let Some(latency) = entry.get("virtual_latency") {
            let p50 = latency.get("p50_s").and_then(Json::as_f64).ok_or("virtual_latency.p50_s must be a number")?;
            let p99 = latency.get("p99_s").and_then(Json::as_f64).ok_or("virtual_latency.p99_s must be a number")?;
            let p999 = latency.get("p999_s").and_then(Json::as_f64).ok_or("virtual_latency.p999_s must be a number")?;
            if !(p50 <= p99 && p99 <= p999) {
                return Err(format!(
                    "virtual_latency percentiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}"
                ));
            }
            if rate == 0.0 && p999 != 0.0 {
                return Err(format!(
                    "fault rate 0 virtual_latency p999 {p999} != 0 (nothing retries)"
                ));
            }
        }
        if rate == 0.0 {
            if digest != bare_digest {
                return Err(format!(
                    "fault rate 0 digest {digest} != bare_digest {bare_digest}"
                ));
            }
            if avail != 1.0 {
                return Err(format!("fault rate 0 availability {avail} != 1"));
            }
            if (amp - 1.0).abs() > 1e-9 {
                return Err(format!("fault rate 0 amplification {amp} != 1"));
            }
        }
    }
    Ok(format!("{path}: OK ({} fault rates, schema v{version})", results.len()))
}
