//! Regenerates **Figure 6** — instance-typing accuracy per target level
//! on hard datasets, zero-shot, for the six instance-bearing taxonomies
//! (Amazon, Google, Glottolog, ICD-10-CM, OAE, NCBI).
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig6 [--cap 100]
//! ```

use taxoglimpse_bench::{RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_core::workload::{InstanceTypingWorkload, Workload, WorkloadContext};
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::figures::{Figure, Series};

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();
    let models = opts.model_list();

    let mut panel = b'a';
    for kind in TaxonomyKind::ALL {
        if !kind.has_instances() {
            continue;
        }
        let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
        let dataset = InstanceTypingWorkload::new(QuestionDataset::Hard)
            .with_sample_cap(opts.cap)
            .build(&WorkloadContext::new(&taxonomy, kind, opts.seed))
            .expect("hard flavor is always defined for instance-bearing kinds");

        let mut figure = Figure::new(format!(
            "Figure 6({}): {} — instance typing accuracy per target level, hard, zero-shot",
            panel as char,
            kind.display_name()
        ));
        for &model_id in &models {
            let model = zoo.get(model_id).expect("zoo covers all ids");
            let report = evaluator.run(model.as_ref(), &dataset);
            let points = report
                .accuracy_by_level()
                .into_iter()
                .map(|(level, acc)| (format!("to-L{level}"), acc))
                .collect();
            figure.push(Series::new(model_id.to_string(), points));
        }
        println!("{}", figure.render_text());
        panel += 1;
    }
}
