//! Regenerates **Tables 5, 6 and 7** — overall accuracy *A* and miss
//! rate *M* of the eighteen models on the Hard, Easy and MCQ datasets —
//! and prints the paper-vs-measured fidelity summary.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin tables567 -- hard
//! cargo run --release -p taxoglimpse-bench --bin tables567 -- easy mcq --models GPT-4
//! cargo run --release -p taxoglimpse-bench --bin tables567            # all three
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::{Dataset, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::EvalConfig;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::compare::ComparisonSummary;
use taxoglimpse_report::table::{fmt3, Table};

fn main() {
    let opts = RunOptions::from_env();
    let flavors: Vec<QuestionDataset> = if opts.positional.is_empty() {
        QuestionDataset::ALL.to_vec()
    } else {
        opts.positional
            .iter()
            .map(|p| match p.to_ascii_lowercase().as_str() {
                "easy" => QuestionDataset::Easy,
                "hard" => QuestionDataset::Hard,
                "mcq" => QuestionDataset::Mcq,
                other => {
                    eprintln!("unknown flavor {other:?} (want easy|hard|mcq)");
                    std::process::exit(2);
                }
            })
            .collect()
    };

    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let runner = GridRunner::builder().with_config(EvalConfig::default()).build();
    let models = opts.model_list();

    for flavor in flavors {
        let table_no = match flavor {
            QuestionDataset::Hard => 5,
            QuestionDataset::Easy => 6,
            QuestionDataset::Mcq => 7,
        };
        let mut headers = vec!["Model".into(), "".into()];
        headers.extend(TaxonomyKind::ALL.iter().map(|k| k.display_name().to_owned()));
        let mut table = Table::new(
            format!("Table {table_no}: Overall results on {flavor} datasets (scale {})", opts.scale),
            headers,
        );

        // Build the ten datasets once, then fan the grid out in parallel.
        let datasets: Vec<Dataset> = TaxonomyKind::ALL
            .into_iter()
            .map(|kind| {
                let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
                build_dataset(&taxonomy, kind, flavor, &opts)
            })
            .collect();
        let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
        let model_arcs: Vec<_> = models.iter().map(|&id| zoo.get(id).expect("zoo covers all ids")).collect();
        let model_refs: Vec<&dyn LanguageModel> =
            model_arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();
        let reports = runner.run_cross(&model_refs, &dataset_refs);

        let mut comparisons = Vec::new();
        for (mi, &model_id) in models.iter().enumerate() {
            let mut row_a = vec![model_id.to_string(), "A".to_owned()];
            let mut row_m = vec![String::new(), "M".to_owned()];
            for di in 0..dataset_refs.len() {
                let report = &reports[mi * dataset_refs.len() + di];
                row_a.push(fmt3(report.overall.accuracy()));
                row_m.push(fmt3(report.overall.miss_rate()));
                comparisons.push((model_id, report.clone()));
            }
            table.push_row(row_a);
            table.push_row(row_m);
        }
        println!("{}", table.render_ascii());

        let summary = ComparisonSummary::from_reports(flavor, &comparisons);
        println!(
            "fidelity vs paper ({flavor}): mean |dA| = {:.3}, mean |dM| = {:.3}, max |dA| = {:.3}, winner agreement = {:.0}%",
            summary.mean_delta_a(),
            summary.mean_delta_m(),
            summary.max_delta_a(),
            summary.winner_agreement() * 100.0
        );
        println!();
    }
}
