//! `bench_hier` — the machine-readable two-stage hierarchical
//! classification baseline.
//!
//! Runs `core::hier` (coarse trigram router + constrained sibling-MCQ
//! descent) against the free-form flat baseline on all ten taxonomies
//! and records the results in `BENCH_hier.json` (schema v1): accuracy,
//! invalid-label rates (zero by construction for the descent — the
//! document *proves* it per cell), wrong-branch jump depth, abstain
//! calibration, and prompt-token cost vs the whole-taxonomy-in-prompt
//! alternative.
//!
//! One invariant is *enforced in-run*, not just recorded: for every
//! `(model, taxonomy)` cell the report must be byte-identical across
//! worker counts {1, 2, 8}. Any divergence aborts the run — threading
//! must be a pure executor.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_hier -- \
//!     [--scale S] [--cap N] [--seed N] [--models CSV] [--repeat R] \
//!     [--top-k K] [--label L] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_hier -- --check FILE
//! ```
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size.

use std::time::Instant;
use taxoglimpse_bench::TaxonomyCache;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::hier::{DescentConfig, HierWorkload, RouterConfig};
use taxoglimpse_core::workload::{Workload, WorkloadContext, WorkloadRunner};
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::rng::{hash_str, mix64};

/// Current schema version of `BENCH_hier.json` (see README.md).
const SCHEMA_VERSION: u64 = 1;

/// Worker counts whose reports must be byte-identical within a cell.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Same default model subset as `bench_eval` / `bench_shard`.
const DEFAULT_MODELS: [ModelId; 4] =
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b, ModelId::FlanT5_3b];

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    cap: Option<usize>,
    seed: u64,
    models: Vec<ModelId>,
    repeat: usize,
    top_k: usize,
    label: String,
    out: String,
    check: Option<String>,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.05 } else { 0.1 },
            cap: Some(if quick { 12 } else { 120 }),
            seed: 42,
            models: DEFAULT_MODELS.to_vec(),
            repeat: if quick { 1 } else { 3 },
            top_k: RouterConfig::default().top_k(),
            label: "current".to_owned(),
            out: "BENCH_hier.json".to_owned(),
            check: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--scale" => o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--cap" => o.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?,
                "--top-k" => o.top_k = value("--top-k")?.parse().map_err(|e| format!("--top-k: {e}"))?,
                "--label" => o.label = value("--label")?,
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                "--models" => {
                    let csv = value("--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    o.models = models;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// Digest of one report's JSON (same recipe as `bench_shard` and the
/// pinned determinism test).
fn digest_json(json: &str) -> u64 {
    mix64(0xBA5E_11AEu64 ^ hash_str(0x5EED, json))
}

/// Run the measured workload and build the `BENCH_hier.json` document.
fn run_bench(opts: &BenchOptions) -> Json {
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let workload = HierWorkload::new()
        .with_router(RouterConfig::default().with_top_k(opts.top_k))
        .with_descent(DescentConfig::default())
        .with_sample_cap(opts.cap);

    let mut sections = Vec::new();
    for kind in TaxonomyKind::ALL {
        eprintln!("generating {} at scale {} ...", kind.label(), opts.scale);
        let taxonomy = cache.get(kind, opts.seed, opts.scale);
        let cx = WorkloadContext::new(&taxonomy, kind, opts.seed);
        let data = match workload.build(&cx) {
            Ok(data) => data,
            Err(e) => {
                eprintln!("{}: skipped ({e})", kind.label());
                sections.push(Json::obj(vec![
                    ("taxonomy", kind.label().to_json()),
                    ("skipped", format!("{e}").to_json()),
                ]));
                continue;
            }
        };

        let mut entries = Vec::new();
        for &model_id in &opts.models {
            let model = zoo.get(model_id).expect("zoo covers all ids");
            let mut cell_digest: Option<u64> = None;
            let mut cell_report = None;
            let mut workers_out = Vec::new();
            for workers in WORKER_COUNTS {
                let runner = WorkloadRunner::builder().with_threads(workers).build();
                let mut best = f64::INFINITY;
                let mut total = 0.0;
                for rep in 0..opts.repeat.max(1) {
                    let start = Instant::now();
                    let report = workload.run(&runner, model.as_ref(), &cx, &data);
                    let elapsed = start.elapsed().as_secs_f64();
                    total += elapsed;
                    best = best.min(elapsed);
                    if rep == 0 {
                        let json =
                            taxoglimpse_json::to_string(&report).expect("reports serialize");
                        let digest = digest_json(&json);
                        if *cell_digest.get_or_insert(digest) != digest {
                            eprintln!(
                                "error: {} / {}: {workers} workers produced digest \
                                 {digest:016x}, other worker counts produced {:016x} — \
                                 threading changed report bytes",
                                kind.label(),
                                model_id,
                                cell_digest.expect("cell digest was just inserted"),
                            );
                            std::process::exit(1);
                        }
                        cell_report.get_or_insert(report);
                    }
                }
                let repeats = opts.repeat.max(1) as f64;
                workers_out.push(Json::obj(vec![
                    ("workers", (workers as u64).to_json()),
                    ("best_elapsed_ms", (best * 1e3).to_json()),
                    ("mean_elapsed_ms", (total / repeats * 1e3).to_json()),
                    (
                        "instances_per_sec",
                        (data.instances.len() as f64 / best).to_json(),
                    ),
                ]));
            }
            let report = cell_report.expect("at least one worker count ran");
            let m = &report.metrics;
            let savings = if m.hier_tokens_per_instance() > 0.0 {
                m.whole_taxonomy_tokens_per_instance() / m.hier_tokens_per_instance()
            } else {
                0.0
            };
            eprintln!(
                "{} / {}: hier A={:.3} invalid={:.3} abstain={:.3} | flat A={:.3} \
                 invalid={:.3} | {:.0} vs {:.0} tok/inst ({savings:.1}x), digest {:016x}",
                kind.label(),
                model_id,
                m.hier_accuracy(),
                m.hier_invalid_rate(),
                m.hier_abstain_rate(),
                m.flat_accuracy(),
                m.flat_invalid_rate(),
                m.hier_tokens_per_instance(),
                m.whole_taxonomy_tokens_per_instance(),
                cell_digest.expect("cell ran"),
            );
            entries.push(Json::obj(vec![
                ("model", model_id.to_string().to_json()),
                ("report_digest", format!("{:016x}", cell_digest.expect("cell ran")).to_json()),
                ("hier_accuracy", m.hier_accuracy().to_json()),
                ("hier_invalid_rate", m.hier_invalid_rate().to_json()),
                ("hier_abstain_rate", m.hier_abstain_rate().to_json()),
                ("mean_wrong_branch_depth", m.mean_wrong_branch_depth().to_json()),
                ("abstain_calibration", m.abstain_calibration().to_json()),
                ("flat_accuracy", m.flat_accuracy().to_json()),
                ("flat_invalid_rate", m.flat_invalid_rate().to_json()),
                ("hier_tokens_per_query", m.hier_tokens_per_query().to_json()),
                ("hier_tokens_per_instance", m.hier_tokens_per_instance().to_json()),
                (
                    "whole_taxonomy_tokens_per_instance",
                    m.whole_taxonomy_tokens_per_instance().to_json(),
                ),
                ("token_savings_factor", savings.to_json()),
                ("workers", Json::Arr(workers_out)),
                ("metrics", m.to_json()),
            ]));
        }
        sections.push(Json::obj(vec![
            ("taxonomy", kind.label().to_json()),
            ("nodes", (taxonomy.len() as u64).to_json()),
            ("levels", (taxonomy.num_levels() as u64).to_json()),
            ("instances", (data.instances.len() as u64).to_json()),
            ("entries", Json::Arr(entries)),
        ]));
    }

    let workload_doc = Json::obj(vec![
        ("models", Json::Arr(opts.models.iter().map(|m| m.to_string().to_json()).collect())),
        (
            "taxonomies",
            Json::Arr(TaxonomyKind::ALL.iter().map(|k| k.label().to_json()).collect()),
        ),
        ("scale", opts.scale.to_json()),
        ("cap", opts.cap.map(|c| (c as u64).to_json()).unwrap_or(Json::Null)),
        ("seed", opts.seed.to_json()),
        ("router_level", (RouterConfig::default().level() as u64).to_json()),
        ("router_top_k", (opts.top_k as u64).to_json()),
        (
            "descent_max_options",
            (DescentConfig::default().max_options() as u64).to_json(),
        ),
        ("repeats", (opts.repeat as u64).to_json()),
        (
            "worker_counts",
            Json::Arr(WORKER_COUNTS.iter().map(|w| (*w as u64).to_json()).collect()),
        ),
    ]);

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload_doc),
        ("taxonomies", Json::Arr(sections)),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate shape
/// plus the invariants the document claims: the descent's invalid-label
/// count is exactly zero in every cell, every rate lies in [0, 1],
/// outcome counts partition the instance count, and per-worker timings
/// are positive.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    doc.get("workload").and_then(Json::as_obj).ok_or("missing workload object")?;

    let sections =
        doc.get("taxonomies").and_then(Json::as_arr).ok_or("missing taxonomies array")?;
    if sections.is_empty() {
        return Err("empty taxonomies array".to_owned());
    }
    let mut cells = 0usize;
    for section in sections {
        let taxonomy = section
            .get("taxonomy")
            .and_then(Json::as_str)
            .ok_or("section missing taxonomy")?;
        if section.get("skipped").is_some() {
            continue;
        }
        let entries = section
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{taxonomy}: missing entries"))?;
        if entries.is_empty() {
            return Err(format!("{taxonomy}: empty entries array"));
        }
        for entry in entries {
            let model = entry
                .get("model")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{taxonomy}: entry missing model"))?;
            let tag = format!("{taxonomy} / {model}");
            cells += check_cell(entry, &tag)?;
        }
    }
    Ok(format!(
        "{path}: OK ({} taxonomies, {cells} cells, schema v{version})",
        sections.len(),
    ))
}

/// Validate one `(model, taxonomy)` cell. Returns 1 (cells checked).
fn check_cell(entry: &Json, tag: &str) -> Result<usize, String> {
    entry
        .get("report_digest")
        .and_then(Json::as_str)
        .filter(|d| d.len() == 16)
        .ok_or_else(|| format!("{tag}: missing 16-hex report_digest"))?;
    for key in [
        "hier_accuracy",
        "hier_invalid_rate",
        "hier_abstain_rate",
        "flat_accuracy",
        "flat_invalid_rate",
    ] {
        entry
            .get(key)
            .and_then(Json::as_f64)
            .filter(|r| (0.0..=1.0).contains(r))
            .ok_or_else(|| format!("{tag}: {key} must be in [0, 1]"))?;
    }
    let metrics = entry.get("metrics").ok_or_else(|| format!("{tag}: missing metrics"))?;
    let count = |key: &str| {
        metrics
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{tag}: metrics missing {key:?}"))
    };
    let instances = count("instances")?;
    if instances == 0 {
        return Err(format!("{tag}: zero instances"));
    }
    // The headline guarantee: constrained descent cannot emit an
    // invalid label — the recorded count must be exactly zero.
    let hier_invalid = count("hier_invalid")?;
    if hier_invalid != 0 {
        return Err(format!("{tag}: hier_invalid = {hier_invalid} (must be exactly 0)"));
    }
    let hier_sum = count("hier_correct")?
        + count("hier_wrong_branch")?
        + count("hier_abstained")?
        + count("hier_failed")?;
    if hier_sum != instances {
        return Err(format!("{tag}: descent outcomes sum to {hier_sum}, not {instances}"));
    }
    let flat_sum = count("flat_correct")?
        + count("flat_wrong_valid")?
        + count("flat_invalid")?
        + count("flat_abstained")?
        + count("flat_failed")?;
    if flat_sum != instances {
        return Err(format!("{tag}: flat outcomes sum to {flat_sum}, not {instances}"));
    }
    let workers = entry
        .get("workers")
        .and_then(Json::as_arr)
        .filter(|w| !w.is_empty())
        .ok_or_else(|| format!("{tag}: missing workers array"))?;
    for w in workers {
        let n = w
            .get("workers")
            .and_then(Json::as_u64)
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{tag}: worker entry missing a positive workers count"))?;
        for key in ["best_elapsed_ms", "mean_elapsed_ms", "instances_per_sec"] {
            w.get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v > 0.0)
                .ok_or_else(|| format!("{tag}: {n} workers: {key} must be positive"))?;
        }
    }
    Ok(1)
}
