//! Serving-cost estimate: what would running the full TaxoGlimpse
//! benchmark (all three flavors, all ten taxonomies) cost per model —
//! dollars for API models, simulated GPU-hours for self-hosted ones?
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin cost [--models GPT-4,Llama-2-70B] [--cap 50]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_llm::api::ApiClient;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_report::table::Table;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let evaluator = Evaluator::default();
    let models = opts
        .models
        .clone()
        .unwrap_or_else(|| vec![ModelId::Gpt4, ModelId::Gpt35, ModelId::Claude3, ModelId::Llama2_70b, ModelId::FlanT5_3b]);

    let mut table = Table::new(
        format!("Full-benchmark serving cost (scale {}, all flavors)", opts.scale),
        vec![
            "Model".into(),
            "questions".into(),
            "prompt tok".into(),
            "compl. tok".into(),
            "retries".into(),
            "sim. hours".into(),
            "USD".into(),
        ],
    );

    for model_id in models {
        let client = ApiClient::new(SimulatedLlm::new(model_id));
        let mut questions = 0usize;
        for kind in TaxonomyKind::ALL {
            let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
            for flavor in QuestionDataset::ALL {
                let dataset = build_dataset(&taxonomy, kind, flavor, &opts);
                questions += dataset.len();
                // Accumulate across datasets: bypass the per-run reset.
                for slice in &dataset.levels {
                    for q in &slice.questions {
                        evaluator.ask(&client, q, &slice.exemplars);
                    }
                }
            }
        }
        let stats = client.stats();
        table.push_row(vec![
            model_id.to_string(),
            questions.to_string(),
            stats.prompt_tokens.to_string(),
            stats.completion_tokens.to_string(),
            stats.transient_failures.to_string(),
            format!("{:.2}", stats.simulated_seconds / 3600.0),
            if stats.cost_usd > 0.0 { format!("${:.2}", stats.cost_usd) } else { "self-hosted".into() },
        ]);
    }
    println!("{}", table.render_ascii());
    println!("API prices are the 2024 list prices per million tokens; self-hosted models cost GPU time instead.");
}
