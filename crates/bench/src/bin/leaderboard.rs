//! The model leaderboard: all eighteen models ranked by macro-average
//! accuracy over every (taxonomy × flavor) cell, with Wilson CIs — plus
//! the polarity and similarity-band failure analysis for the winner and
//! a weak model.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin leaderboard [--cap 100]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::{Dataset, QuestionDataset};
use taxoglimpse_core::detailed::DetailedRun;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::leaderboard::{leaderboard, render};

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();

    // Datasets: all taxonomies × all flavors.
    let mut datasets: Vec<Dataset> = Vec::new();
    for kind in TaxonomyKind::ALL {
        let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
        for flavor in QuestionDataset::ALL {
            datasets.push(build_dataset(&taxonomy, kind, flavor, &opts));
        }
    }
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let arcs: Vec<_> = opts.model_list().iter().map(|&id| zoo.get(id).expect("zoo")).collect();
    let models: Vec<&dyn LanguageModel> = arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();

    let reports = GridRunner::builder().build().run_cross(&models, &dataset_refs);
    println!("{}", render(&leaderboard(&reports)));

    // Failure analysis: polarity + similarity bands on Glottolog hard.
    println!("Failure analysis, Glottolog hard (positives vs hard negatives; similarity bands)\n");
    let glotto = cache.get(TaxonomyKind::Glottolog, opts.seed, opts.scale_for(TaxonomyKind::Glottolog));
    let gd = build_dataset(&glotto, TaxonomyKind::Glottolog, QuestionDataset::Hard, &opts);
    for id in [ModelId::Gpt4, ModelId::Vicuna13b] {
        let model = zoo.get(id).expect("zoo");
        let run = DetailedRun::record(model.as_ref(), &gd, Default::default());
        let (pos, _easy, hard) = run.by_polarity();
        let (low, mid, high) = run.by_similarity_band();
        println!("  {id}:");
        println!("    positives      A={:.3} (n={})", pos.accuracy(), pos.total());
        println!("    hard negatives A={:.3} (n={})", hard.accuracy(), hard.total());
        println!(
            "    similarity bands: low {:.3} (n={}), mid {:.3} (n={}), high {:.3} (n={})",
            low.accuracy(),
            low.total(),
            mid.accuracy(),
            mid.total(),
            high.accuracy(),
            high.total()
        );
        println!("    sample failure: {:?}\n", run.failures().next().map(|e| (&e.prompt, &e.response)));
    }
}
