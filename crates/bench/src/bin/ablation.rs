//! Ablation studies for the design choices called out in DESIGN.md §4:
//!
//! 1. **hard vs easy negatives** — the uncle-sampling accuracy gap;
//! 2. **surface evidence on/off** — the NCBI species→genus uplift must
//!    disappear when the model cannot see name forms;
//! 3. **template paraphrases** — results stable under "a kind of" / "a
//!    sort of" (paper §2.2);
//! 4. **synthetic scale** — Cochran sample sizes saturate, so dataset
//!    sizes are insensitive to generating a 10× smaller NCBI.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin ablation
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::{EvalConfig, Evaluator};
use taxoglimpse_core::templates::TemplateVariant;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_report::table::{fmt3, Table};
use taxoglimpse_synth::{generate, GenOptions};
use taxoglimpse_taxonomy::Taxonomy;

/// Wall-time budget for materializing one taxonomy. Even NCBI at full
/// fidelity (2.19M nodes) generates in well under a second and loads
/// from its binary snapshot in tens of milliseconds, so the budget only
/// trips on pathologically slow storage — in which case we point at the
/// `--scale` escape hatch rather than silently overriding the request.
const MATERIALIZE_BUDGET: Duration = Duration::from_secs(10);

fn materialize(
    cache: &TaxonomyCache,
    kind: TaxonomyKind,
    seed: u64,
    scale: f64,
) -> Arc<Taxonomy> {
    let t0 = Instant::now();
    let taxonomy = cache.get(kind, seed, scale);
    if t0.elapsed() > MATERIALIZE_BUDGET {
        eprintln!(
            "note: materializing {} at scale {scale} took {:?} (budget {:?}); \
             pass --scale to cap the taxonomy size",
            kind.display_name(),
            t0.elapsed(),
            MATERIALIZE_BUDGET,
        );
    }
    taxonomy
}

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let evaluator = Evaluator::default();

    // ── 1. hard vs easy negatives ────────────────────────────────────
    println!("Ablation 1: negative sampling (uncles vs random), GPT-4, zero-shot\n");
    let mut t1 = Table::new(
        "accuracy by negative regime".to_owned(),
        vec!["Taxonomy".into(), "easy".into(), "hard".into(), "gap".into()],
    );
    let model = SimulatedLlm::new(ModelId::Gpt4);
    for kind in [TaxonomyKind::Amazon, TaxonomyKind::Glottolog, TaxonomyKind::Ncbi] {
        let taxonomy = materialize(&cache, kind, opts.seed, opts.scale_for(kind));
        let easy = evaluator.run(&model, &build_dataset(&taxonomy, kind, QuestionDataset::Easy, &opts));
        let hard = evaluator.run(&model, &build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts));
        t1.push_row(vec![
            kind.display_name().into(),
            fmt3(easy.overall.accuracy()),
            fmt3(hard.overall.accuracy()),
            fmt3(easy.overall.accuracy() - hard.overall.accuracy()),
        ]);
    }
    println!("{}", t1.render_ascii());

    // ── 2. surface evidence on/off ───────────────────────────────────
    println!("Ablation 2: surface-form evidence and the NCBI last-level uplift\n");
    let ncbi = materialize(&cache, TaxonomyKind::Ncbi, opts.seed, opts.scale_for(TaxonomyKind::Ncbi));
    let dataset = build_dataset(&ncbi, TaxonomyKind::Ncbi, QuestionDataset::Hard, &opts);
    let with = evaluator.run(&SimulatedLlm::new(ModelId::Gpt4), &dataset);
    let without = evaluator.run(
        &SimulatedLlm::new(ModelId::Gpt4).without_surface_evidence(),
        &dataset,
    );
    let mut t2 = Table::new(
        "GPT-4 per-level accuracy on NCBI hard".to_owned(),
        vec!["variant".into(), "L1".into(), "L2".into(), "L3".into(), "L4".into(), "L5".into(), "L6 (species)".into()],
    );
    for (label, report) in [("with evidence", &with), ("without evidence", &without)] {
        let mut row = vec![label.to_owned()];
        row.extend(report.accuracy_by_level().into_iter().map(|(_, a)| fmt3(a)));
        t2.push_row(row);
    }
    println!("{}", t2.render_ascii());
    let uplift = |r: &taxoglimpse_core::eval::EvalReport| {
        let c = r.accuracy_by_level();
        c[5].1 - c[4].1
    };
    println!(
        "species-level uplift: with evidence {:+.3}, without {:+.3} — the uplift is a surface-form effect\n",
        uplift(&with),
        uplift(&without)
    );

    // ── 3. template paraphrases ──────────────────────────────────────
    println!("Ablation 3: template paraphrase stability (Flan-T5-11B, Google hard)\n");
    let google = materialize(&cache, TaxonomyKind::Google, opts.seed, opts.scale_for(TaxonomyKind::Google));
    let gd = build_dataset(&google, TaxonomyKind::Google, QuestionDataset::Hard, &opts);
    let flan = SimulatedLlm::new(ModelId::FlanT5_11b);
    for variant in TemplateVariant::ALL {
        let report = Evaluator::builder().with_config(EvalConfig { variant, ..Default::default() }).build().run(&flan, &gd);
        println!("  {variant:?}: A={}", fmt3(report.overall.accuracy()));
    }
    println!();

    // ── 4. synthetic scale insensitivity ─────────────────────────────
    println!("Ablation 4: Cochran saturation — NCBI dataset sizes vs taxonomy scale\n");
    for scale in [1.0, 0.5, 0.1] {
        let t = generate(TaxonomyKind::Ncbi, GenOptions { seed: opts.seed, scale }).expect("valid");
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ncbi, opts.seed)
            .build(QuestionDataset::Mcq)
            .expect("probe levels");
        println!(
            "  scale {scale:>4}: {:>9} entities -> {:>5} MCQ questions",
            t.len(),
            d.len()
        );
    }
    println!("\nsample sizes saturate at ~385/level, so benchmark size is nearly scale-invariant.");
}
