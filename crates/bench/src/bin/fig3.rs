//! Regenerates **Figure 3** — per-level accuracy on the hard datasets
//! under zero-shot prompting, for the nine multi-level taxonomies
//! (GeoNames has a single child level and is omitted, as in the paper).
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig3 [--models GPT-4,LLMs4OL]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::Evaluator;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::figures::{Figure, Series};

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();
    let evaluator = Evaluator::default();
    let models = opts.model_list();

    let mut panel = b'a';
    for kind in TaxonomyKind::ALL {
        if kind == TaxonomyKind::GeoNames {
            continue; // single child level: nothing to plot (paper §4.2)
        }
        let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
        let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);
        let mut figure = Figure::new(format!(
            "Figure 3({}): {} — accuracy per level, hard, zero-shot",
            panel as char,
            kind.display_name()
        ));
        for &model_id in &models {
            let model = zoo.get(model_id).expect("zoo covers all ids");
            let report = evaluator.run(model.as_ref(), &dataset);
            let points = report
                .accuracy_by_level()
                .into_iter()
                .map(|(level, acc)| (format!("L{level}"), acc))
                .collect();
            figure.push(Series::new(model_id.to_string(), points));
        }
        println!("{}", figure.render_text());
        let declining = figure.series.iter().filter(|s| Figure::series_declines(s)).count();
        println!(
            "root-to-leaf decline: {declining}/{} models decline on {}\n",
            figure.series.len(),
            kind.display_name()
        );
        panel += 1;
    }
}
