//! Regenerates **Table 4** — per-level statistics of the Easy, Hard and
//! MCQ datasets.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin table4 [--scale 1.0]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_report::table::Table;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();

    // Rows: level × flavor; columns: taxonomies.
    let max_levels = 7; // NCBI depth
    let mut headers = vec!["Level".into(), "Set".into()];
    headers.extend(TaxonomyKind::ALL.iter().map(|k| k.display_name().to_owned()));
    let mut table = Table::new(
        format!("Table 4: Statistics of datasets (scale {})", opts.scale),
        headers,
    );

    // counts[kind][flavor][child_level] = question count
    let mut counts =
        vec![[[None::<usize>; 8]; 3]; TaxonomyKind::ALL.len()];
    let mut totals = vec![[0usize; 3]; TaxonomyKind::ALL.len()];
    for (ki, &kind) in TaxonomyKind::ALL.iter().enumerate() {
        let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
        for (fi, flavor) in QuestionDataset::ALL.into_iter().enumerate() {
            let dataset = build_dataset(&taxonomy, kind, flavor, &opts);
            for (level, n) in dataset.level_counts() {
                counts[ki][fi][level] = Some(n);
            }
            totals[ki][fi] = dataset.len();
        }
    }

    let flavor_label = ["Easy", "Hard", "MCQ"];
    for level in 1..=max_levels {
        for fi in 0..3 {
            let mut row = vec![format!("Level {}-{}", level, level - 1), flavor_label[fi].to_owned()];
            for per_kind in counts.iter() {
                row.push(match per_kind[fi][level] {
                    Some(n) => n.to_string(),
                    None => "n/a".into(),
                });
            }
            if row[2..].iter().any(|c| c != "n/a") {
                table.push_row(row);
            }
        }
    }
    for fi in 0..3 {
        let mut row = vec!["Total".to_owned(), flavor_label[fi].to_owned()];
        for per_kind in totals.iter() {
            row.push(per_kind[fi].to_string());
        }
        table.push_row(row);
    }

    println!("{}", table.render_ascii());
}
