//! Regenerates **Figure 4** — radar-chart data for representative models
//! (GPT-4, Flan-T5-11B, Llama-2-7B) on the hard datasets under
//! zero-shot, few-shot and CoT prompting: accuracy and miss rate per
//! taxonomy.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig4 [--cap 100]
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::{EvalConfig, Evaluator};
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_report::figures::{Figure, Series};

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();

    for model in zoo.figure4_representatives() {
        let mut acc_figure = Figure::new(format!("Figure 4: {} — accuracy radar (hard)", model.name()));
        let mut miss_figure = Figure::new(format!("Figure 4: {} — miss-rate radar (hard)", model.name()));
        for setting in PromptSetting::ALL {
            let evaluator = Evaluator::builder().with_config(EvalConfig { setting, ..Default::default() }).build();
            let mut acc_points = Vec::new();
            let mut miss_points = Vec::new();
            for kind in TaxonomyKind::ALL {
                let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind));
                let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);
                let report = evaluator.run(model.as_ref(), &dataset);
                acc_points.push((kind.display_name().to_owned(), report.overall.accuracy()));
                miss_points.push((kind.display_name().to_owned(), report.overall.miss_rate()));
            }
            acc_figure.push(Series::new(setting.to_string(), acc_points));
            miss_figure.push(Series::new(setting.to_string(), miss_points));
        }
        println!("{}", acc_figure.render_text());
        println!("{}", miss_figure.render_text());

        // Finding-4 deltas for this model.
        let mean = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
        let zero_acc = mean(&acc_figure.series[0]);
        let few_acc = mean(&acc_figure.series[1]);
        let cot_acc = mean(&acc_figure.series[2]);
        let zero_miss = mean(&miss_figure.series[0]);
        let few_miss = mean(&miss_figure.series[1]);
        println!(
            "{}: mean accuracy zero-shot {zero_acc:.3}, few-shot {few_acc:.3} (d{:+.3}), CoT {cot_acc:.3} (d{:+.3}); \
             mean miss zero-shot {zero_miss:.3} -> few-shot {few_miss:.3}\n",
            model.name(),
            few_acc - zero_acc,
            cot_acc - zero_acc,
        );
    }
}
