//! `bench_eval` — the machine-readable end-to-end throughput baseline.
//!
//! Runs the full grid pipeline (datasets × models × prompt settings)
//! through [`GridRunner`] exactly as `tables567` does, measures
//! queries/second per prompt setting, and writes `BENCH_eval.json` so
//! every perf PR records before/after numbers on the same machine and
//! future PRs have a trajectory to defend.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin bench_eval -- \
//!     [--scale S] [--cap N] [--seed N] [--models CSV] [--repeat R] \
//!     [--threads T] [--chunk C] [--label L] [--baseline FILE] [--out FILE]
//! cargo run --release -p taxoglimpse-bench --bin bench_eval -- --check FILE
//! ```
//!
//! Since schema v2 every prompt setting is measured under a sweep of
//! execution configs — batch size × response cache on/off (see
//! [`CONFIGS`]) — and each config records a `reports_digest`: a stable
//! 64-bit hash over the JSON of every [`EvalReport`] the grid produced.
//! The run *aborts* if any config's digest diverges from the others
//! within a setting: batching and caching must be pure executors, and
//! identical digests prove the optimised pipeline returned
//! byte-identical results, which is this repo's core invariant. The
//! setting-level headline throughput is the best cache-enabled config.
//!
//! With the cache enabled, rep 0 runs cold (it both measures and fills
//! the cache) and later reps run warm, so `--repeat R` yields a steady
//! `(R-1)/R` hit rate and the best-of measurement reflects the served
//! path.
//!
//! `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the workload to smoke-test size
//! (CI uses this to catch bit-rot without paying for a real measurement).

use std::sync::Arc;
use std::time::Instant;
use taxoglimpse_bench::TaxonomyCache;
use taxoglimpse_core::cache::{CachedModel, ResponseCache};
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::EvalConfig;
use taxoglimpse_core::grid::GridRunner;
use taxoglimpse_core::model::LanguageModel;
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_json::{from_str_value, Json, ToJson};
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_llm::simulate::SimulatedLlm;
use taxoglimpse_llm::zoo::ModelZoo;
use taxoglimpse_synth::rng::{hash_str, mix64};

/// Current schema version of `BENCH_eval.json` (see README.md).
const SCHEMA_VERSION: u64 = 2;

/// Minimum admissible zero-shot speedup over an embedded baseline when
/// `--check` finds one (the batching + caching acceptance gate).
const MIN_ZERO_SHOT_SPEEDUP: f64 = 2.0;

/// Execution configs swept per prompt setting: (batch size, cache).
/// Batch 1 without cache replays the historical sequential path; the
/// cache-enabled configs are the headline candidates.
const CONFIGS: [(usize, bool); 5] =
    [(1, false), (32, false), (256, false), (32, true), (256, true)];

/// Default model subset: one per major family tier, so the workload
/// exercises terse, chatty, and abstention-prone response paths.
const DEFAULT_MODELS: [ModelId; 4] =
    [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b, ModelId::FlanT5_3b];

#[derive(Debug)]
struct BenchOptions {
    scale: f64,
    cap: Option<usize>,
    seed: u64,
    models: Vec<ModelId>,
    repeat: usize,
    threads: usize,
    chunk: usize,
    label: String,
    baseline: Option<String>,
    out: String,
    check: Option<String>,
}

impl BenchOptions {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut o = BenchOptions {
            scale: if quick { 0.05 } else { 0.1 },
            cap: Some(if quick { 20 } else { 250 }),
            seed: 42,
            models: DEFAULT_MODELS.to_vec(),
            repeat: if quick { 1 } else { 5 },
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            chunk: 256,
            label: "current".to_owned(),
            baseline: None,
            out: "BENCH_eval.json".to_owned(),
            check: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--scale" => o.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--cap" => o.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--repeat" => o.repeat = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?,
                "--threads" => o.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
                "--chunk" => o.chunk = value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?,
                "--label" => o.label = value("--label")?,
                "--baseline" => o.baseline = Some(value("--baseline")?),
                "--out" => o.out = value("--out")?,
                "--check" => o.check = Some(value("--check")?),
                "--models" => {
                    let csv = value("--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    o.models = models;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(o)
    }
}

fn main() {
    let opts = match BenchOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = run_bench(&opts);
    let rendered = doc.render_pretty();
    std::fs::write(&opts.out, format!("{rendered}\n")).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!("wrote {}", opts.out);
}

/// Run the measured workload and build the `BENCH_eval.json` document.
fn run_bench(opts: &BenchOptions) -> Json {
    let cache = TaxonomyCache::new();
    let zoo = ModelZoo::default_zoo();

    eprintln!("generating {} taxonomies at scale {} ...", TaxonomyKind::ALL.len(), opts.scale);
    let datasets: Vec<Dataset> = TaxonomyKind::ALL
        .into_iter()
        .map(|kind| {
            let taxonomy = cache.get(kind, opts.seed, opts.scale);
            DatasetBuilder::new(&taxonomy, kind, opts.seed)
                .sample_cap(opts.cap)
                .build(QuestionDataset::Hard)
                .expect("benchmark taxonomies have probe levels")
        })
        .collect();
    let dataset_refs: Vec<&Dataset> = datasets.iter().collect();
    let questions: usize = datasets.iter().map(Dataset::len).sum();
    let queries = questions * opts.models.len();

    let model_arcs: Vec<_> =
        opts.models.iter().map(|&id| zoo.get(id).expect("zoo covers all ids")).collect();
    let model_refs: Vec<&dyn LanguageModel> =
        model_arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();

    let mut results = Vec::new();
    for setting in PromptSetting::ALL {
        let mut setting_digest: Option<u64> = None;
        let mut config_entries = Vec::new();
        // Headline = best cache-enabled config: (best_s, mean_s, qps, hit_rate).
        let mut headline: Option<(f64, f64, f64, f64)> = None;
        for (batch, cache_on) in CONFIGS {
            let runner = GridRunner::builder()
                .with_config(EvalConfig::default().with_setting(setting))
                .with_threads(opts.threads)
                .with_chunk_size(opts.chunk)
                .with_batch_size(batch)
                .build();
            // One fresh cache per config, shared across its repeat reps
            // and all models (keys include the model name): rep 0 fills
            // it cold, warm reps measure the served path.
            let response_cache = Arc::new(ResponseCache::new());
            let cached_models: Vec<CachedModel<Arc<SimulatedLlm>>> = if cache_on {
                model_arcs
                    .iter()
                    .map(|m| CachedModel::with_cache(Arc::clone(m), Arc::clone(&response_cache)))
                    .collect()
            } else {
                Vec::new()
            };
            let config_refs: Vec<&dyn LanguageModel> = if cache_on {
                cached_models.iter().map(|m| m as &dyn LanguageModel).collect()
            } else {
                model_refs.clone()
            };
            let mut best = f64::INFINITY;
            let mut total = 0.0;
            let mut digest = 0xBA5E_11AEu64;
            for rep in 0..opts.repeat.max(1) {
                let start = Instant::now();
                let reports = runner.run_cross(&config_refs, &dataset_refs);
                let elapsed = start.elapsed().as_secs_f64();
                total += elapsed;
                best = best.min(elapsed);
                if rep == 0 {
                    for report in &reports {
                        let json = taxoglimpse_json::to_string(report).expect("reports serialize");
                        digest = mix64(digest ^ hash_str(0x5EED, &json));
                    }
                }
            }
            if *setting_digest.get_or_insert(digest) != digest {
                eprintln!(
                    "error: {setting}: batch {batch} cache {} produced digest {digest:016x}, \
                     other configs produced {:016x} — batching/caching changed report bytes",
                    if cache_on { "on" } else { "off" },
                    setting_digest.expect("setting digest was just inserted"),
                );
                std::process::exit(1);
            }
            let repeats = opts.repeat.max(1) as f64;
            let mean = total / repeats;
            let qps = queries as f64 / best;
            let stats = response_cache.stats();
            let hit_rate = if cache_on { stats.hit_rate() } else { 0.0 };
            eprintln!(
                "{setting} [batch {batch:>3}, cache {}]: best {:.1} ms, {:.0} q/s, \
                 hit rate {:.2}, digest {digest:016x}",
                if cache_on { "on " } else { "off" },
                best * 1e3,
                qps,
                hit_rate,
            );
            if cache_on && headline.map(|(b, _, _, _)| best < b).unwrap_or(true) {
                headline = Some((best, mean, qps, hit_rate));
            }
            config_entries.push(Json::obj(vec![
                ("batch_size", (batch as u64).to_json()),
                ("cache", cache_on.to_json()),
                ("best_elapsed_ms", (best * 1e3).to_json()),
                ("mean_elapsed_ms", (mean * 1e3).to_json()),
                ("queries_per_sec", qps.to_json()),
                ("cache_hit_rate", hit_rate.to_json()),
                ("cache_entries", (response_cache.len() as u64).to_json()),
                ("reports_digest", format!("{digest:016x}").to_json()),
            ]));
        }
        let digest = setting_digest.expect("CONFIGS is non-empty");
        let (best, mean, qps, hit_rate) = headline.expect("CONFIGS has cache-enabled entries");
        eprintln!("{setting}: headline {:.0} q/s (digest {digest:016x})", qps);
        results.push(Json::obj(vec![
            ("setting", setting.to_string().to_json()),
            ("queries", (queries as u64).to_json()),
            ("best_elapsed_ms", (best * 1e3).to_json()),
            ("mean_elapsed_ms", (mean * 1e3).to_json()),
            ("queries_per_sec", qps.to_json()),
            ("cache_hit_rate", hit_rate.to_json()),
            ("reports_digest", format!("{digest:016x}").to_json()),
            ("configs", Json::Arr(config_entries)),
        ]));
    }

    let workload = Json::obj(vec![
        ("models", Json::Arr(opts.models.iter().map(|m| m.to_string().to_json()).collect())),
        (
            "taxonomies",
            Json::Arr(TaxonomyKind::ALL.iter().map(|k| k.label().to_json()).collect()),
        ),
        ("flavor", "hard".to_json()),
        ("scale", opts.scale.to_json()),
        ("cap", opts.cap.map(|c| (c as u64).to_json()).unwrap_or(Json::Null)),
        ("seed", opts.seed.to_json()),
        ("questions", (questions as u64).to_json()),
        ("queries_per_setting", (queries as u64).to_json()),
        ("threads", (opts.threads as u64).to_json()),
        ("chunk_size", (opts.chunk as u64).to_json()),
        ("repeats", (opts.repeat as u64).to_json()),
    ]);

    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: --baseline {path}: {e}");
                std::process::exit(1);
            });
            let mut doc = from_str_value(&text).unwrap_or_else(|e| {
                eprintln!("error: --baseline {path}: {e}");
                std::process::exit(1);
            });
            // A baseline of a baseline would nest without bound; embed
            // only the measurement itself.
            if let Json::Obj(fields) = &mut doc {
                fields.retain(|(k, _)| k != "baseline");
            }
            doc
        }
        None => Json::Null,
    };

    Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("label", opts.label.to_json()),
        ("workload", workload),
        ("results", Json::Arr(results)),
        ("baseline", baseline),
    ])
}

/// `--check FILE`: parse with the in-tree JSON crate and validate the
/// v2 shape — per-config entries present, digests identical across the
/// configs of each setting, hit rates within `[0, 1]`, and (when the
/// file embeds a baseline with a matching setting) the zero-shot
/// headline at least [`MIN_ZERO_SHOT_SPEEDUP`]× the baseline's.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = from_str_value(&text).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} (expected {SCHEMA_VERSION})"));
    }
    doc.get("label").and_then(Json::as_str).ok_or("missing label")?;
    doc.get("workload").and_then(Json::as_obj).ok_or("missing workload object")?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    let mut configs_seen = 0usize;
    for entry in results {
        let setting = entry.get("setting").and_then(Json::as_str).ok_or("result entry missing setting")?;
        for key in ["queries", "best_elapsed_ms", "queries_per_sec", "reports_digest"] {
            if entry.get(key).is_none() {
                return Err(format!("{setting}: result entry missing {key:?}"));
            }
        }
        entry
            .get("queries_per_sec")
            .and_then(Json::as_f64)
            .filter(|q| *q > 0.0)
            .ok_or_else(|| format!("{setting}: queries_per_sec must be a positive number"))?;
        let setting_digest = entry
            .get("reports_digest")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{setting}: reports_digest must be a string"))?;
        check_hit_rate(entry, setting)?;
        let configs = entry
            .get("configs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{setting}: missing configs array"))?;
        if configs.is_empty() {
            return Err(format!("{setting}: empty configs array"));
        }
        configs_seen += configs.len();
        for config in configs {
            for key in ["batch_size", "cache", "best_elapsed_ms", "queries_per_sec", "cache_entries"] {
                if config.get(key).is_none() {
                    return Err(format!("{setting}: config entry missing {key:?}"));
                }
            }
            check_hit_rate(config, setting)?;
            let digest = config
                .get("reports_digest")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{setting}: config entry missing reports_digest"))?;
            if digest != setting_digest {
                return Err(format!(
                    "{setting}: config digest {digest} differs from setting digest \
                     {setting_digest} — batching/caching changed report bytes"
                ));
            }
        }
    }
    let speedup = check_baseline_speedup(&doc)?;
    let speedup_note = match speedup {
        Some(s) => format!(", zero-shot {s:.1}x baseline"),
        None => String::new(),
    };
    Ok(format!(
        "{path}: OK ({} settings, {configs_seen} configs, schema v{version}{speedup_note})",
        results.len()
    ))
}

/// Validate a `cache_hit_rate` field, when present, as a number in `[0, 1]`.
fn check_hit_rate(entry: &Json, setting: &str) -> Result<(), String> {
    match entry.get("cache_hit_rate") {
        None => Err(format!("{setting}: missing cache_hit_rate")),
        Some(value) => match value.as_f64() {
            Some(rate) if (0.0..=1.0).contains(&rate) => Ok(()),
            _ => Err(format!("{setting}: cache_hit_rate must be a number in [0, 1]")),
        },
    }
}

/// When the document embeds a baseline whose results include a
/// zero-shot entry, require the document's zero-shot headline to be at
/// least [`MIN_ZERO_SHOT_SPEEDUP`]× the baseline's throughput. Returns
/// the measured speedup, or `None` when no comparable baseline exists
/// (smoke runs omit `--baseline`).
fn check_baseline_speedup(doc: &Json) -> Result<Option<f64>, String> {
    let find_zero_shot = |node: &Json| -> Option<f64> {
        node.get("results")?.as_arr()?.iter().find_map(|entry| {
            let setting = entry.get("setting")?.as_str()?;
            if setting == "zero-shot" {
                entry.get("queries_per_sec")?.as_f64()
            } else {
                None
            }
        })
    };
    let baseline = match doc.get("baseline") {
        Some(b) if !matches!(b, Json::Null) => b,
        _ => return Ok(None),
    };
    let (Some(current), Some(reference)) = (find_zero_shot(doc), find_zero_shot(baseline)) else {
        return Ok(None);
    };
    if reference <= 0.0 {
        return Ok(None);
    }
    let speedup = current / reference;
    if speedup < MIN_ZERO_SHOT_SPEEDUP {
        return Err(format!(
            "zero-shot throughput is only {speedup:.2}x the embedded baseline \
             (needs >= {MIN_ZERO_SHOT_SPEEDUP}x: {current:.0} vs {reference:.0} q/s)"
        ));
    }
    Ok(Some(speedup))
}
