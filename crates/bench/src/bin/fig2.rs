//! Regenerates **Figure 2** — popularity of the ten taxonomies, measured
//! as the mean simulated web-hit count over 100 sampled concepts each.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig2 [--scale 0.1]
//! ```

use taxoglimpse_bench::{RunOptions, TaxonomyCache};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_synth::PopularityModel;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let model = PopularityModel::new(opts.seed);

    let taxonomies: Vec<(TaxonomyKind, std::sync::Arc<taxoglimpse_taxonomy::Taxonomy>)> =
        TaxonomyKind::ALL
            .into_iter()
            .map(|kind| (kind, cache.get(kind, opts.seed, opts.scale_for(kind))))
            .collect();
    let refs: Vec<(TaxonomyKind, &taxoglimpse_taxonomy::Taxonomy)> =
        taxonomies.iter().map(|(k, t)| (*k, t.as_ref())).collect();

    let series = model.figure2_series(&refs, 100);
    println!("Figure 2: The popularity of different taxonomies (mean hits over 100 sampled concepts)");
    println!("{:<12} {:>14}  {:<9} bar (log scale)", "taxonomy", "mean hits", "class");
    let max_log = series
        .iter()
        .map(|&(_, v)| v.max(1.0).log10())
        .fold(0.0f64, f64::max);
    for (kind, hits) in &series {
        let log = hits.max(1.0).log10();
        let bar_len = ((log / max_log) * 48.0).round() as usize;
        let class = if kind.domain().is_common() { "common" } else { "special" };
        println!("{:<12} {:>14.0}  {:<9} {}", kind.display_name(), hits, class, "#".repeat(bar_len));
    }

    // The paper's headline claim for Figure 2: the four common
    // taxonomies rank above the six specialized ones.
    let first_special = series.iter().position(|(k, _)| !k.domain().is_common());
    let last_common = series.iter().rposition(|(k, _)| k.domain().is_common());
    if let (Some(fs), Some(lc)) = (first_special, last_common) {
        println!(
            "\ncommon-before-specialized ordering holds: {}",
            if lc < fs { "yes" } else { "no (noise this run)" }
        );
    }
}
