//! Regenerates **Figure 7** — scalability of the six open-source model
//! series: GPU RAM and average per-question inference time.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig7
//! ```

use taxoglimpse_llm::scalability::{family_latency_slope, figure7_series};
use taxoglimpse_report::table::Table;

fn main() {
    let mut table = Table::new(
        "Figure 7: Scalability of different model series".to_owned(),
        vec![
            "Series".into(),
            "Model".into(),
            "GPU RAM (GiB)".into(),
            "s / question".into(),
        ],
    );
    for (family, footprints) in figure7_series() {
        for f in footprints {
            table.push_row(vec![
                format!("{family:?}"),
                f.model.to_string(),
                format!("{:.1}", f.gpu_ram_gib),
                format!("{:.3}", f.seconds_per_question),
            ]);
        }
    }
    println!("{}", table.render_ascii());

    println!("latency growth slope (s/question per extra billion parameters):");
    for (family, _) in figure7_series() {
        if let Some(slope) = family_latency_slope(family) {
            println!("  {family:?}: {slope:.4}");
        }
    }
    println!("\npaper's qualitative claim: Flan-T5s, Vicunas and Llama-3s scale best — check the three smallest slopes above.");
}
