//! Regenerates **Figure 5** — example few-shot and Chain-of-Thoughts
//! prompts, rendered from a real dataset slice.
//!
//! ```text
//! cargo run --release -p taxoglimpse-bench --bin fig5
//! ```

use taxoglimpse_bench::{build_dataset, RunOptions, TaxonomyCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::prompts::{render_prompt, PromptSetting};
use taxoglimpse_core::templates::TemplateVariant;

fn main() {
    let opts = RunOptions::from_env();
    let cache = TaxonomyCache::new();
    let kind = TaxonomyKind::Glottolog;
    let taxonomy = cache.get(kind, opts.seed, opts.scale_for(kind).min(0.2));
    let dataset = build_dataset(&taxonomy, kind, QuestionDataset::Hard, &opts);

    let slice = &dataset.levels[dataset.levels.len() - 1];
    let question = &slice.questions[0];

    println!("Figure 5: Few-shot and Chain-of-Thoughts examples ({})\n", kind.display_name());
    println!("--- Few-shot ---");
    println!(
        "{}\n",
        render_prompt(question, PromptSetting::FewShot, TemplateVariant::Canonical, &slice.exemplars)
    );
    println!("--- Chain-of-Thoughts ---");
    println!(
        "{}",
        render_prompt(question, PromptSetting::ChainOfThought, TemplateVariant::Canonical, &[])
    );
}
