//! Minimal wall-clock benchmark harness.
//!
//! A deliberately small replacement for an external benchmarking
//! framework: each benchmark warms up, auto-scales its iteration count
//! to a target measurement window, and prints a mean time per
//! iteration (plus optional throughput). Bench binaries keep
//! `harness = false` and call [`Bench::from_env`] from `main`.
//!
//! Usage from a bench target:
//!
//! ```no_run
//! use taxoglimpse_bench::harness::{black_box, Bench};
//!
//! let mut b = Bench::from_env();
//! b.bench("my/bench", || black_box(2 + 2));
//! ```
//!
//! Invocations accept an optional positional substring filter (so
//! `cargo bench -p taxoglimpse-bench --bench substrate -- codec` runs
//! only matching benchmarks) and honour `TAXOGLIMPSE_BENCH_QUICK=1`
//! for a fast smoke run.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration throughput unit attached to a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many items per iteration.
    Elements(u64),
}

/// Benchmark runner: filters, times, and reports.
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    ran: usize,
}

impl Bench {
    /// Build a runner from the process arguments and environment.
    ///
    /// The first non-flag argument is a substring filter; flags that
    /// cargo's bench protocol passes (`--bench`, `--exact`, ...) are
    /// ignored. `TAXOGLIMPSE_BENCH_QUICK=1` shrinks the warm-up and
    /// measurement windows to smoke-test levels.
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let quick = std::env::var("TAXOGLIMPSE_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
        let (warmup, measure) = if quick {
            (Duration::from_millis(2), Duration::from_millis(10))
        } else {
            (Duration::from_millis(100), Duration::from_millis(400))
        };
        Bench { filter, warmup, measure, ran: 0 }
    }

    /// Run one benchmark if it passes the filter.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.bench_throughput(name, None, f)
    }

    /// Run one benchmark and additionally report throughput.
    pub fn bench_with_throughput<T>(&mut self, name: &str, throughput: Throughput, f: impl FnMut() -> T) {
        self.bench_throughput(name, Some(throughput), f)
    }

    fn bench_throughput<T>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut() -> T,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Warm up and estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;

        // Scale the measured run to roughly fill the measurement window.
        let iters = (self.measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u32;
        let timed = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = timed.elapsed();
        let mean = total / iters;

        let rate = throughput.map(|t| describe_rate(t, mean)).unwrap_or_default();
        println!("bench  {name:<52} {:>12}/iter  ({iters} iters){rate}", describe(mean));
    }

    /// Number of benchmarks that matched the filter and ran.
    pub fn ran(&self) -> usize {
        self.ran
    }
}

fn describe(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn describe_rate(throughput: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(n) => format!("  {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0)),
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Bench {
        Bench {
            filter: None,
            warmup: Duration::from_micros(50),
            measure: Duration::from_micros(200),
            ran: 0,
        }
    }

    #[test]
    fn runs_and_counts() {
        let mut b = quiet();
        b.bench("t/add", || black_box(1u64) + black_box(2u64));
        assert_eq!(b.ran(), 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = quiet();
        b.filter = Some("codec".to_owned());
        b.bench("t/add", || 0u8);
        b.bench("t/codec_roundtrip", || 0u8);
        assert_eq!(b.ran(), 1);
    }

    #[test]
    fn durations_format_with_units() {
        assert_eq!(describe(Duration::from_nanos(5)), "5 ns");
        assert_eq!(describe(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(describe(Duration::from_secs(2)), "2.00 s");
    }
}
