//! # taxoglimpse-bench
//!
//! Shared plumbing for the experiment binaries. Each paper table/figure
//! has a binary (`table1`, `table4`, `tables567`, `fig2`–`fig7`,
//! `casestudy`), plus `run_all`, all accepting:
//!
//! ```text
//! --scale <f64>   taxonomy scale factor (default 1.0 = Table-1 fidelity;
//!                 NCBI at 1.0 is 2.19M nodes)
//! --cap <usize>   per-level sample-size cap (default: the paper's
//!                 Cochran sizes)
//! --seed <u64>    master seed (default 42)
//! --models <csv>  restrict to a comma-separated model list
//! ```

#![warn(missing_docs)]

pub mod harness;

// lint:allow(D001, bench-only cache: keyed lookups under a Mutex, never iterated, and bench output is not digested)
use std::collections::HashMap;
use std::sync::Mutex;
use taxoglimpse_core::dataset::{Dataset, DatasetBuilder, QuestionDataset};
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_llm::profile::ModelId;
use taxoglimpse_synth::{generate, GenOptions, SEQ_STREAM_VERSION};
use taxoglimpse_taxonomy::{SnapshotStore, Taxonomy};

/// Common CLI options for the experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Taxonomy scale in `(0, 1]`.
    pub scale: f64,
    /// Optional per-level sample cap.
    pub cap: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Restrict to these models (`None` = all eighteen).
    pub models: Option<Vec<ModelId>>,
    /// Positional arguments left after flag parsing.
    pub positional: Vec<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { scale: 1.0, cap: None, seed: 42, models: None, positional: Vec::new() }
    }
}

impl RunOptions {
    /// Parse from an iterator of CLI arguments (without `argv[0]`).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = RunOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    opts.scale = next_value(&mut args, "--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                }
                "--cap" => {
                    opts.cap = Some(
                        next_value(&mut args, "--cap")?
                            .parse()
                            .map_err(|e| format!("--cap: {e}"))?,
                    );
                }
                "--seed" => {
                    opts.seed = next_value(&mut args, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--models" => {
                    let csv = next_value(&mut args, "--models")?;
                    let mut models = Vec::new();
                    for name in csv.split(',') {
                        models.push(name.trim().parse::<ModelId>()?);
                    }
                    opts.models = Some(models);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                positional => opts.positional.push(positional.to_owned()),
            }
        }
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// The models to evaluate.
    pub fn model_list(&self) -> Vec<ModelId> {
        self.models.clone().unwrap_or_else(|| ModelId::ALL.to_vec())
    }

    /// Scale used for one taxonomy. NCBI at full fidelity is 2.19M
    /// nodes; everything works but callers wanting speed pass --scale.
    pub fn scale_for(&self, _kind: TaxonomyKind) -> f64 {
        self.scale
    }
}

fn next_value(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Cache of generated taxonomies so `run_all` builds each only once.
///
/// Two tiers: an in-process map (so one run never regenerates), backed
/// by the on-disk [`SnapshotStore`] (so *successive* runs load the
/// binary snapshot instead of regenerating — the NCBI forest costs
/// hundreds of milliseconds to generate and tens to load). Snapshots
/// are keyed by everything that determines the bytes (kind, seed,
/// scale, stream + codec versions) and checksum-verified on load, so a
/// stale or corrupt file silently degrades to regeneration.
pub struct TaxonomyCache {
    // lint:allow(D001, keyed get-or-insert only; iteration order never observed)
    inner: Mutex<HashMap<(TaxonomyKind, u64, u64), std::sync::Arc<Taxonomy>>>,
    store: Option<SnapshotStore>,
}

impl Default for TaxonomyCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TaxonomyCache {
    /// A cache backed by the default on-disk snapshot store
    /// (`$TAXOGLIMPSE_CACHE_DIR`, else `target/taxo-cache`).
    pub fn new() -> Self {
        // lint:allow(D001, lookup-only memo keyed by (kind, seed, scale); iteration order never reaches any serialized output)
        TaxonomyCache { inner: Mutex::new(HashMap::new()), store: Some(SnapshotStore::open_default()) }
    }

    /// A purely in-process cache that never touches the filesystem.
    pub fn in_memory() -> Self {
        // lint:allow(D001, same lookup-only memo as `new`; never iterated for output)
        TaxonomyCache { inner: Mutex::new(HashMap::new()), store: None }
    }

    /// Get or generate the taxonomy for `(kind, seed, scale)`.
    ///
    /// Generation uses the legacy sequential stream ([`generate`]), the
    /// substrate under every pinned report digest in the workspace.
    pub fn get(&self, kind: TaxonomyKind, seed: u64, scale: f64) -> std::sync::Arc<Taxonomy> {
        let key = (kind, seed, scale.to_bits());
        if let Some(t) = self.inner.lock().expect("cache lock").get(&key) {
            return t.clone();
        }
        let fresh = || generate(kind, GenOptions { seed, scale }).expect("valid scale");
        let t = std::sync::Arc::new(match &self.store {
            Some(store) => {
                let skey = SnapshotStore::key(kind.label(), seed, scale, SEQ_STREAM_VERSION);
                store.load_or_generate(&skey, fresh)
            }
            None => fresh(),
        });
        self.inner.lock().expect("cache lock").insert(key, t.clone());
        t
    }
}

/// Build a dataset with the run options applied.
pub fn build_dataset(
    taxonomy: &Taxonomy,
    kind: TaxonomyKind,
    flavor: QuestionDataset,
    opts: &RunOptions,
) -> Dataset {
    DatasetBuilder::new(taxonomy, kind, opts.seed)
        .sample_cap(opts.cap)
        .build(flavor)
        .expect("benchmark taxonomies always have probe levels")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        RunOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.cap, None);
        assert_eq!(o.seed, 42);
        assert!(o.models.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&["--scale", "0.1", "--cap", "50", "--seed", "7", "--models", "GPT-4, Mistral", "hard"]).unwrap();
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.cap, Some(50));
        assert_eq!(o.seed, 7);
        assert_eq!(o.models, Some(vec![ModelId::Gpt4, ModelId::Mistral7b]));
        assert_eq!(o.positional, vec!["hard"]);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--models", "GPT-5"]).is_err());
        assert!(parse(&["--cap", "x"]).is_err());
    }

    #[test]
    fn cache_generates_once() {
        let cache = TaxonomyCache::new();
        let a = cache.get(TaxonomyKind::Ebay, 1, 1.0);
        let b = cache.get(TaxonomyKind::Ebay, 1, 1.0);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = cache.get(TaxonomyKind::Ebay, 2, 1.0);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn build_dataset_applies_cap() {
        let opts = RunOptions { cap: Some(5), ..RunOptions::default() };
        let cache = TaxonomyCache::new();
        let t = cache.get(TaxonomyKind::Ebay, opts.seed, 1.0);
        let d = build_dataset(&t, TaxonomyKind::Ebay, QuestionDataset::Mcq, &opts);
        for (_, n) in d.level_counts() {
            assert!(n <= 5);
        }
    }
}
