//! Compact and pretty JSON writers.
//!
//! Output is deterministic: object fields render in insertion order and
//! floats use Rust's shortest round-trip formatting.

use crate::Json;
use std::fmt::Write;

pub(crate) fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Json::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Json::F64(x) => write_f64(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(value: &Json, indent: usize, out: &mut String) {
    match value {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 is the shortest string that round-trips; keep it
        // recognizably a float so readers see the same type back.
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; mirror the lossy-but-total choice of
        // rendering them as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
