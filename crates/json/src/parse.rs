//! Recursive-descent JSON parser (RFC 8259), depth-limited.

use crate::{Json, JsonError, MAX_DEPTH};

/// Parse a complete JSON document into a [`Json`] value.
///
/// Trailing non-whitespace after the document is an error.
pub fn from_str_value(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing characters after document", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth >= MAX_DEPTH {
            return Err(JsonError::at("maximum nesting depth exceeded", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::at(format!("unexpected byte 0x{c:02x}"), self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes verbatim.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is valid UTF-8 and the run breaks only at ASCII
            // bytes, so the slice lies on char boundaries.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(JsonError::at("control character in string", self.pos)),
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low half.
                    if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                        return Err(JsonError::at("unpaired surrogate", self.pos));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(JsonError::at("invalid low surrogate", self.pos));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| JsonError::at("invalid code point", self.pos))?
                } else {
                    char::from_u32(hi).ok_or_else(|| JsonError::at("unpaired surrogate", self.pos))?
                };
                out.push(ch);
            }
            other => return Err(JsonError::at(format!("invalid escape `\\{}`", other as char), self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at("invalid hex digit in \\u escape", self.pos))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single zero, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at("expected digit", self.pos)),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(JsonError::at("leading zero in number", start));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII digits");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            // Out-of-range integers fall back to f64, like serde_json's
            // arbitrary-precision-off mode.
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::at("invalid number", start))
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(JsonError::at("expected digit", self.pos));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }
}
