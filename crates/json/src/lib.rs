//! A small, dependency-free JSON module: an owned [`Json`] value, a
//! recursive-descent parser, compact and pretty writers, and the
//! [`ToJson`]/[`FromJson`] traits the rest of the workspace implements
//! for its serialized types.
//!
//! The module exists so the workspace builds hermetically offline: it
//! replaces `serde`/`serde_json` for the handful of types that are
//! actually persisted (datasets, eval reports, exchange logs, flat
//! taxonomies). The encodings mirror the former derive output — unit
//! enum variants as strings (`"Easy"`), data-carrying variants as
//! single-key objects (`{"Option":2}`), structs as objects in field
//! order — so readers of previously written files keep working.
//!
//! Numbers preserve integer exactness: integers round-trip through
//! [`Json::U64`]/[`Json::I64`] (never through `f64`), which matters for
//! the 48-bit question-id scheme.

use std::error::Error;
use std::fmt;

mod parse;
mod write;

pub use parse::from_str_value;

/// Maximum nesting depth the parser accepts (arrays + objects).
pub const MAX_DEPTH: usize = 128;

/// An owned JSON document.
///
/// Object fields keep insertion order, so writing is deterministic:
/// the same value always renders to the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (positive integers parse as [`Json::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(name, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object (`None` for non-objects or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|fields| {
            fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        })
    }

    /// Look up a required field, with a descriptive error on miss.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))
    }

    /// Decode a required field into `T`.
    pub fn field_as<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.field(key)?)
            .map_err(|e| JsonError::msg(format!("field `{key}`: {e}")))
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I64(_) | Json::U64(_) | Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A parse or decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the input, for parse errors.
    offset: Option<usize>,
}

impl JsonError {
    /// A decode (shape-mismatch) error with no input position.
    pub fn msg(message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: None }
    }

    /// A parse error at a byte offset.
    pub fn at(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError { message: message.into(), offset: Some(offset) }
    }

    /// The expected/actual mismatch error used by `FromJson` impls.
    pub fn mismatch(expected: &str, got: &Json) -> JsonError {
        JsonError::msg(format!("expected {expected}, got {}", got.type_name()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} at byte {offset}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for JsonError {}

/// Types that render to a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that decode from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode from a JSON value.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serialize to a compact JSON string.
///
/// Infallible for every type in this workspace; the `Result` mirrors
/// the `serde_json::to_string` call shape so call sites read the same.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().render())
}

/// Serialize to a pretty (two-space-indented) JSON string.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().render_pretty())
}

/// Parse a JSON string and decode it into `T`.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&from_str_value(input)?)
}

// ---------------------------------------------------------------------
// ToJson / FromJson for primitives and containers.
// ---------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or_else(|| JsonError::mismatch("bool", json))
    }
}

macro_rules! unsigned_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = json.as_u64().ok_or_else(|| JsonError::mismatch("unsigned integer", json))?;
                <$t>::try_from(n).map_err(|_| JsonError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_json!(u8, u16, u32, u64, usize);

macro_rules! signed_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let n = *self as i64;
                if n >= 0 { Json::U64(n as u64) } else { Json::I64(n) }
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = json.as_i64().ok_or_else(|| JsonError::mismatch("integer", json))?;
                <$t>::try_from(n).map_err(|_| JsonError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_json!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64().ok_or_else(|| JsonError::mismatch("number", json))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str().map(str::to_owned).ok_or_else(|| JsonError::mismatch("string", json))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError::mismatch("array", json))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(json)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::msg(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Implement [`ToJson`]/[`FromJson`] for an enum of unit variants,
/// encoding each variant as its name string — the same wire format the
/// former serde derives produced (`QuestionDataset::Easy` ⇄ `"Easy"`).
#[macro_export]
macro_rules! unit_enum_json {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                };
                $crate::Json::Str(name.to_owned())
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let name = json
                    .as_str()
                    .ok_or_else(|| $crate::JsonError::mismatch("string", json))?;
                $(
                    if name == stringify!($variant) {
                        return Ok(<$ty>::$variant);
                    }
                )+
                Err($crate::JsonError::msg(format!(
                    "unknown {} variant `{name}`",
                    stringify!($ty)
                )))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for input in ["null", "true", "false", "0", "42", "-17", "1.5", "\"hi\"", "[]", "{}"] {
            let v = from_str_value(input).unwrap();
            assert_eq!(v.render(), input, "round trip of {input}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = (1u64 << 48) + 12345;
        let v = from_str_value(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(u64::from_json(&v).unwrap(), big);
        assert_eq!(i64::from_json(&from_str_value("-9007199254740993").unwrap()).unwrap(), -9007199254740993);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quote\" back\\slash tab\t control\u{1} é 漢 🦀";
        let rendered = to_string(original).unwrap();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, original);
        // Surrogate pairs in the input are decoded.
        let crab: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(crab, "🦀");
    }

    #[test]
    fn nested_values_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true,"e":[-1.25e2]},"f":"g"}"#;
        let v = from_str_value(text).unwrap();
        assert_eq!(from_str_value(&v.render()).unwrap(), v);
        assert_eq!(from_str_value(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn field_order_is_preserved() {
        let v = from_str_value(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2,"m":3}"#);
        assert_eq!(v.get("a"), Some(&Json::U64(2)));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.921, -0.003, 1e-9, 385.0, 2.5, 0.1 + 0.2] {
            let rendered = to_string(&x).unwrap();
            let back: f64 = from_str(&rendered).unwrap();
            assert_eq!(back, x, "{rendered}");
        }
    }

    #[test]
    fn option_and_arrays_decode() {
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::U64(7)).unwrap(), Some(7));
        let arr: [String; 2] = from_str(r#"["a","b"]"#).unwrap();
        assert_eq!(arr, ["a".to_owned(), "b".to_owned()]);
        assert!(<[String; 4]>::from_json(&from_str_value(r#"["a"]"#).unwrap()).is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "}", "[1,", "tru", "nul", "\"unterminated", "{\"a\"}", "{\"a\":}",
            "[1 2]", "01", "1.", "1e", "+1", "\"\\q\"", "\"\\u12\"", "{\"a\":1,}", "[,]",
            "1 1", "\u{7f}",
        ] {
            assert!(from_str_value(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(from_str_value(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(from_str_value(&ok).is_ok());
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let v = Json::obj(vec![("a", Json::U64(1)), ("b", Json::Arr(vec![Json::Bool(true)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).render_pretty(), "{}");
    }

    #[test]
    fn error_messages_name_the_problem() {
        let err = from_str::<u64>("\"nope\"").unwrap_err();
        assert!(err.to_string().contains("unsigned integer"), "{err}");
        let err = from_str_value("[1, ]").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        let missing = Json::obj(vec![]).field_as::<u64>("id").unwrap_err();
        assert!(missing.to_string().contains("id"), "{missing}");
    }
}
