//! Text renderings of the paper's figures: named data series with
//! labelled x-positions, printable as aligned text, sparklines, or CSV.


/// One named data series (e.g. one model's accuracy per level).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (model name, family name, …).
    pub name: String,
    /// `(x label, y value)` points in order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Build from `(label, value)` pairs.
    pub fn new(name: impl Into<String>, points: Vec<(String, f64)>) -> Self {
        Series { name: name.into(), points }
    }

    /// A unicode sparkline of the values (scaled to the series' own
    /// min/max; flat series render as mid blocks).
    pub fn sparkline(&self) -> String {
        const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.points.is_empty() {
            return String::new();
        }
        let min = self.points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let max = self.points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        self.points
            .iter()
            .map(|&(_, v)| {
                let t = if (max - min).abs() < 1e-12 { 0.5 } else { (v - min) / (max - min) };
                BLOCKS[((t * 7.0).round() as usize).min(7)]
            })
            .collect()
    }
}

/// A figure: a set of series over a shared x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. "Figure 3(b): Amazon, hard, zero-shot").
    pub title: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(title: impl Into<String>) -> Self {
        Figure { title: title.into(), series: Vec::new() }
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as aligned text: one row per series with values and a
    /// sparkline.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let name_w = self.series.iter().map(|s| s.name.len()).max().unwrap_or(6).max(6);
        if let Some(first) = self.series.first() {
            let labels: Vec<String> = first
                .points
                .iter()
                .map(|(l, _)| format!("{l:>w$}", w = l.len().max(5)))
                .collect();
            out.push_str(&format!("{:<name_w$} {}\n", "series", labels.join("  ")));
        }
        for s in &self.series {
            let vals: Vec<String> = s.points.iter().map(|(l, v)| format!("{v:>w$.3}", w = l.len().max(5))).collect();
            out.push_str(&format!("{:<name_w$} {}  {}\n", s.name, vals.join("  "), s.sparkline()));
        }
        out
    }

    /// Render as CSV: `series,label,value` rows.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("series,x,value\n");
        for s in &self.series {
            for (label, v) in &s.points {
                out.push_str(&format!("{},{label},{v:.4}\n", s.name));
            }
        }
        out
    }

    /// Is the overall trend of a series decreasing (first third mean >
    /// last third mean)? Used to assert the root-to-leaf decline.
    pub fn series_declines(series: &Series) -> bool {
        let n = series.points.len();
        if n < 2 {
            return false;
        }
        let third = (n / 3).max(1);
        let head: f64 = series.points[..third].iter().map(|p| p.1).sum::<f64>() / third as f64;
        let tail: f64 =
            series.points[n - third..].iter().map(|p| p.1).sum::<f64>() / third as f64;
        head > tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(
            "GPT-4",
            vec![("L1".into(), 0.9), ("L2".into(), 0.8), ("L3".into(), 0.6)],
        )
    }

    #[test]
    fn sparkline_shape() {
        let s = series().sparkline();
        assert_eq!(s.chars().count(), 3);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '█');
        assert_eq!(chars[2], '▁');
    }

    #[test]
    fn sparkline_flat_and_empty() {
        let flat = Series::new("x", vec![("a".into(), 0.5), ("b".into(), 0.5)]);
        assert_eq!(flat.sparkline().chars().count(), 2);
        let empty = Series::new("x", vec![]);
        assert_eq!(empty.sparkline(), "");
    }

    #[test]
    fn figure_text_rendering() {
        let mut f = Figure::new("Figure 3(x): demo");
        f.push(series());
        let text = f.render_text();
        assert!(text.starts_with("Figure 3(x): demo\n"));
        assert!(text.contains("GPT-4"));
        assert!(text.contains("0.900"));
    }

    #[test]
    fn figure_csv() {
        let mut f = Figure::new("t");
        f.push(series());
        let csv = f.render_csv();
        assert!(csv.starts_with("series,x,value\n"));
        assert!(csv.contains("GPT-4,L1,0.9000"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn decline_detection() {
        assert!(Figure::series_declines(&series()));
        let rising = Series::new("r", vec![("a".into(), 0.2), ("b".into(), 0.9)]);
        assert!(!Figure::series_declines(&rising));
        let single = Series::new("s", vec![("a".into(), 0.2)]);
        assert!(!Figure::series_declines(&single));
    }
}
