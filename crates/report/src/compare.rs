//! Paper-vs-measured comparison: given a grid of measured
//! [`EvalReport`]s, compute the per-cell deltas against the paper's
//! published anchors and summarize fidelity. This is the machinery
//! behind EXPERIMENTS.md.

use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::eval::EvalReport;
use taxoglimpse_llm::calib;
use taxoglimpse_llm::profile::ModelId;

/// One (model, taxonomy) cell compared against the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellComparison {
    /// Model row.
    pub model: ModelId,
    /// Taxonomy column.
    pub taxonomy: TaxonomyKind,
    /// Measured accuracy.
    pub measured_a: f64,
    /// Paper accuracy.
    pub paper_a: f64,
    /// Measured miss rate.
    pub measured_m: f64,
    /// Paper miss rate.
    pub paper_m: f64,
}

impl CellComparison {
    /// Absolute accuracy delta.
    pub fn delta_a(&self) -> f64 {
        (self.measured_a - self.paper_a).abs()
    }

    /// Absolute miss-rate delta.
    pub fn delta_m(&self) -> f64 {
        (self.measured_m - self.paper_m).abs()
    }
}

/// Fidelity summary over a set of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonSummary {
    /// Which dataset flavor was compared.
    pub flavor: QuestionDataset,
    /// All compared cells.
    pub cells: Vec<CellComparison>,
}

impl ComparisonSummary {
    /// Compare measured reports (any subset of the model × taxonomy
    /// grid) against the paper's anchors for `flavor`.
    pub fn from_reports(flavor: QuestionDataset, reports: &[(ModelId, EvalReport)]) -> Self {
        let cells = reports
            .iter()
            .map(|(model, report)| {
                let (paper_a, paper_m) = calib::anchor(*model, report.taxonomy, flavor);
                CellComparison {
                    model: *model,
                    taxonomy: report.taxonomy,
                    measured_a: report.overall.accuracy(),
                    paper_a,
                    measured_m: report.overall.miss_rate(),
                    paper_m,
                }
            })
            .collect();
        ComparisonSummary { flavor, cells }
    }

    /// Mean absolute accuracy delta.
    pub fn mean_delta_a(&self) -> f64 {
        mean(self.cells.iter().map(CellComparison::delta_a))
    }

    /// Mean absolute miss-rate delta.
    pub fn mean_delta_m(&self) -> f64 {
        mean(self.cells.iter().map(CellComparison::delta_m))
    }

    /// Largest accuracy delta.
    pub fn max_delta_a(&self) -> f64 {
        self.cells.iter().map(CellComparison::delta_a).fold(0.0, f64::max)
    }

    /// Does the measured grid preserve the paper's *winner* per
    /// taxonomy? Returns the fraction of compared taxonomies whose
    /// best-measured model matches the best-paper model (ties broken by
    /// row order). Only meaningful when several models share a taxonomy.
    pub fn winner_agreement(&self) -> f64 {
        let mut taxonomies: Vec<TaxonomyKind> = self.cells.iter().map(|c| c.taxonomy).collect();
        taxonomies.sort();
        taxonomies.dedup();
        if taxonomies.is_empty() {
            return 1.0;
        }
        let mut agree = 0usize;
        for taxonomy in &taxonomies {
            let cells: Vec<&CellComparison> =
                self.cells.iter().filter(|c| c.taxonomy == *taxonomy).collect();
            let best_measured = cells
                .iter()
                .max_by(|a, b| a.measured_a.total_cmp(&b.measured_a))
                .map(|c| c.model);
            let best_paper = cells
                .iter()
                .max_by(|a, b| a.paper_a.total_cmp(&b.paper_a))
                .map(|c| c.model);
            if best_measured == best_paper {
                agree += 1;
            }
        }
        agree as f64 / taxonomies.len() as f64
    }

    /// Render the comparison as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| Model | Taxonomy | A (paper) | A (ours) | ΔA | M (paper) | M (ours) | ΔM |\n|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                c.model,
                c.taxonomy,
                c.paper_a,
                c.measured_a,
                c.delta_a(),
                c.paper_m,
                c.measured_m,
                c.delta_m()
            ));
        }
        out.push_str(&format!(
            "\nmean |ΔA| = {:.3}, mean |ΔM| = {:.3}, max |ΔA| = {:.3} over {} cells ({})\n",
            self.mean_delta_a(),
            self.mean_delta_m(),
            self.max_delta_a(),
            self.cells.len(),
            self.flavor
        ));
        out
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::DatasetBuilder;
    use taxoglimpse_core::eval::Evaluator;
    use taxoglimpse_llm::zoo::ModelZoo;
    use taxoglimpse_synth::{generate, GenOptions};

    fn measure(model: ModelId, kind: TaxonomyKind, flavor: QuestionDataset) -> EvalReport {
        let t = generate(kind, GenOptions { seed: 31, scale: 1.0 }).unwrap();
        let d = DatasetBuilder::new(&t, kind, 31).build(flavor).unwrap();
        let zoo = ModelZoo::default_zoo();
        Evaluator::default().run(zoo.get(model).unwrap().as_ref(), &d)
    }

    #[test]
    fn measured_ebay_hard_lands_near_the_paper() {
        let reports = vec![
            (ModelId::Gpt4, measure(ModelId::Gpt4, TaxonomyKind::Ebay, QuestionDataset::Hard)),
            (ModelId::Llama2_7b, measure(ModelId::Llama2_7b, TaxonomyKind::Ebay, QuestionDataset::Hard)),
            (ModelId::Falcon7b, measure(ModelId::Falcon7b, TaxonomyKind::Ebay, QuestionDataset::Hard)),
        ];
        let summary = ComparisonSummary::from_reports(QuestionDataset::Hard, &reports);
        assert!(summary.mean_delta_a() < 0.08, "mean dA {}", summary.mean_delta_a());
        assert!(summary.mean_delta_m() < 0.08, "mean dM {}", summary.mean_delta_m());
        assert_eq!(summary.winner_agreement(), 1.0);
    }

    #[test]
    fn markdown_rendering_contains_all_cells() {
        let reports = vec![(
            ModelId::Gpt4,
            measure(ModelId::Gpt4, TaxonomyKind::Ebay, QuestionDataset::Mcq),
        )];
        let summary = ComparisonSummary::from_reports(QuestionDataset::Mcq, &reports);
        let md = summary.render_markdown();
        assert!(md.contains("GPT-4"));
        assert!(md.contains("eBay"));
        assert!(md.contains("mean |ΔA|"));
    }

    #[test]
    fn empty_summary_is_benign() {
        let summary = ComparisonSummary { flavor: QuestionDataset::Easy, cells: vec![] };
        assert_eq!(summary.mean_delta_a(), 0.0);
        assert_eq!(summary.winner_agreement(), 1.0);
        assert_eq!(summary.max_delta_a(), 0.0);
    }
}
