//! Deterministic fixed-bucket log-scale latency histogram.
//!
//! Serving benchmarks report tail percentiles (p50/p99/p999) over
//! hundreds of thousands of virtual latencies; sorting every sample is
//! wasteful and a floating-point `log()` bucket map would tie the
//! bucket layout to libm rounding. This histogram avoids both: the
//! bucket index is computed **purely from the f64 bit pattern**
//! (exponent + top mantissa bits), so the layout is a platform-free
//! function of the value, and a quantile query walks fixed buckets in
//! O(buckets).
//!
//! Layout: [`SUBS_PER_OCTAVE`] sub-buckets per power of two between
//! 2^[`MIN_EXP`] (~1 µs) and 2^[`MAX_EXP`] (~4.5 h), bracketed by an
//! underflow bucket (zero and sub-microsecond values) and an overflow
//! bucket. Relative bucket width is at most 1/8 ≈ 12.5%, so any
//! quantile estimate lands in the *same* bucket as the exact-sort
//! oracle — the contract `tests/serve.rs` pins.
//!
//! Histograms are additive ([`AddAssign`](std::ops::AddAssign) /
//! [`Sum`](std::iter::Sum)), so per-tenant or per-shard histograms
//! merge into fleet-wide views without re-recording.

/// Sub-buckets per power of two (top three mantissa bits).
pub const SUBS_PER_OCTAVE: usize = 8;

/// Smallest binary exponent with its own octave: 2^-20 ≈ 0.95 µs.
pub const MIN_EXP: i32 = -20;

/// One past the largest binary exponent with its own octave:
/// 2^14 = 16384 s ≈ 4.5 h.
pub const MAX_EXP: i32 = 14;

/// Total buckets: the octaves plus underflow (index 0) and overflow
/// (last index).
pub const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBS_PER_OCTAVE + 2;

/// A fixed-layout log-scale histogram of non-negative samples
/// (seconds, by convention — the layout is unit-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `value`, from the f64 bit pattern alone.
///
/// Negative, zero, NaN and sub-range values map to the underflow
/// bucket 0; values at or above 2^[`MAX_EXP`] map to the overflow
/// bucket. The index is monotone in the value over the covered range.
pub fn bucket_index(value: f64) -> usize {
    if !(value > 0.0) {
        return 0;
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp >= MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> 49) & 0x7) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS_PER_OCTAVE + sub
}

/// Inclusive lower bound of bucket `index` — the representative a
/// quantile query returns. The underflow bucket reports 0; the
/// overflow bucket reports its lower edge 2^[`MAX_EXP`].
pub fn bucket_lower_bound(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index >= NUM_BUCKETS - 1 {
        return 2.0f64.powi(MAX_EXP);
    }
    let exp = MIN_EXP + ((index - 1) / SUBS_PER_OCTAVE) as i32;
    let sub = (index - 1) % SUBS_PER_OCTAVE;
    2.0f64.powi(exp) * (1.0 + sub as f64 / SUBS_PER_OCTAVE as f64)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: Box::new([0; NUM_BUCKETS]), total: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
    }

    /// Record every sample of a slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (`q` clamped to [0, 1]): the lower bound of the
    /// bucket holding the sample of rank `ceil(q * n)`. Returns 0 for
    /// an empty histogram. Because buckets are at most 12.5% wide, the
    /// estimate is within one bucket of the exact-sort oracle.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_lower_bound(index);
            }
        }
        // Counts sum to `total` and rank <= total, so the loop always
        // returns; this arm is unreachable by construction.
        bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// Median shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Histograms over the same fixed layout are additive: per-tenant or
/// per-shard histograms merge by bucket-wise summation.
impl std::ops::AddAssign<&LatencyHistogram> for LatencyHistogram {
    fn add_assign(&mut self, rhs: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *mine += *theirs;
        }
        self.total += rhs.total;
    }
}

impl std::iter::Sum for LatencyHistogram {
    fn sum<I: Iterator<Item = LatencyHistogram>>(iter: I) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for histogram in iter {
            merged += &histogram;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_synth::rng::{fork, Rng};

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let values = [
            0.0, 1e-9, 9e-7, 1e-6, 1e-3, 0.01, 0.5, 1.0, 1.5, 2.0, 30.0, 1e3, 16383.0, 16384.0,
            1e9,
        ];
        let mut last = 0;
        for v in values {
            let b = bucket_index(v);
            assert!(b >= last, "bucket({v}) = {b} < previous {last}");
            assert!(b < NUM_BUCKETS);
            last = b;
        }
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
    }

    #[test]
    fn lower_bounds_fall_in_their_own_bucket() {
        for index in 1..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(index);
            assert_eq!(bucket_index(lo), index, "lower bound of bucket {index} ({lo})");
        }
        assert_eq!(bucket_lower_bound(0), 0.0);
        assert_eq!(bucket_index(bucket_lower_bound(NUM_BUCKETS - 1)), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_width_is_at_most_one_eighth() {
        for index in 1..NUM_BUCKETS - 2 {
            let lo = bucket_lower_bound(index);
            let hi = bucket_lower_bound(index + 1);
            assert!(hi > lo);
            assert!((hi - lo) / lo <= 0.125 + 1e-12, "bucket {index}: [{lo}, {hi})");
        }
    }

    /// The contract the serving benchmarks rely on: every quantile
    /// estimate lands in the same bucket as the exact-sort oracle.
    #[test]
    fn quantiles_match_exact_sort_oracle_within_one_bucket() {
        for case in 0..8u64 {
            let mut rng = fork(0x4157_0001, "histogram-oracle", case);
            let n = 200 + (rng.next_u64() % 5000) as usize;
            let mut samples: Vec<f64> = (0..n)
                .map(|_| {
                    let u = rng.gen::<f64>();
                    // Log-uniform over ~9 decades, plus some exact zeros.
                    if u < 0.05 {
                        0.0
                    } else {
                        1e-5 * 1e8f64.powf(rng.gen::<f64>())
                    }
                })
                .collect();
            let mut hist = LatencyHistogram::new();
            hist.record_all(&samples);
            samples.sort_by(f64::total_cmp);
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let oracle = samples[rank - 1];
                let estimate = hist.quantile(q);
                assert_eq!(
                    bucket_index(estimate),
                    bucket_index(oracle),
                    "case {case}: q={q}, oracle {oracle}, estimate {estimate}"
                );
                assert!(estimate <= oracle, "lower-bound representative exceeds the oracle");
            }
        }
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.quantile(0.99), 0.0);
        assert_eq!(hist.p50(), 0.0);
    }

    #[test]
    fn histograms_merge_additively() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_all(&[0.001, 0.002, 0.004]);
        b.record_all(&[0.5, 1.0]);
        let mut whole = LatencyHistogram::new();
        whole.record_all(&[0.001, 0.002, 0.004, 0.5, 1.0]);

        let mut merged = a.clone();
        merged += &b;
        assert_eq!(merged, whole);
        assert_eq!(merged.count(), 5);

        let summed: LatencyHistogram = [a, b].into_iter().sum();
        assert_eq!(summed, whole);
        assert_eq!(summed.p99(), whole.p99());
    }
}
