//! # taxoglimpse-report
//!
//! Rendering utilities for the experiment binaries: plain-text/Markdown/
//! CSV tables ([`table`]), text "figures" (per-level accuracy curves,
//! radar-chart data, scalability series — [`figures`]), and the
//! paper-vs-measured comparison used to fill EXPERIMENTS.md
//! ([`compare`]), plus the order-stable merge of per-shard partial
//! reports ([`merge`]) and the fixed-bucket log-scale latency
//! histogram behind the serving benchmarks ([`histogram`]).

#![warn(missing_docs)]

pub mod compare;
pub mod figures;
pub mod histogram;
pub mod leaderboard;
pub mod merge;
pub mod table;

pub use compare::{CellComparison, ComparisonSummary};
pub use figures::Series;
pub use histogram::LatencyHistogram;
pub use merge::{merge_reports, merge_sharded, MergeError};
pub use table::Table;
