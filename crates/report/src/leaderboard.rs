//! Model leaderboards: rank models by macro-average accuracy over a set
//! of evaluation reports, with Wilson confidence intervals and miss
//! rates — the "which model should I use for taxonomy work" view for
//! the paper's industrial audience.

use taxoglimpse_core::eval::EvalReport;
use taxoglimpse_core::metrics::Metrics;

/// One leaderboard row.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardEntry {
    /// Model name.
    pub model: String,
    /// Macro-average accuracy over the model's reports (each report
    /// weighted equally, like the paper's per-taxonomy averages).
    pub macro_accuracy: f64,
    /// Macro-average miss rate.
    pub macro_miss: f64,
    /// Macro-average availability (fraction of questions whose model
    /// call delivered any answer; 1.0 in a fault-free run).
    pub macro_availability: f64,
    /// Micro (pooled) metrics across all the model's questions.
    pub pooled: Metrics,
    /// Number of reports (taxonomy × flavor cells) aggregated.
    pub cells: usize,
}

impl LeaderboardEntry {
    /// Wilson 95% CI on the pooled accuracy.
    pub fn accuracy_ci95(&self) -> (f64, f64) {
        self.pooled.accuracy_ci95()
    }
}

/// Build a leaderboard from reports (any mix of taxonomies/flavors);
/// rows sorted by macro accuracy, best first.
pub fn leaderboard(reports: &[EvalReport]) -> Vec<LeaderboardEntry> {
    let mut by_model: std::collections::BTreeMap<&str, Vec<&EvalReport>> = Default::default();
    for r in reports {
        by_model.entry(&r.model).or_default().push(r);
    }
    let mut rows: Vec<LeaderboardEntry> = by_model
        .into_iter()
        .map(|(model, rs)| {
            let n = rs.len() as f64;
            let macro_accuracy = rs.iter().map(|r| r.overall.accuracy()).sum::<f64>() / n;
            let macro_miss = rs.iter().map(|r| r.overall.miss_rate()).sum::<f64>() / n;
            let macro_availability =
                rs.iter().map(|r| r.overall.availability()).sum::<f64>() / n;
            let mut pooled = Metrics::default();
            for r in &rs {
                pooled += r.overall;
            }
            LeaderboardEntry {
                model: model.to_owned(),
                macro_accuracy,
                macro_miss,
                macro_availability,
                pooled,
                cells: rs.len(),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.macro_accuracy.total_cmp(&a.macro_accuracy));
    rows
}

/// Render a leaderboard as an aligned text table.
pub fn render(rows: &[LeaderboardEntry]) -> String {
    let mut table = crate::table::Table::new(
        "Leaderboard (macro-average over cells; CI on pooled questions)".to_owned(),
        vec![
            "#".into(),
            "Model".into(),
            "macro A".into(),
            "95% CI".into(),
            "macro M".into(),
            "avail".into(),
            "cells".into(),
            "questions".into(),
        ],
    );
    for (i, row) in rows.iter().enumerate() {
        let (lo, hi) = row.accuracy_ci95();
        table.push_row(vec![
            (i + 1).to_string(),
            row.model.clone(),
            format!("{:.3}", row.macro_accuracy),
            format!("[{lo:.3}, {hi:.3}]"),
            format!("{:.3}", row.macro_miss),
            format!("{:.3}", row.macro_availability),
            row.cells.to_string(),
            row.pooled.total().to_string(),
        ]);
    }
    table.render_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::QuestionDataset;
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::eval::LevelMetrics;
    use taxoglimpse_core::prompts::PromptSetting;

    fn report(model: &str, correct: usize, wrong: usize, missed: usize) -> EvalReport {
        let metrics = Metrics { correct, missed, wrong, failed: 0 };
        EvalReport {
            model: model.into(),
            taxonomy: TaxonomyKind::Ebay,
            flavor: QuestionDataset::Hard,
            setting: PromptSetting::ZeroShot,
            overall: metrics,
            by_level: vec![LevelMetrics { child_level: 1, metrics }],
        }
    }

    #[test]
    fn ranks_by_macro_accuracy() {
        let reports = vec![
            report("weak", 40, 60, 0),
            report("strong", 90, 10, 0),
            report("strong", 80, 20, 0),
            report("mid", 60, 40, 0),
        ];
        let rows = leaderboard(&reports);
        let names: Vec<&str> = rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(names, vec!["strong", "mid", "weak"]);
        assert_eq!(rows[0].cells, 2);
        assert!((rows[0].macro_accuracy - 0.85).abs() < 1e-12);
        assert_eq!(rows[0].pooled.total(), 200);
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let rows = leaderboard(&[report("m", 80, 20, 0)]);
        let (lo, hi) = rows[0].accuracy_ci95();
        assert!(lo < 0.8 && 0.8 < hi);
    }

    #[test]
    fn render_contains_every_model() {
        let rows = leaderboard(&[report("alpha", 5, 5, 0), report("beta", 9, 1, 0)]);
        let text = render(&rows);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn empty_input_is_empty_board() {
        assert!(leaderboard(&[]).is_empty());
    }

    #[test]
    fn availability_reflects_failed_deliveries() {
        let mut degraded = report("flaky", 6, 2, 0);
        degraded.overall.failed = 2;
        let rows = leaderboard(&[degraded, report("solid", 8, 2, 0)]);
        let flaky = rows.iter().find(|r| r.model == "flaky").expect("flaky row present");
        let solid = rows.iter().find(|r| r.model == "solid").expect("solid row present");
        assert!((flaky.macro_availability - 0.8).abs() < 1e-12);
        assert_eq!(solid.macro_availability, 1.0);
        let text = render(&rows);
        assert!(text.contains("avail"));
        assert!(text.contains("0.800"));
    }
}
