//! Order-stable merging of per-shard evaluation reports.
//!
//! Sharded runs (`taxoglimpse_core::shard`) produce one partial
//! [`EvalReport`] per shard, every partial carrying the *full* level
//! skeleton with metrics only from the shard's own slots. Merging is
//! therefore pure counter addition: validate that every part describes
//! the same logical run, then sum [`Metrics`] per level **in part
//! order** (shard-index order, which within each shard already summed
//! slots in ascending slot order).
//!
//! Counter addition over `usize` is associative and commutative, so
//! once each slot's counters are shard-count-invariant (the `shard`
//! module's determinism argument), the merged report's bytes are too —
//! the ordered merge here keeps the construction auditable rather than
//! relying on commutativity.

use std::fmt;
use taxoglimpse_core::eval::{EvalReport, LevelMetrics};
use taxoglimpse_core::metrics::Metrics;
use taxoglimpse_core::shard::ShardRun;

/// Why a set of partial reports refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No parts were supplied.
    Empty,
    /// Part `index` describes a different (model, taxonomy, flavor,
    /// setting) than part 0.
    IdentityMismatch {
        /// Index of the offending part.
        index: usize,
    },
    /// Part `index` carries a different per-level skeleton than part 0.
    LevelMismatch {
        /// Index of the offending part.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no partial reports to merge"),
            MergeError::IdentityMismatch { index } => {
                write!(f, "partial report {index} describes a different run than part 0")
            }
            MergeError::LevelMismatch { index } => {
                write!(f, "partial report {index} has a different level structure than part 0")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merge per-shard partial reports into one logical report, in part
/// order. Every part must agree on (model, taxonomy, flavor, setting)
/// and on the per-level skeleton.
pub fn merge_reports(parts: &[EvalReport]) -> Result<EvalReport, MergeError> {
    let first = parts.first().ok_or(MergeError::Empty)?;
    let mut by_level: Vec<LevelMetrics> = first
        .by_level
        .iter()
        .map(|l| LevelMetrics { child_level: l.child_level, metrics: Metrics::default() })
        .collect();

    for (index, part) in parts.iter().enumerate() {
        let same_identity = part.model == first.model
            && part.taxonomy == first.taxonomy
            && part.flavor == first.flavor
            && part.setting == first.setting;
        if !same_identity {
            return Err(MergeError::IdentityMismatch { index });
        }
        if part.by_level.len() != by_level.len()
            || part
                .by_level
                .iter()
                .zip(&by_level)
                .any(|(a, b)| a.child_level != b.child_level)
        {
            return Err(MergeError::LevelMismatch { index });
        }
        for (merged, partial) in by_level.iter_mut().zip(&part.by_level) {
            merged.metrics += partial.metrics;
        }
    }

    let mut overall = Metrics::default();
    for level in &by_level {
        overall += level.metrics;
    }
    Ok(EvalReport {
        model: first.model.clone(),
        taxonomy: first.taxonomy,
        flavor: first.flavor,
        setting: first.setting,
        overall,
        by_level,
    })
}

/// Merge the output of `taxoglimpse_core::shard::run_sharded` — the
/// runs arrive in shard-index order and merge in that order.
pub fn merge_sharded(runs: &[ShardRun]) -> Result<EvalReport, MergeError> {
    let reports: Vec<EvalReport> = runs.iter().map(|r| r.report.clone()).collect();
    merge_reports(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::QuestionDataset;
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::prompts::PromptSetting;

    fn part(correct: usize, wrong: usize) -> EvalReport {
        let metrics = Metrics { correct, missed: 0, wrong, failed: 0 };
        EvalReport {
            model: "GPT-4".into(),
            taxonomy: TaxonomyKind::Ncbi,
            flavor: QuestionDataset::Hard,
            setting: PromptSetting::ZeroShot,
            overall: metrics,
            by_level: vec![
                LevelMetrics { child_level: 1, metrics },
                LevelMetrics { child_level: 2, metrics: Metrics::default() },
            ],
        }
    }

    #[test]
    fn merging_sums_levels_in_part_order() {
        let merged = merge_reports(&[part(3, 1), part(2, 2), part(0, 0)])
            .expect("identical parts merge");
        assert_eq!(merged.overall, Metrics { correct: 5, missed: 0, wrong: 3, failed: 0 });
        assert_eq!(merged.by_level.len(), 2);
        assert_eq!(merged.by_level[0].metrics.correct, 5);
        assert_eq!(merged.by_level[1].metrics, Metrics::default());
        assert_eq!(merged.model, "GPT-4");
        assert_eq!(merged.taxonomy, TaxonomyKind::Ncbi);
    }

    #[test]
    fn single_part_round_trips() {
        let p = part(4, 2);
        let merged = merge_reports(std::slice::from_ref(&p)).expect("one part merges");
        assert_eq!(merged.overall, p.overall);
        assert_eq!(merged.by_level, p.by_level);
    }

    #[test]
    fn empty_and_mismatched_parts_are_rejected() {
        assert!(matches!(merge_reports(&[]), Err(MergeError::Empty)));

        let mut other_model = part(1, 0);
        other_model.model = "GPT-3.5".into();
        assert!(matches!(
            merge_reports(&[part(1, 0), other_model]),
            Err(MergeError::IdentityMismatch { index: 1 })
        ));

        let mut other_levels = part(1, 0);
        other_levels.by_level.pop();
        assert!(matches!(
            merge_reports(&[part(1, 0), other_levels]),
            Err(MergeError::LevelMismatch { index: 1 })
        ));
        assert!(MergeError::Empty.to_string().contains("no partial reports"));
    }
}
