//! Generic text tables, plus the standard per-cell results table.


/// A rectangular table with a title, column headers and string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title line printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table { title: title.into(), headers, rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render with aligned ASCII columns.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as GitHub-flavored Markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing
    /// commas or quotes).
    pub fn render_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a probability the way the paper's tables do (three decimals).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// The standard per-cell results table: one row per evaluation report
/// (a (model, taxonomy, flavor) cell), with accuracy, miss rate and —
/// new with the resilience layer — availability, the fraction of the
/// cell's questions whose model call delivered any answer.
pub fn cell_table(
    title: impl Into<String>,
    reports: &[taxoglimpse_core::eval::EvalReport],
) -> Table {
    let mut table = Table::new(
        title,
        vec![
            "model".into(),
            "taxonomy".into(),
            "flavor".into(),
            "A".into(),
            "M".into(),
            "avail".into(),
            "n".into(),
        ],
    );
    for r in reports {
        table.push_row(vec![
            r.model.clone(),
            r.taxonomy.display_name().to_owned(),
            format!("{:?}", r.flavor),
            fmt3(r.overall.accuracy()),
            fmt3(r.overall.miss_rate()),
            fmt3(r.overall.availability()),
            r.overall.total().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["model".into(), "A".into(), "M".into()]);
        t.push_row(vec!["GPT-4".into(), "0.921".into(), "0.003".into()]);
        t.push_row(vec!["Llama-2-7B".into(), "0.201".into(), "0.789".into()]);
        t
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().render_ascii();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Both data rows start their second column at the same offset.
        let off1 = lines[3].find("0.921").unwrap();
        let off2 = lines[4].find("0.201").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn markdown_has_separator() {
        let s = sample().render_markdown();
        assert!(s.contains("| model | A | M |"));
        assert!(s.contains("|---|---|---|"));
        assert!(s.contains("| GPT-4 | 0.921 | 0.003 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push_row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let s = t.render_csv();
        assert!(s.contains("\"hello, world\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("x", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.9214), "0.921");
        assert_eq!(fmt3(0.0), "0.000");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn cell_table_includes_availability() {
        use taxoglimpse_core::dataset::QuestionDataset;
        use taxoglimpse_core::domain::TaxonomyKind;
        use taxoglimpse_core::eval::EvalReport;
        use taxoglimpse_core::metrics::Metrics;
        use taxoglimpse_core::prompts::PromptSetting;
        let report = EvalReport {
            model: "m".into(),
            taxonomy: TaxonomyKind::Ebay,
            flavor: QuestionDataset::Hard,
            setting: PromptSetting::ZeroShot,
            overall: Metrics { correct: 6, missed: 1, wrong: 1, failed: 2 },
            by_level: vec![],
        };
        let text = cell_table("Cells", &[report]).render_ascii();
        assert!(text.contains("avail"));
        assert!(text.contains("0.800"), "availability 8/10 renders: {text}");
    }
}
