//! Evaluation metrics (§3.3): accuracy *A* and miss rate *M*.
//!
//! *A* = correct answers / all questions; *M* = "I don't know" answers /
//! all questions. A good model has high *A* with low *M*. Unparseable
//! responses count as wrong answers, not misses.

use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};
use std::ops::AddAssign;

/// Aggregated outcome counts plus the derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Questions answered correctly.
    pub correct: usize,
    /// Questions answered "I don't know".
    pub missed: usize,
    /// Questions answered incorrectly (including unparseable output).
    pub wrong: usize,
}

impl Metrics {
    /// Total questions seen.
    pub fn total(&self) -> usize {
        self.correct + self.missed + self.wrong
    }

    /// Accuracy *A*: correct / total (0 for an empty set).
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.total())
    }

    /// Miss rate *M*: misses / total (0 for an empty set).
    pub fn miss_rate(&self) -> f64 {
        ratio(self.missed, self.total())
    }

    /// Accuracy among answered (non-missed) questions; the conditional
    /// quantity the knowledge models are calibrated in.
    pub fn conditional_accuracy(&self) -> f64 {
        ratio(self.correct, self.correct + self.wrong)
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Correct => self.correct += 1,
            Outcome::Missed => self.missed += 1,
            Outcome::Wrong => self.wrong += 1,
        }
    }

    /// 95% Wilson score interval for the accuracy — the right interval
    /// for proportions at the benchmark's sample sizes (a few hundred
    /// questions per level), where the normal approximation misbehaves
    /// near 0 and 1. Returns `(low, high)`; `(0, 1)` for an empty set.
    pub fn accuracy_ci95(&self) -> (f64, f64) {
        wilson_ci(self.correct, self.total(), 1.959_963_985)
    }

    /// 95% Wilson interval for the miss rate.
    pub fn miss_ci95(&self) -> (f64, f64) {
        wilson_ci(self.missed, self.total(), 1.959_963_985)
    }
}

/// Wilson score interval for `successes / trials` at z-score `z`.
pub fn wilson_ci(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.correct += rhs.correct;
        self.missed += rhs.missed;
        self.wrong += rhs.wrong;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A={:.3} M={:.3} (n={})", self.accuracy(), self.miss_rate(), self.total())
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("correct", self.correct.to_json()),
            ("missed", self.missed.to_json()),
            ("wrong", self.wrong.to_json()),
        ])
    }
}

impl FromJson for Metrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Metrics {
            correct: json.field_as("correct")?,
            missed: json.field_as("missed")?,
            wrong: json.field_as("wrong")?,
        })
    }
}

/// Outcome of one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Parsed answer matched the gold answer.
    Correct,
    /// Explicit abstention.
    Missed,
    /// Anything else.
    Wrong,
}

taxoglimpse_json::unit_enum_json!(Outcome { Correct, Missed, Wrong });

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let m = Metrics { correct: 80, missed: 5, wrong: 15 };
        assert_eq!(m.total(), 100);
        assert!((m.accuracy() - 0.80).abs() < 1e-12);
        assert!((m.miss_rate() - 0.05).abs() < 1e-12);
        assert!((m.conditional_accuracy() - 80.0 / 95.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.conditional_accuracy(), 0.0);
    }

    #[test]
    fn record_and_accumulate() {
        let mut m = Metrics::default();
        m.record(Outcome::Correct);
        m.record(Outcome::Missed);
        m.record(Outcome::Wrong);
        m.record(Outcome::Correct);
        assert_eq!(m, Metrics { correct: 2, missed: 1, wrong: 1 });

        let mut total = Metrics::default();
        total += m;
        total += m;
        assert_eq!(total.total(), 8);
        assert_eq!(total.correct, 4);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics { correct: 1, missed: 0, wrong: 1 };
        assert_eq!(m.to_string(), "A=0.500 M=0.000 (n=2)");
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate and stays in [0, 1].
        for (s, n) in [(0usize, 10usize), (5, 10), (10, 10), (80, 100), (384, 385)] {
            let (lo, hi) = wilson_ci(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{s}/{n}: [{lo}, {hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        // Shrinks with n.
        let (lo_small, hi_small) = wilson_ci(8, 10, 1.96);
        let (lo_big, hi_big) = wilson_ci(800, 1000, 1.96);
        assert!(hi_big - lo_big < hi_small - lo_small);
        // Empty set is the trivial interval.
        assert_eq!(wilson_ci(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn metrics_expose_cis() {
        let m = Metrics { correct: 90, missed: 5, wrong: 5 };
        let (lo, hi) = m.accuracy_ci95();
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(hi - lo < 0.15);
        let (mlo, mhi) = m.miss_ci95();
        assert!(mlo < 0.05 && 0.05 < mhi);
    }

    /// A Cochran-sized sample (385) gives the ±5% margin the paper's
    /// sampling is designed for.
    #[test]
    fn cochran_sample_yields_five_point_margin() {
        let (lo, hi) = wilson_ci(193, 385, 1.96); // p ≈ 0.5, worst case
        assert!((hi - lo) / 2.0 < 0.052, "half-width {}", (hi - lo) / 2.0);
    }
}
