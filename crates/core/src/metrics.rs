//! Evaluation metrics (§3.3): accuracy *A* and miss rate *M*.
//!
//! *A* = correct answers / all questions; *M* = "I don't know" answers /
//! all questions. A good model has high *A* with low *M*. Unparseable
//! responses count as wrong answers, not misses.

use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};
use std::ops::AddAssign;

/// Aggregated outcome counts plus the derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Questions answered correctly.
    pub correct: usize,
    /// Questions answered "I don't know".
    pub missed: usize,
    /// Questions answered incorrectly (including unparseable output).
    pub wrong: usize,
    /// Questions whose model call failed even after retries — no answer
    /// was ever scored. Distinct from `missed`: a miss is the model
    /// declining to answer; a failure is the serving layer never
    /// delivering one.
    pub failed: usize,
}

impl Metrics {
    /// Total questions seen (failed deliveries included).
    pub fn total(&self) -> usize {
        self.correct + self.missed + self.wrong + self.failed
    }

    /// Availability: the fraction of questions that got *any* answer
    /// (1 − failed/total; 1 for an empty set, matching a fault-free
    /// default).
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            1.0 - self.failed as f64 / total as f64
        }
    }

    /// Accuracy *A*: correct / total (0 for an empty set).
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.total())
    }

    /// Miss rate *M*: misses / total (0 for an empty set).
    pub fn miss_rate(&self) -> f64 {
        ratio(self.missed, self.total())
    }

    /// Accuracy among answered (non-missed) questions; the conditional
    /// quantity the knowledge models are calibrated in.
    pub fn conditional_accuracy(&self) -> f64 {
        ratio(self.correct, self.correct + self.wrong)
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Correct => self.correct += 1,
            Outcome::Missed => self.missed += 1,
            Outcome::Wrong => self.wrong += 1,
            Outcome::Failed => self.failed += 1,
        }
    }

    /// 95% Wilson score interval for the accuracy — the right interval
    /// for proportions at the benchmark's sample sizes (a few hundred
    /// questions per level), where the normal approximation misbehaves
    /// near 0 and 1. Returns `(low, high)`; `(0, 1)` for an empty set.
    pub fn accuracy_ci95(&self) -> (f64, f64) {
        wilson_ci(self.correct, self.total(), 1.959_963_985)
    }

    /// 95% Wilson interval for the miss rate.
    pub fn miss_ci95(&self) -> (f64, f64) {
        wilson_ci(self.missed, self.total(), 1.959_963_985)
    }
}

/// Wilson score interval for `successes / trials` at z-score `z`.
pub fn wilson_ci(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.correct += rhs.correct;
        self.missed += rhs.missed;
        self.wrong += rhs.wrong;
        self.failed += rhs.failed;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A={:.3} M={:.3} (n={})", self.accuracy(), self.miss_rate(), self.total())?;
        if self.failed > 0 {
            write!(f, " F={}", self.failed)?;
        }
        Ok(())
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("correct", self.correct.to_json()),
            ("missed", self.missed.to_json()),
            ("wrong", self.wrong.to_json()),
        ];
        // `failed` is serialized only when non-zero: fault-free runs
        // must stay byte-identical to the pinned pre-resilience digests.
        if self.failed > 0 {
            fields.push(("failed", self.failed.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for Metrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Metrics {
            correct: json.field_as("correct")?,
            missed: json.field_as("missed")?,
            wrong: json.field_as("wrong")?,
            failed: match json.get("failed") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
        })
    }
}

/// Outcome of one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Parsed answer matched the gold answer.
    Correct,
    /// Explicit abstention.
    Missed,
    /// Anything else that was actually answered.
    Wrong,
    /// The model call failed (after any retries); nothing to score.
    Failed,
}

taxoglimpse_json::unit_enum_json!(Outcome { Correct, Missed, Wrong, Failed });

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let m = Metrics { correct: 80, missed: 5, wrong: 15, failed: 0 };
        assert_eq!(m.total(), 100);
        assert!((m.accuracy() - 0.80).abs() < 1e-12);
        assert!((m.miss_rate() - 0.05).abs() < 1e-12);
        assert!((m.conditional_accuracy() - 80.0 / 95.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.conditional_accuracy(), 0.0);
    }

    #[test]
    fn record_and_accumulate() {
        let mut m = Metrics::default();
        m.record(Outcome::Correct);
        m.record(Outcome::Missed);
        m.record(Outcome::Wrong);
        m.record(Outcome::Correct);
        assert_eq!(m, Metrics { correct: 2, missed: 1, wrong: 1, failed: 0 });

        let mut total = Metrics::default();
        total += m;
        total += m;
        assert_eq!(total.total(), 8);
        assert_eq!(total.correct, 4);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics { correct: 1, missed: 0, wrong: 1, failed: 0 };
        assert_eq!(m.to_string(), "A=0.500 M=0.000 (n=2)");
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate and stays in [0, 1].
        for (s, n) in [(0usize, 10usize), (5, 10), (10, 10), (80, 100), (384, 385)] {
            let (lo, hi) = wilson_ci(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{s}/{n}: [{lo}, {hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        // Shrinks with n.
        let (lo_small, hi_small) = wilson_ci(8, 10, 1.96);
        let (lo_big, hi_big) = wilson_ci(800, 1000, 1.96);
        assert!(hi_big - lo_big < hi_small - lo_small);
        // Empty set is the trivial interval.
        assert_eq!(wilson_ci(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn metrics_expose_cis() {
        let m = Metrics { correct: 90, missed: 5, wrong: 5, failed: 0 };
        let (lo, hi) = m.accuracy_ci95();
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(hi - lo < 0.15);
        let (mlo, mhi) = m.miss_ci95();
        assert!(mlo < 0.05 && 0.05 < mhi);
    }

    #[test]
    fn failed_counts_feed_availability() {
        let mut m = Metrics { correct: 6, missed: 1, wrong: 1, failed: 0 };
        m.record(Outcome::Failed);
        m.record(Outcome::Failed);
        assert_eq!(m.failed, 2);
        assert_eq!(m.total(), 10);
        assert!((m.availability() - 0.8).abs() < 1e-12);
        // Failures drag accuracy down: they are part of the denominator.
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert_eq!(Metrics::default().availability(), 1.0);
        assert_eq!(m.to_string(), "A=0.600 M=0.100 (n=10) F=2");
    }

    #[test]
    fn failed_field_serializes_only_when_nonzero() {
        use taxoglimpse_json::{from_str, to_string};
        let clean = Metrics { correct: 1, missed: 2, wrong: 3, failed: 0 };
        let clean_json = to_string(&clean).expect("metrics serialize to json");
        assert_eq!(clean_json, r#"{"correct":1,"missed":2,"wrong":3}"#);
        assert_eq!(from_str::<Metrics>(&clean_json).expect("clean metrics parse back"), clean);

        let faulty = Metrics { correct: 1, missed: 2, wrong: 3, failed: 4 };
        let faulty_json = to_string(&faulty).expect("metrics serialize to json");
        assert_eq!(faulty_json, r#"{"correct":1,"missed":2,"wrong":3,"failed":4}"#);
        assert_eq!(from_str::<Metrics>(&faulty_json).expect("faulty metrics parse back"), faulty);
    }

    /// A Cochran-sized sample (385) gives the ±5% margin the paper's
    /// sampling is designed for.
    #[test]
    fn cochran_sample_yields_five_point_margin() {
        let (lo, hi) = wilson_ci(193, 385, 1.96); // p ≈ 0.5, worst case
        assert!((hi - lo) / 2.0 < 0.052, "half-width {}", (hi - lo) / 2.0);
    }
}
