//! The LLM-tree-structure-combined taxonomy the paper proposes (§5.1):
//! entities near the roots stay in an explicit, exact tree; entities
//! below a cutoff live implicitly in a language model.
//!
//! [`HybridTaxonomy`] answers Is-A queries by routing: if both concepts
//! resolve in the explicit tree the answer is structural (exact); as
//! soon as one side is unknown, the query goes to the attached model.
//! [`HybridTaxonomy::reliability`] measures the per-level accuracy of
//! the combined system against a full reference taxonomy, and
//! [`recommended_cutoff`] picks the deepest replacement that still meets
//! an accuracy target — turning the paper's qualitative advice ("common
//! domains can move into the LLM, specialized ones should stay trees")
//! into a measurable decision procedure.

use crate::dataset::{DatasetBuilder, QuestionDataset};
use crate::domain::TaxonomyKind;
use crate::eval::{Evaluator, LevelMetrics};
use crate::model::{LanguageModel, Query};
use crate::parse::{parse_tf, ParsedAnswer};
use crate::prompts::PromptSetting;
use crate::question::{Question, QuestionBody};
use crate::templates::{render_question, TemplateVariant};
use taxoglimpse_taxonomy::{NameIndex, NodeId, Taxonomy};

/// Outcome of a hybrid Is-A query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsA {
    /// The relation holds.
    Yes,
    /// The relation does not hold.
    No,
    /// The model abstained (tree queries never do).
    Unknown,
}

/// Which component answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsweredBy {
    /// Resolved structurally in the explicit tree.
    Tree,
    /// Resolved by the language model.
    Model,
}

/// A combined explicit-tree + LLM taxonomy.
pub struct HybridTaxonomy {
    kind: TaxonomyKind,
    explicit: Taxonomy,
    index: NameIndex,
    cutoff: usize,
    original_len: usize,
}

impl HybridTaxonomy {
    /// Build from a full taxonomy by keeping levels `0..cutoff` explicit
    /// and delegating everything deeper to the model at query time.
    pub fn build(full: &Taxonomy, kind: TaxonomyKind, cutoff: usize) -> Self {
        let explicit = full.truncate_below(cutoff).taxonomy;
        let index = explicit.name_index();
        HybridTaxonomy { kind, explicit, index, cutoff, original_len: full.len() }
    }

    /// The explicit (kept) tree.
    pub fn explicit(&self) -> &Taxonomy {
        &self.explicit
    }

    /// The replacement cutoff level.
    pub fn cutoff(&self) -> usize {
        self.cutoff
    }

    /// Fraction of the original taxonomy no longer maintained by hand —
    /// the paper's cost-saving figure (59% for Amazon at cutoff 4).
    pub fn cost_saving(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            (self.original_len - self.explicit.len()) as f64 / self.original_len as f64
        }
    }

    /// Answer "is `child` a type of `ancestor`?".
    ///
    /// Uses the tree when both names resolve uniquely in the explicit
    /// part, the model otherwise.
    pub fn is_a(&self, child: &str, ancestor: &str, model: &dyn LanguageModel) -> (IsA, AnsweredBy) {
        if let (Some(c), Some(a)) = (self.index.lookup_unique(child), self.index.lookup_unique(ancestor)) {
            let holds = self.explicit.is_ancestor(a, c);
            return (if holds { IsA::Yes } else { IsA::No }, AnsweredBy::Tree);
        }
        let question = self.model_question(child, ancestor);
        let prompt = render_question(&question, TemplateVariant::Canonical);
        let query = Query::new(&prompt, &question, PromptSetting::ZeroShot);
        // A failed delivery degrades to Unknown — the same epistemic
        // state as an abstention for the router.
        let verdict = match model.answer(&query) {
            Ok(response) => match parse_tf(&response.text) {
                ParsedAnswer::Yes => IsA::Yes,
                ParsedAnswer::No => IsA::No,
                ParsedAnswer::IDontKnow | ParsedAnswer::Option(_) | ParsedAnswer::Unparsed => {
                    IsA::Unknown
                }
            },
            Err(_) => IsA::Unknown,
        };
        (verdict, AnsweredBy::Model)
    }

    /// Route an arbitrary (possibly removed) concept name to its most
    /// plausible kept category: shortlist kept nodes at the deepest
    /// explicit level by trigram overlap, then let the model pick among
    /// the top candidates via Yes/No probes.
    pub fn route(&self, concept: &str, model: &dyn LanguageModel) -> Option<NodeId> {
        // Exact hit first.
        if let Some(node) = self.index.lookup_unique(concept) {
            return Some(node);
        }
        let deepest = self.explicit.num_levels().checked_sub(1)?;
        let candidates = self.explicit.nodes_at_level(deepest);
        let mut scored: Vec<(NodeId, f64)> = candidates
            .iter()
            .map(|&n| (n, name_overlap(concept, self.explicit.name(n))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        // Probe the model over the shortlist; first Yes wins, otherwise
        // fall back to the best lexical match.
        for &(node, _) in scored.iter().take(4) {
            let (verdict, _) = self.is_a_via_model(concept, self.explicit.name(node), model);
            if verdict == IsA::Yes {
                return Some(node);
            }
        }
        scored.first().map(|&(n, _)| n)
    }

    fn is_a_via_model(&self, child: &str, ancestor: &str, model: &dyn LanguageModel) -> (IsA, AnsweredBy) {
        let question = self.model_question(child, ancestor);
        let prompt = render_question(&question, TemplateVariant::Canonical);
        let query = Query::new(&prompt, &question, PromptSetting::ZeroShot);
        // A failed delivery degrades to Unknown — the same epistemic
        // state as an abstention for the router.
        let verdict = match model.answer(&query) {
            Ok(response) => match parse_tf(&response.text) {
                ParsedAnswer::Yes => IsA::Yes,
                ParsedAnswer::No => IsA::No,
                ParsedAnswer::IDontKnow | ParsedAnswer::Option(_) | ParsedAnswer::Unparsed => {
                    IsA::Unknown
                }
            },
            Err(_) => IsA::Unknown,
        };
        (verdict, AnsweredBy::Model)
    }

    fn model_question(&self, child: &str, ancestor: &str) -> Question {
        // The model side only kicks in for below-cutoff entities, so the
        // effective depth is the cutoff boundary.
        let child_level = self.cutoff.max(1);
        Question {
            id: 0,
            taxonomy: self.kind,
            child: child.to_owned(),
            child_level,
            parent_level: child_level - 1,
            true_parent: ancestor.to_owned(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: ancestor.to_owned(),
                expected_yes: true, // unknown at query time; irrelevant to the model
                negative: None,
            },
        }
    }

    /// Measure the hybrid's per-level Is-A reliability against the full
    /// reference taxonomy: levels kept explicit score 1.0 by
    /// construction; replaced levels score the model's measured accuracy
    /// on that level's hard questions.
    pub fn reliability(
        &self,
        full: &Taxonomy,
        model: &dyn LanguageModel,
        seed: u64,
        cap: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let builder = DatasetBuilder::new(full, self.kind, seed).sample_cap(cap);
        let evaluator = Evaluator::default();
        let mut out = Vec::with_capacity(full.num_levels().saturating_sub(1));
        for child_level in 1..full.num_levels() {
            if child_level < self.cutoff {
                out.push((child_level, 1.0));
            } else {
                let slice = builder.build_level(QuestionDataset::Hard, child_level);
                let mut metrics = crate::metrics::Metrics::default();
                for q in &slice.questions {
                    metrics.record(evaluator.ask(model, q, &slice.exemplars));
                }
                out.push((
                    child_level,
                    LevelMetrics { child_level, metrics }.metrics.accuracy(),
                ));
            }
        }
        out
    }
}

/// Pick the deepest cutoff whose replaced levels all meet
/// `target_accuracy` for `model`, or `None` if even replacing only the
/// leaf level falls short. Cutoff `num_levels` means "replace nothing".
pub fn recommended_cutoff(
    full: &Taxonomy,
    kind: TaxonomyKind,
    model: &dyn LanguageModel,
    target_accuracy: f64,
    seed: u64,
    cap: Option<usize>,
) -> Option<usize> {
    let builder = DatasetBuilder::new(full, kind, seed).sample_cap(cap);
    let evaluator = Evaluator::default();
    // Per-level model accuracy, measured once.
    let mut level_acc = Vec::new();
    for child_level in 1..full.num_levels() {
        let slice = builder.build_level(QuestionDataset::Hard, child_level);
        let mut metrics = crate::metrics::Metrics::default();
        for q in &slice.questions {
            metrics.record(evaluator.ask(model, q, &slice.exemplars));
        }
        level_acc.push(metrics.accuracy());
    }
    // The deepest cutoff c such that every level >= c meets the target.
    let mut cutoff = None;
    for c in (1..full.num_levels()).rev() {
        let ok = level_acc[c - 1..].iter().all(|&a| a >= target_accuracy);
        if ok {
            cutoff = Some(c);
        } else {
            break;
        }
    }
    cutoff
}

/// Word-level overlap score used for routing shortlists.
fn name_overlap(a: &str, b: &str) -> f64 {
    let aw: Vec<String> = a.split(' ').map(|w| w.to_ascii_lowercase()).collect();
    let bw: Vec<String> = b.split(' ').map(|w| w.to_ascii_lowercase()).collect();
    if aw.is_empty() || bw.is_empty() {
        return 0.0;
    }
    let shared = aw.iter().filter(|w| bw.contains(w)).count();
    shared as f64 / aw.len().max(bw.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FixedAnswerModel, ModelError, Response};
    use taxoglimpse_synth::{generate, GenOptions};

    fn amazon() -> Taxonomy {
        generate(TaxonomyKind::Amazon, GenOptions { seed: 6, scale: 0.05 }).unwrap()
    }

    #[test]
    fn tree_queries_are_structural_and_exact() {
        let full = amazon();
        let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 3);
        // Pick a kept chain: root -> level1 with unique names.
        let idx = hybrid.explicit().name_index();
        let kept = hybrid.explicit();
        let (child, parent) = kept
            .nodes_at_level(2)
            .iter()
            .find_map(|&c| {
                let p = kept.parent(c)?;
                (idx.lookup_unique(kept.name(c)).is_some()
                    && idx.lookup_unique(kept.name(p)).is_some())
                .then(|| (kept.name(c).to_owned(), kept.name(p).to_owned()))
            })
            .expect("some unique kept pair exists");
        // Even an always-wrong model cannot corrupt tree answers.
        let liar = FixedAnswerModel::new("liar", "No.");
        let (verdict, by) = hybrid.is_a(&child, &parent, &liar);
        assert_eq!(verdict, IsA::Yes);
        assert_eq!(by, AnsweredBy::Tree);
        let (verdict, by) = hybrid.is_a(&parent, &child, &liar);
        assert_eq!(verdict, IsA::No, "reversed relation");
        assert_eq!(by, AnsweredBy::Tree);
    }

    #[test]
    fn removed_entities_fall_through_to_the_model() {
        let full = amazon();
        let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 2);
        let removed = full.nodes_at_level(3)[0];
        let ancestor = full.root_of(removed);
        let yes_man = FixedAnswerModel::always_yes();
        let (verdict, by) =
            hybrid.is_a(full.name(removed), full.name(ancestor), &yes_man);
        assert_eq!(by, AnsweredBy::Model);
        assert_eq!(verdict, IsA::Yes);
        let idk = FixedAnswerModel::always_idk();
        let (verdict, _) = hybrid.is_a(full.name(removed), full.name(ancestor), &idk);
        assert_eq!(verdict, IsA::Unknown);
    }

    #[test]
    fn cost_saving_matches_truncation() {
        let full = amazon();
        let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 3);
        let expected = (full.len() - hybrid.explicit().len()) as f64 / full.len() as f64;
        assert!((hybrid.cost_saving() - expected).abs() < 1e-12);
        assert!(hybrid.cost_saving() > 0.3);
    }

    #[test]
    fn routing_prefers_exact_then_lexical() {
        let full = amazon();
        let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 3);
        let kept = hybrid.explicit();
        // Exact name routes to itself.
        let some_kept = kept.nodes_at_level(2)[0];
        if let Some(unique) = kept.name_index().lookup_unique(kept.name(some_kept)) {
            let routed = hybrid.route(kept.name(some_kept), &FixedAnswerModel::new("no", "No."));
            assert_eq!(routed, Some(unique));
        }
        // A removed concept still routes somewhere.
        let removed = full.nodes_at_level(3)[0];
        let routed = hybrid.route(full.name(removed), &FixedAnswerModel::always_yes());
        assert!(routed.is_some());
        assert_eq!(kept.level(routed.unwrap()), kept.num_levels() - 1);
    }

    #[test]
    fn reliability_is_exact_above_cutoff() {
        let full = amazon();
        let hybrid = HybridTaxonomy::build(&full, TaxonomyKind::Amazon, 3);
        let reliability = hybrid.reliability(&full, &FixedAnswerModel::always_idk(), 1, Some(10));
        assert_eq!(reliability.len(), full.num_levels() - 1);
        for &(level, acc) in &reliability {
            if level < 3 {
                assert_eq!(acc, 1.0, "kept level {level}");
            } else {
                assert_eq!(acc, 0.0, "abstaining model on replaced level {level}");
            }
        }
    }

    #[test]
    fn recommended_cutoff_honours_the_target() {
        let full = amazon();
        // A perfect oracle justifies replacing everything from level 1.
        let oracle = OracleModel;
        let cutoff = recommended_cutoff(&full, TaxonomyKind::Amazon, &oracle, 0.95, 1, Some(10));
        assert_eq!(cutoff, Some(1));
        // An abstaining model justifies nothing.
        let idk = FixedAnswerModel::always_idk();
        let none = recommended_cutoff(&full, TaxonomyKind::Amazon, &idk, 0.5, 1, Some(10));
        assert_eq!(none, None);
    }

    /// A model that always answers correctly (reads the gold label).
    struct OracleModel;

    impl LanguageModel for OracleModel {
        fn name(&self) -> &str {
            "oracle"
        }

        fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
            Ok(Response::new(match query.question.gold() {
                crate::question::GoldAnswer::Yes => "Yes.".to_owned(),
                crate::question::GoldAnswer::No => "No.".to_owned(),
                crate::question::GoldAnswer::Option(i) => format!("{})", (b'A' + i) as char),
                crate::question::GoldAnswer::Abstain => "None of the above.".to_owned(),
            }))
        }
    }

    #[test]
    fn name_overlap_scores() {
        assert_eq!(name_overlap("wireless speakers", "wireless speakers"), 1.0);
        assert!(name_overlap("wireless speakers", "compact speakers") > 0.0);
        assert_eq!(name_overlap("pencil", "garden hose"), 0.0);
    }
}
