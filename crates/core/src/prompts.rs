//! Prompting settings (§4.4, Figure 5): zero-shot, few-shot (five
//! exemplars with balanced Yes/No), and Chain-of-Thoughts ("Let's think
//! step by step.").

use crate::question::{GoldAnswer, Question};
use crate::templates::{render_question, TemplateVariant};
use std::fmt;

/// The three prompting settings evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromptSetting {
    /// Ask the question directly.
    #[default]
    ZeroShot,
    /// Prepend five exemplar question/answer pairs (Figure 5, top).
    FewShot,
    /// Append "Let's think step by step." (Figure 5, bottom).
    ChainOfThought,
}

taxoglimpse_json::unit_enum_json!(PromptSetting { ZeroShot, FewShot, ChainOfThought });

impl PromptSetting {
    /// All three settings.
    pub const ALL: [PromptSetting; 3] =
        [PromptSetting::ZeroShot, PromptSetting::FewShot, PromptSetting::ChainOfThought];

    /// Number of exemplars used by [`PromptSetting::FewShot`].
    pub const SHOTS: usize = 5;
}

impl fmt::Display for PromptSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PromptSetting::ZeroShot => "zero-shot",
            PromptSetting::FewShot => "few-shot",
            PromptSetting::ChainOfThought => "CoT",
        })
    }
}

/// Render a gold answer the way the exemplar block of Figure 5 does.
pub fn render_gold(gold: GoldAnswer) -> String {
    match gold {
        GoldAnswer::Yes => "Yes.".to_owned(),
        GoldAnswer::No => "No.".to_owned(),
        GoldAnswer::Option(i) => format!("{})", (b'A' + i) as char),
    }
}

/// Render the full prompt for `question` under `setting`, drawing up to
/// [`PromptSetting::SHOTS`] few-shot exemplars from `exemplars`.
pub fn render_prompt(
    question: &Question,
    setting: PromptSetting,
    variant: TemplateVariant,
    exemplars: &[Question],
) -> String {
    render_prompt_n(question, setting, variant, exemplars, PromptSetting::SHOTS)
}

/// Like [`render_prompt`] with an explicit few-shot exemplar count
/// (used by shot-count sweeps; ignored outside the few-shot setting).
pub fn render_prompt_n(
    question: &Question,
    setting: PromptSetting,
    variant: TemplateVariant,
    exemplars: &[Question],
    shots: usize,
) -> String {
    let body = render_question(question, variant);
    match setting {
        PromptSetting::ZeroShot => body,
        PromptSetting::ChainOfThought => format!("{body} Let's think step by step."),
        PromptSetting::FewShot => {
            let mut out = String::with_capacity(body.len() * (shots + 1));
            for e in exemplars.iter().take(shots) {
                out.push_str("Example: ");
                out.push_str(&render_question(e, variant));
                out.push(' ');
                out.push_str(&render_gold(e.gold()));
                out.push('\n');
            }
            out.push_str(&body);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::question::QuestionBody;

    fn q(child: &str, candidate: &str, yes: bool) -> Question {
        Question {
            id: 0,
            taxonomy: TaxonomyKind::Ncbi,
            child: child.into(),
            child_level: 6,
            parent_level: 5,
            true_parent: "Verbascum".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: candidate.into(),
                expected_yes: yes,
                negative: None,
            },
        }
    }

    #[test]
    fn zero_shot_is_just_the_question() {
        let p = render_prompt(&q("Verbascum chaixii", "Verbascum", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &[]);
        assert_eq!(p, "Is Verbascum chaixii a type of Verbascum? answer with (Yes/No/I don't know)");
    }

    #[test]
    fn cot_appends_the_figure_5_suffix() {
        let p = render_prompt(&q("a", "b", true), PromptSetting::ChainOfThought, TemplateVariant::Canonical, &[]);
        assert!(p.ends_with("Let's think step by step."));
    }

    #[test]
    fn few_shot_prepends_up_to_five_examples() {
        let exemplars: Vec<Question> = (0..8)
            .map(|i| q(&format!("c{i}"), &format!("p{i}"), i % 2 == 0))
            .collect();
        let p = render_prompt(&q("x", "y", true), PromptSetting::FewShot, TemplateVariant::Canonical, &exemplars);
        assert_eq!(p.matches("Example: ").count(), 5);
        assert!(p.contains("Yes.\n") || p.contains("Yes.\nExample"));
        assert!(p.contains("No."));
        assert!(p.trim_end().ends_with("(Yes/No/I don't know)"));
        // The target question comes last, unprefixed.
        assert!(p.lines().last().unwrap().starts_with("Is x a type of y?"));
    }

    #[test]
    fn few_shot_with_no_exemplars_degenerates_to_zero_shot() {
        let p = render_prompt(&q("x", "y", true), PromptSetting::FewShot, TemplateVariant::Canonical, &[]);
        assert_eq!(p, render_prompt(&q("x", "y", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &[]));
    }

    #[test]
    fn shot_count_is_configurable() {
        let exemplars: Vec<Question> = (0..10)
            .map(|i| q(&format!("c{i}"), &format!("p{i}"), i % 2 == 0))
            .collect();
        for shots in [0usize, 1, 3, 5, 8] {
            let p = render_prompt_n(
                &q("x", "y", true),
                PromptSetting::FewShot,
                TemplateVariant::Canonical,
                &exemplars,
                shots,
            );
            assert_eq!(p.matches("Example: ").count(), shots, "shots = {shots}");
        }
        // Shot count is irrelevant outside few-shot.
        let z = render_prompt_n(&q("x", "y", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &exemplars, 9);
        assert!(!z.contains("Example"));
    }

    #[test]
    fn gold_rendering() {
        assert_eq!(render_gold(GoldAnswer::Yes), "Yes.");
        assert_eq!(render_gold(GoldAnswer::No), "No.");
        assert_eq!(render_gold(GoldAnswer::Option(0)), "A)");
        assert_eq!(render_gold(GoldAnswer::Option(3)), "D)");
    }
}
