//! Prompting settings (§4.4, Figure 5): zero-shot, few-shot (five
//! exemplars with balanced Yes/No), and Chain-of-Thoughts ("Let's think
//! step by step.").

use crate::question::{GoldAnswer, Question, ABSTAIN_OPTION};
use crate::templates::{render_question_into, TemplateVariant};
use std::fmt;

/// The Chain-of-Thoughts suffix of Figure 5 (bottom).
pub const COT_SUFFIX: &str = " Let's think step by step.";

/// The three prompting settings evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromptSetting {
    /// Ask the question directly.
    #[default]
    ZeroShot,
    /// Prepend five exemplar question/answer pairs (Figure 5, top).
    FewShot,
    /// Append "Let's think step by step." (Figure 5, bottom).
    ChainOfThought,
}

taxoglimpse_json::unit_enum_json!(PromptSetting { ZeroShot, FewShot, ChainOfThought });

impl PromptSetting {
    /// All three settings.
    pub const ALL: [PromptSetting; 3] =
        [PromptSetting::ZeroShot, PromptSetting::FewShot, PromptSetting::ChainOfThought];

    /// Number of exemplars used by [`PromptSetting::FewShot`].
    pub const SHOTS: usize = 5;
}

impl fmt::Display for PromptSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PromptSetting::ZeroShot => "zero-shot",
            PromptSetting::FewShot => "few-shot",
            PromptSetting::ChainOfThought => "CoT",
        })
    }
}

/// Render a gold answer the way the exemplar block of Figure 5 does.
pub fn render_gold(gold: GoldAnswer) -> String {
    let mut out = String::new();
    render_gold_into(gold, &mut out);
    out
}

/// Append a gold answer the way the exemplar block of Figure 5 does.
pub fn render_gold_into(gold: GoldAnswer, out: &mut String) {
    match gold {
        GoldAnswer::Yes => out.push_str("Yes."),
        GoldAnswer::No => out.push_str("No."),
        GoldAnswer::Option(i) => {
            out.push((b'A' + i) as char);
            out.push(')');
        }
        GoldAnswer::Abstain => {
            out.push_str(ABSTAIN_OPTION);
            out.push('.');
        }
    }
}

/// Render the setting's prompt *prefix* — everything that precedes the
/// target question and is therefore shared by every question asked
/// under the same `(setting, variant, exemplars, shots)`.
///
/// Empty except for few-shot, where it is the exemplar block of
/// Figure 5 (top). The evaluator renders this once per dataset level
/// and reuses it for every question and repeat — the few-shot prefix is
/// ~85% of the prompt bytes, so re-rendering it per question dominated
/// the old prompt-construction cost.
pub fn render_prefix(
    setting: PromptSetting,
    variant: TemplateVariant,
    exemplars: &[Question],
    shots: usize,
) -> String {
    let mut out = String::new();
    if setting != PromptSetting::FewShot {
        return out;
    }
    for (i, e) in exemplars.iter().take(shots).enumerate() {
        if i == 1 {
            // One rendered line is the best capacity estimate for the
            // rest — exemplar lines are near-uniform in length.
            out.reserve(out.len() * (shots.min(exemplars.len()) - 1));
        }
        out.push_str("Example: ");
        render_question_into(e, variant, &mut out);
        out.push(' ');
        render_gold_into(e.gold(), &mut out);
        out.push('\n');
    }
    out
}

/// Render the full prompt for `question` into a reusable buffer, given
/// a prefix from [`render_prefix`] for the same setting and variant.
///
/// Clears `out` first, so a per-worker buffer can be reused across an
/// entire evaluation run without reallocating.
pub fn render_prompt_into(
    question: &Question,
    setting: PromptSetting,
    variant: TemplateVariant,
    prefix: &str,
    out: &mut String,
) {
    out.clear();
    out.push_str(prefix);
    render_question_into(question, variant, out);
    if setting == PromptSetting::ChainOfThought {
        out.push_str(COT_SUFFIX);
    }
}

/// Render the full prompt for `question` under `setting`, drawing up to
/// [`PromptSetting::SHOTS`] few-shot exemplars from `exemplars`.
pub fn render_prompt(
    question: &Question,
    setting: PromptSetting,
    variant: TemplateVariant,
    exemplars: &[Question],
) -> String {
    render_prompt_n(question, setting, variant, exemplars, PromptSetting::SHOTS)
}

/// Like [`render_prompt`] with an explicit few-shot exemplar count
/// (used by shot-count sweeps; ignored outside the few-shot setting).
pub fn render_prompt_n(
    question: &Question,
    setting: PromptSetting,
    variant: TemplateVariant,
    exemplars: &[Question],
    shots: usize,
) -> String {
    // Delegating through render_prefix also fixes the old capacity
    // estimate, which ignored the "Example: " prefixes and gold answers
    // and guaranteed mid-build reallocation.
    let mut out = render_prefix(setting, variant, exemplars, shots);
    render_question_into(question, variant, &mut out);
    if setting == PromptSetting::ChainOfThought {
        out.push_str(COT_SUFFIX);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::question::QuestionBody;

    fn q(child: &str, candidate: &str, yes: bool) -> Question {
        Question {
            id: 0,
            taxonomy: TaxonomyKind::Ncbi,
            child: child.into(),
            child_level: 6,
            parent_level: 5,
            true_parent: "Verbascum".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: candidate.into(),
                expected_yes: yes,
                negative: None,
            },
        }
    }

    #[test]
    fn zero_shot_is_just_the_question() {
        let p = render_prompt(&q("Verbascum chaixii", "Verbascum", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &[]);
        assert_eq!(p, "Is Verbascum chaixii a type of Verbascum? answer with (Yes/No/I don't know)");
    }

    #[test]
    fn cot_appends_the_figure_5_suffix() {
        let p = render_prompt(&q("a", "b", true), PromptSetting::ChainOfThought, TemplateVariant::Canonical, &[]);
        assert!(p.ends_with("Let's think step by step."));
    }

    #[test]
    fn few_shot_prepends_up_to_five_examples() {
        let exemplars: Vec<Question> = (0..8)
            .map(|i| q(&format!("c{i}"), &format!("p{i}"), i % 2 == 0))
            .collect();
        let p = render_prompt(&q("x", "y", true), PromptSetting::FewShot, TemplateVariant::Canonical, &exemplars);
        assert_eq!(p.matches("Example: ").count(), 5);
        assert!(p.contains("Yes.\n") || p.contains("Yes.\nExample"));
        assert!(p.contains("No."));
        assert!(p.trim_end().ends_with("(Yes/No/I don't know)"));
        // The target question comes last, unprefixed.
        assert!(p.lines().last().unwrap().starts_with("Is x a type of y?"));
    }

    #[test]
    fn few_shot_with_no_exemplars_degenerates_to_zero_shot() {
        let p = render_prompt(&q("x", "y", true), PromptSetting::FewShot, TemplateVariant::Canonical, &[]);
        assert_eq!(p, render_prompt(&q("x", "y", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &[]));
    }

    #[test]
    fn shot_count_is_configurable() {
        let exemplars: Vec<Question> = (0..10)
            .map(|i| q(&format!("c{i}"), &format!("p{i}"), i % 2 == 0))
            .collect();
        for shots in [0usize, 1, 3, 5, 8] {
            let p = render_prompt_n(
                &q("x", "y", true),
                PromptSetting::FewShot,
                TemplateVariant::Canonical,
                &exemplars,
                shots,
            );
            assert_eq!(p.matches("Example: ").count(), shots, "shots = {shots}");
        }
        // Shot count is irrelevant outside few-shot.
        let z = render_prompt_n(&q("x", "y", true), PromptSetting::ZeroShot, TemplateVariant::Canonical, &exemplars, 9);
        assert!(!z.contains("Example"));
    }

    #[test]
    fn gold_rendering() {
        assert_eq!(render_gold(GoldAnswer::Yes), "Yes.");
        assert_eq!(render_gold(GoldAnswer::No), "No.");
        assert_eq!(render_gold(GoldAnswer::Option(0)), "A)");
        assert_eq!(render_gold(GoldAnswer::Option(3)), "D)");
        assert_eq!(render_gold(GoldAnswer::Abstain), "None of the above.");
    }
}
