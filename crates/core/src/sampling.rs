//! Sample-size computation (§2.2 "Question Generation").
//!
//! The paper samples entities from each taxonomy level "with a confidence
//! level of 95% and a margin of error of 5%" (via the Qualtrics
//! calculator). That is Cochran's formula with finite-population
//! correction:
//!
//! ```text
//! n0 = z² · p(1-p) / e²          (z = 1.96, p = 0.5, e = 0.05 → 384.16)
//! n  = n0 / (1 + (n0 - 1) / N)
//! ```
//!
//! For large levels this saturates at 384–385 samples; for small levels
//! it approaches the population size.

/// z-score for 95% confidence.
pub const Z_95: f64 = 1.959_963_985;
/// Default margin of error.
pub const MARGIN_5PCT: f64 = 0.05;

/// Cochran's n₀ (infinite population) for the given z and margin at
/// maximum variance (p = 0.5).
pub fn cochran_infinite(z: f64, margin: f64) -> f64 {
    z * z * 0.25 / (margin * margin)
}

/// Finite-population-corrected sample size for a population of `n`
/// entities at 95% confidence / 5% margin, rounded up.
///
/// Returns `n` itself for tiny populations (never more than the
/// population).
pub fn cochran_sample_size(population: usize) -> usize {
    cochran_sample_size_with(population, Z_95, MARGIN_5PCT)
}

/// Inverse planning: the sample size needed so a measured proportion's
/// 95% margin of error is at most `margin` (infinite population,
/// worst-case p = 0.5). Industrial users certifying a model at ±2%
/// need `required_sample_size(0.02)` = 2401 questions.
pub fn required_sample_size(margin: f64) -> usize {
    assert!(margin > 0.0 && margin < 1.0, "margin must be in (0, 1)");
    cochran_infinite(Z_95, margin).ceil() as usize
}

/// Like [`cochran_sample_size`] with explicit z and margin.
pub fn cochran_sample_size_with(population: usize, z: f64, margin: f64) -> usize {
    if population == 0 {
        return 0;
    }
    let n0 = cochran_infinite(z, margin);
    let n = n0 / (1.0 + (n0 - 1.0) / population as f64);
    (n.ceil() as usize).min(population)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_population_constant() {
        let n0 = cochran_infinite(Z_95, MARGIN_5PCT);
        assert!((n0 - 384.15).abs() < 0.1, "n0 = {n0}");
    }

    #[test]
    fn saturates_for_large_populations() {
        assert_eq!(cochran_sample_size(2_069_560), 385); // NCBI species level
        assert_eq!(cochran_sample_size(1_000_000), 384);
        assert_eq!(cochran_sample_size(100_000), 383);
    }

    /// Reproduce the per-level MCQ sample sizes of the paper's Table 4
    /// (MCQ count = the sample size; easy/hard = 2× it). The paper used
    /// the Qualtrics calculator, which rounds slightly differently for
    /// very small populations, so we allow ±3.
    #[test]
    fn reproduces_table_4_sample_sizes() {
        let cases: &[(usize, usize)] = &[
            // (population = level size, paper sample = MCQ count)
            (712, 250),    // Glottolog level 1
            (309, 172),    // NCBI level 1
            (507, 219),    // Amazon level 1
            (680, 246),    // GeoNames level 1
            (1854, 319),   // OAE level 1
            (3910, 350),   // Amazon level 2
            (110, 88),     // eBay level 1 (paper: 88)
            (2069560, 385),// NCBI species level (paper: 385)
            (7393, 366),   // Glottolog leaf level (paper: 366)
            (1349, 300),   // Google level 2
        ];
        for &(population, paper) in cases {
            let ours = cochran_sample_size(population);
            let diff = ours.abs_diff(paper);
            assert!(diff <= 3, "population {population}: ours {ours} vs paper {paper}");
        }
    }

    #[test]
    fn tiny_populations_clamp() {
        assert_eq!(cochran_sample_size(0), 0);
        assert_eq!(cochran_sample_size(1), 1);
        assert_eq!(cochran_sample_size(10), 10);
        assert_eq!(cochran_sample_size(30), 28);
    }

    #[test]
    fn monotone_in_population() {
        let mut prev = 0;
        for p in [1usize, 5, 10, 50, 100, 500, 1_000, 10_000, 100_000, 1_000_000] {
            let n = cochran_sample_size(p);
            assert!(n >= prev, "not monotone at {p}");
            prev = n;
        }
    }

    #[test]
    fn never_exceeds_population() {
        for p in 0..200 {
            assert!(cochran_sample_size(p) <= p);
        }
    }

    #[test]
    fn required_sample_size_planning() {
        assert_eq!(required_sample_size(0.05), 385);
        assert_eq!(required_sample_size(0.02), 2401);
        assert!(required_sample_size(0.01) > 9000);
    }

    #[test]
    #[should_panic(expected = "margin must be in (0, 1)")]
    fn required_sample_size_rejects_zero_margin() {
        required_sample_size(0.0);
    }

    #[test]
    fn wider_margin_needs_fewer_samples() {
        let tight = cochran_sample_size_with(10_000, Z_95, 0.03);
        let loose = cochran_sample_size_with(10_000, Z_95, 0.10);
        assert!(tight > loose);
    }
}
