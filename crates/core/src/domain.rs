//! Taxonomy kinds and domains.
//!
//! The canonical definitions live in `taxoglimpse-synth` (the lowest
//! crate that needs them); this module re-exports them so benchmark
//! users only import from `taxoglimpse-core`.

pub use taxoglimpse_synth::kind::{Domain, TaxonomyKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        assert_eq!(TaxonomyKind::ALL.len(), 10);
        assert_eq!(Domain::ALL.len(), 8);
        assert_eq!(TaxonomyKind::Ncbi.domain(), Domain::Biology);
    }
}
