//! Open-loop load generation in virtual time.
//!
//! Every tenant owns two RNG streams forked from the traffic seed by
//! tenant id — one for arrival gaps, one for request content — so a
//! tenant's entire offered load is a pure function of
//! `(seed, tenant)`, and the content of its `k`-th request a pure
//! function of `(seed, tenant, k)` regardless of how other tenants or
//! the serving side behave. Arrivals are *open-loop*: the generator
//! never waits for responses, which is what lets the benchmark drive
//! lanes past saturation and observe queueing and shed behavior.
//!
//! Two arrival processes:
//!
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrival gaps at a
//!   constant rate, the classic open-loop model;
//! * [`ArrivalProcess::Burst`] — an on/off process: Poisson at
//!   `peak_qps` during the first `duty` fraction of every `period_s`,
//!   silent otherwise (mean rate `peak_qps * duty`). Bursts are what
//!   make batch deadlines and admission control earn their keep.
//!
//! Gaps are drawn by inversion (`-ln(1-u)/rate`) from the tenant's
//! arrival stream; no wall clock is involved anywhere (D002).

use taxoglimpse_synth::rng::{fork, Rng, SynthRng};

/// How a tenant's arrivals are spaced in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate in requests per virtual second.
        rate_qps: f64,
    },
    /// On/off bursts: Poisson at `peak_qps` during the first
    /// `duty` fraction of each `period_s` window, silent for the rest.
    Burst {
        /// Arrival rate while the burst is on, in requests per
        /// virtual second.
        peak_qps: f64,
        /// Length of one on/off cycle in virtual seconds.
        period_s: f64,
        /// Fraction of each period the burst is on, in `(0, 1]`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate in requests per virtual second.
    pub fn mean_rate_qps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_qps } => *rate_qps,
            ArrivalProcess::Burst { peak_qps, duty, .. } => peak_qps * duty,
        }
    }
}

/// One tenant of the serving system: an arrival process plus the
/// token-bucket allowance admission control enforces for it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name for reports.
    pub name: String,
    /// Offered-load shape.
    pub process: ArrivalProcess,
    /// Token-bucket refill rate in requests per virtual second.
    pub bucket_rate_qps: f64,
    /// Token-bucket capacity (burst allowance), in requests.
    pub bucket_burst: f64,
}

impl TenantSpec {
    /// A well-behaved Poisson tenant whose bucket (2x its offered rate)
    /// never sheds it.
    pub fn poisson(name: impl Into<String>, rate_qps: f64) -> Self {
        TenantSpec {
            name: name.into(),
            process: ArrivalProcess::Poisson { rate_qps },
            bucket_rate_qps: rate_qps * 2.0,
            bucket_burst: (rate_qps * 0.5).max(16.0),
        }
    }

    /// A bursty tenant with mean rate `peak_qps * duty` and a bucket
    /// sized to admit its bursts.
    pub fn bursty(name: impl Into<String>, peak_qps: f64, period_s: f64, duty: f64) -> Self {
        TenantSpec {
            name: name.into(),
            process: ArrivalProcess::Burst { peak_qps, period_s, duty },
            bucket_rate_qps: peak_qps * duty * 2.0,
            bucket_burst: (peak_qps * period_s * duty).max(16.0),
        }
    }

    /// An abusive tenant: offers `rate_qps` but is only allowed
    /// `allowed_qps` by its bucket, so rate-limit sheds are exercised
    /// at every load level.
    pub fn abusive(name: impl Into<String>, rate_qps: f64, allowed_qps: f64) -> Self {
        TenantSpec {
            name: name.into(),
            process: ArrivalProcess::Poisson { rate_qps },
            bucket_rate_qps: allowed_qps,
            bucket_burst: allowed_qps.max(4.0),
        }
    }
}

/// The full traffic description: seed, horizon, and tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Master seed every tenant stream is forked from.
    pub seed: u64,
    /// Arrivals are generated for `[0, horizon_s)` virtual seconds;
    /// the simulation then drains.
    pub horizon_s: f64,
    /// The tenants, indexed by position (tenant id).
    pub tenants: Vec<TenantSpec>,
}

impl TrafficConfig {
    /// Total long-run offered load across tenants, in requests per
    /// virtual second.
    pub fn offered_qps(&self) -> f64 {
        self.tenants.iter().map(|t| t.process.mean_rate_qps()).sum()
    }

    /// The default mixed fleet used by `bench_serve` and the examples:
    /// six steady Poisson tenants (70% of `total_qps`), one bursty
    /// tenant (20%), and one abusive tenant offering 10% but allowed
    /// only 3%.
    pub fn mixed_fleet(seed: u64, total_qps: f64, horizon_s: f64) -> Self {
        let mut tenants = Vec::new();
        let steady = total_qps * 0.70 / 6.0;
        for i in 0..6u32 {
            tenants.push(TenantSpec::poisson(format!("steady-{i}"), steady));
        }
        tenants.push(TenantSpec::bursty("bursty", total_qps * 0.20 / 0.25, 2.0, 0.25));
        tenants.push(TenantSpec::abusive("abusive", total_qps * 0.10, total_qps * 0.03));
        TrafficConfig { seed, horizon_s, tenants }
    }
}

/// Per-tenant generator state: the two forked streams plus the burst
/// phase bookkeeping.
#[derive(Debug)]
struct TenantSource {
    arrivals: SynthRng,
    content: SynthRng,
}

/// Draws arrival gaps and request contents for every tenant.
#[derive(Debug)]
pub struct TrafficSource {
    sources: Vec<TenantSource>,
    processes: Vec<ArrivalProcess>,
}

/// Exponential gap with mean `1/rate` by inversion. `u` is in
/// `[0, 1)`, so `1 - u` is in `(0, 1]` and the log is finite.
fn exp_gap(u: f64, rate_qps: f64) -> f64 {
    debug_assert!(rate_qps > 0.0);
    -(1.0 - u).ln() / rate_qps
}

impl TrafficSource {
    /// Fork every tenant's streams from the config seed.
    pub fn new(config: &TrafficConfig) -> Self {
        let sources = (0..config.tenants.len() as u64)
            .map(|tenant| TenantSource {
                arrivals: fork(config.seed, "serve-arrivals", tenant),
                content: fork(config.seed, "serve-content", tenant),
            })
            .collect();
        TrafficSource {
            sources,
            processes: config.tenants.iter().map(|t| t.process).collect(),
        }
    }

    /// The arrival time after `now_s` for `tenant`, consuming one gap
    /// from its arrival stream.
    pub fn next_arrival_s(&mut self, tenant: u32, now_s: f64) -> f64 {
        let source = &mut self.sources[tenant as usize];
        let u: f64 = source.arrivals.gen();
        match self.processes[tenant as usize] {
            ArrivalProcess::Poisson { rate_qps } => now_s + exp_gap(u, rate_qps),
            ArrivalProcess::Burst { peak_qps, period_s, duty } => {
                // Draw the gap at peak rate, then skip any off-phase
                // time it lands in: equivalent to a Poisson process
                // that only ticks while the burst is on.
                let mut t = now_s;
                let mut remaining = exp_gap(u, peak_qps);
                loop {
                    let phase = t - (t / period_s).floor() * period_s;
                    let on_until = duty * period_s;
                    if phase < on_until {
                        let budget = on_until - phase;
                        if remaining <= budget {
                            return t + remaining;
                        }
                        remaining -= budget;
                        t += budget;
                    } else {
                        t += period_s - phase;
                    }
                }
            }
        }
    }

    /// The `(model index, question index)` of a tenant's next request.
    ///
    /// Models are drawn uniformly; questions with a quadratic
    /// popularity skew (`(u^2) * n`), so a warm response cache sees
    /// realistic repeat traffic instead of a uniform scan.
    pub fn draw_request(&mut self, tenant: u32, models: usize, questions: usize) -> (u32, u32) {
        let source = &mut self.sources[tenant as usize];
        let model = source.content.gen_index(models) as u32;
        let u: f64 = source.content.gen();
        let question = ((u * u) * questions as f64) as usize;
        (model, question.min(questions - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TrafficConfig {
        TrafficConfig::mixed_fleet(0x7E57, 1000.0, 10.0)
    }

    #[test]
    fn mixed_fleet_offers_the_requested_total() {
        let c = config();
        assert_eq!(c.tenants.len(), 8);
        assert!((c.offered_qps() - 1000.0).abs() < 1e-9);
        assert!(c.tenants.iter().all(|t| t.process.mean_rate_qps() > 0.0));
        // The abusive tenant's bucket cannot sustain its offered rate.
        let abusive = &c.tenants[7];
        assert!(abusive.bucket_rate_qps < abusive.process.mean_rate_qps());
    }

    #[test]
    fn streams_are_deterministic_and_tenant_independent() {
        let c = config();
        let mut a = TrafficSource::new(&c);
        let mut b = TrafficSource::new(&c);
        // Same seed, same draws.
        for tenant in 0..c.tenants.len() as u32 {
            assert_eq!(a.next_arrival_s(tenant, 0.0), b.next_arrival_s(tenant, 0.0));
            assert_eq!(a.draw_request(tenant, 4, 100), b.draw_request(tenant, 4, 100));
        }
        // Consuming tenant 0's stream does not perturb tenant 1's.
        let mut c1 = TrafficSource::new(&c);
        let mut c2 = TrafficSource::new(&c);
        for _ in 0..100 {
            c2.next_arrival_s(0, 0.0);
        }
        assert_eq!(c1.next_arrival_s(1, 0.0), c2.next_arrival_s(1, 0.0));
    }

    #[test]
    fn poisson_gaps_have_roughly_the_right_mean() {
        let c = TrafficConfig {
            seed: 9,
            horizon_s: 1.0,
            tenants: vec![TenantSpec::poisson("t", 100.0)],
        };
        let mut source = TrafficSource::new(&c);
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let next = source.next_arrival_s(0, t);
            assert!(next > t);
            t = next;
        }
        let mean_gap = t / n as f64;
        assert!((mean_gap - 0.01).abs() < 0.001, "mean gap {mean_gap}");
    }

    #[test]
    fn burst_arrivals_stay_in_the_duty_window() {
        let c = TrafficConfig {
            seed: 11,
            horizon_s: 1.0,
            tenants: vec![TenantSpec::bursty("b", 400.0, 2.0, 0.25)],
        };
        let mut source = TrafficSource::new(&c);
        let mut t = 0.0;
        for _ in 0..2_000 {
            t = source.next_arrival_s(0, t);
            let phase = t - (t / 2.0).floor() * 2.0;
            assert!(phase <= 0.5 + 1e-9, "arrival at phase {phase} outside the burst");
        }
    }

    #[test]
    fn drawn_questions_are_skewed_and_in_range() {
        let c = config();
        let mut source = TrafficSource::new(&c);
        let n = 1000usize;
        let mut low_half = 0usize;
        for i in 0..4000 {
            let (model, question) = source.draw_request((i % 8) as u32, 4, n);
            assert!((model as usize) < 4);
            assert!((question as usize) < n);
            if (question as usize) < n / 2 {
                low_half += 1;
            }
        }
        // Quadratic skew: ~70% of draws land in the lower half.
        assert!(low_half > 2400, "only {low_half}/4000 in the popular half");
    }
}
