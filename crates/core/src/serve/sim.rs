//! Virtual-clock event scheduler for the serving loop.
//!
//! Serving is simulated as a discrete-event system: every state change
//! (a tenant's next arrival, a batch deadline expiring, a dispatched
//! batch completing) is an [`Event`] at a virtual timestamp. There is
//! no wall clock anywhere — virtual time advances only by popping the
//! next event — so the whole simulation is a pure function of its
//! seeds and D002-clean by construction.
//!
//! Determinism hinges on the pop order being total. [`EventKey`]
//! orders events by **time, then tenant, then sequence number**:
//!
//! * time: non-negative `f64` stored as raw bits — for non-negative
//!   IEEE-754 doubles the bit pattern orders exactly like the value,
//!   so ordering never rounds through a comparison epsilon;
//! * tenant: at equal timestamps, tenant arrivals (small ids) process
//!   before system events ([`SYSTEM_TENANT`] = `u32::MAX`), so a
//!   request arriving exactly at a batch deadline joins the batch;
//! * sequence: a monotonically increasing schedule counter, unique per
//!   event, breaking any remaining tie in schedule order.
//!
//! The scheduler also owns the run's [`TraceDigest`]: a chained
//! `mix64` fold over every arrival, shed, dispatch, and completion.
//! Two runs with byte-identical traces produce the same digest; the
//! worker-count invariance tests and `bench_serve`'s in-run abort both
//! compare nothing else.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use taxoglimpse_synth::rng::mix64;

/// Tenant id reserved for scheduler-internal events (batch deadlines
/// and completions). Real tenants use small ids, so at equal times
/// arrivals always pop first.
pub const SYSTEM_TENANT: u32 = u32::MAX;

/// Total order over scheduled events: time, then tenant, then
/// schedule sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual timestamp as raw IEEE-754 bits (non-negative, so bit
    /// order equals numeric order).
    pub time_bits: u64,
    /// Originating tenant, or [`SYSTEM_TENANT`].
    pub tenant: u32,
    /// Unique, monotonically increasing schedule counter.
    pub seq: u64,
}

impl EventKey {
    /// The virtual timestamp in seconds.
    pub fn time_s(&self) -> f64 {
        f64::from_bits(self.time_bits)
    }
}

/// What happens when a scheduled timestamp is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// A tenant's next request arrives (payload is drawn from the
    /// tenant's stream at processing time).
    Arrival {
        /// The arriving tenant.
        tenant: u32,
    },
    /// A batching deadline for a model lane expired. Stale deadlines
    /// (scheduled before a dispatch that already drained the lane) are
    /// recognized by an epoch mismatch and ignored.
    BatchDeadline {
        /// Lane (model index) the deadline belongs to.
        lane: u32,
        /// The lane's dispatch epoch when the deadline was scheduled.
        epoch: u64,
    },
    /// A dispatched batch finished serving on a model lane.
    BatchDone {
        /// Lane (model index) whose in-flight batch completed.
        lane: u32,
    },
}

/// The event queue: a min-heap over [`EventKey`], popping the globally
/// next event. Keys are unique (the sequence counter is), so pop order
/// is total and identical across runs.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(EventKey, Event)>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` at virtual time `time_s` on behalf of `tenant`
    /// (use [`SYSTEM_TENANT`] for scheduler-internal events).
    pub fn schedule(&mut self, time_s: f64, tenant: u32, event: Event) {
        debug_assert!(time_s >= 0.0 && time_s.is_finite());
        let key = EventKey { time_bits: time_s.to_bits(), tenant, seq: self.next_seq };
        self.next_seq += 1;
        self.heap.push(Reverse((key, event)));
    }

    /// Pop the next event in (time, tenant, seq) order.
    pub fn pop(&mut self) -> Option<(EventKey, Event)> {
        self.heap.pop().map(|Reverse(entry)| entry)
    }

    /// Number of events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Chained `mix64` fold over the serving trace.
///
/// Each record folds a small tag plus its payload words into the
/// running digest, so the digest commits to the exact sequence of
/// arrivals, sheds, dispatches, and completions — order included.
/// Cheap on purpose: a few integer multiplies per event, no string
/// formatting, because the serving loop's wall-clock throughput is
/// itself a benchmark headline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    state: u64,
    events: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// A fresh digest over the empty trace.
    pub fn new() -> Self {
        TraceDigest { state: 0x7A05_E4E5_D16E_5700, events: 0 }
    }

    fn fold(&mut self, word: u64) {
        self.state = mix64(self.state ^ word);
    }

    /// Record one trace entry: a tag plus its payload words.
    pub fn record(&mut self, tag: u64, words: &[u64]) {
        self.events += 1;
        self.fold(tag);
        for &word in words {
            self.fold(word);
        }
    }

    /// The digest over everything recorded so far.
    pub fn digest(&self) -> u64 {
        self.state
    }

    /// Number of trace entries recorded.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_time_then_tenant_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 0, Event::Arrival { tenant: 0 });
        q.schedule(1.0, 5, Event::Arrival { tenant: 5 });
        q.schedule(1.0, SYSTEM_TENANT, Event::BatchDone { lane: 0 });
        q.schedule(1.0, 5, Event::BatchDeadline { lane: 1, epoch: 0 });
        q.schedule(1.0, 2, Event::Arrival { tenant: 2 });

        assert_eq!(q.len(), 5);
        let order: Vec<(f64, u32, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(k, _)| (k.time_s(), k.tenant, k.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (1.0, 2, 4),              // earliest time, smallest tenant
                (1.0, 5, 1),              // tenant tie broken by schedule seq
                (1.0, 5, 3),
                (1.0, SYSTEM_TENANT, 2),  // system events after arrivals
                (2.0, 0, 0),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn time_bits_order_matches_numeric_order() {
        let times: [f64; 7] = [0.0, 1e-9, 0.5, 1.0, 1.0000000001, 3.25, 1e6];
        for pair in times.windows(2) {
            assert!(pair[0].to_bits() < pair[1].to_bits(), "{} vs {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn trace_digest_is_order_sensitive() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        a.record(1, &[7, 8]);
        a.record(2, &[9]);
        b.record(2, &[9]);
        b.record(1, &[7, 8]);
        assert_eq!(a.events(), 2);
        assert_eq!(b.events(), 2);
        assert_ne!(a.digest(), b.digest(), "reordered traces must not collide");

        let mut c = TraceDigest::new();
        c.record(1, &[7, 8]);
        c.record(2, &[9]);
        assert_eq!(a.digest(), c.digest(), "identical traces digest identically");
    }
}
