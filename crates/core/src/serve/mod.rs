//! `taxoserve` — a deterministic online serving layer over the model
//! zoo, simulated in virtual time.
//!
//! The offline harness ([`crate::eval`], [`crate::grid`]) answers "how
//! accurate is a model as a taxonomy?"; this module answers the
//! production question the ROADMAP's north star poses: what happens
//! when the same model tower serves *heavy live traffic* — tail
//! latency, queueing, batching efficiency, and load shedding under
//! admission pressure. Everything runs as a discrete-event simulation
//! ([`sim`]) on a virtual clock:
//!
//! * [`traffic`] offers open-loop Poisson/burst load from seeded
//!   per-tenant streams;
//! * [`admission`] sheds what the token buckets, queue bounds, or a
//!   tripped breaker refuse;
//! * [`batcher`] accumulates admitted requests per model lane and
//!   closes batches by size cap or deadline;
//! * dispatched batches flow through the *existing* model stack — the
//!   lane's [`ResilienceSession`] replays `answer_batch` prefetches
//!   exactly like the evaluator does, so caches, fault injection,
//!   retries, backoff and breaker trips all behave identically to the
//!   offline pipeline.
//!
//! ### Determinism
//!
//! The entire run is a pure function of `(traffic config, serve
//! config, question pool, model tower)`. Virtual timestamps come only
//! from seeded streams and closed-form service times; event pop order
//! is totally ordered by (time, tenant, sequence); and the `workers`
//! knob only changes how a dispatched batch's attempt-0 prefetch is
//! split across threads — results are spliced back in index order, and
//! model answers are pure per query, so the [`ServeReport`] (and its
//! trace digest) is byte-identical for any worker count. `tests/serve.rs`
//! and `bench_serve` both enforce this.

pub mod admission;
pub mod batcher;
pub mod sim;
pub mod traffic;

pub use admission::{AdmissionControl, ShedReason, ShedStats, TenantStats, TokenBucket};
pub use batcher::{CompletedRequest, Lane, LaneStats, PendingRequest};
pub use sim::{Event, EventKey, EventQueue, TraceDigest, SYSTEM_TENANT};
pub use traffic::{ArrivalProcess, TenantSpec, TrafficConfig, TrafficSource};

use crate::model::{LanguageModel, ModelError, Query, Response};
use crate::prompts::{render_prompt, PromptSetting};
use crate::question::Question;
use crate::resilience::{ResiliencePolicy, ResilienceSession, ResilienceStats};
use crate::templates::TemplateVariant;

/// Trace tags (first word of each [`TraceDigest`] record).
const TAG_ARRIVAL: u64 = 1;
const TAG_SHED: u64 = 2;
const TAG_DISPATCH: u64 = 3;
const TAG_COMPLETE: u64 = 4;

/// Tuning knobs for the serving loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Size cap per dispatched batch.
    pub max_batch: usize,
    /// Longest virtual time the oldest pending request may wait before
    /// its batch closes.
    pub batch_deadline_s: f64,
    /// Bound on each lane's pending queue (admission sheds beyond it).
    pub queue_capacity: usize,
    /// Fixed virtual service cost per dispatched batch.
    pub batch_overhead_s: f64,
    /// Marginal virtual service cost per request in a batch.
    pub per_item_s: f64,
    /// Threads used to split each batch's attempt-0 prefetch. Purely
    /// an execution detail: any value produces byte-identical reports.
    pub workers: usize,
    /// Prompting setting for rendered prompts (no few-shot exemplars
    /// in the serving path; [`PromptSetting::ZeroShot`] is canonical).
    pub setting: PromptSetting,
    /// Template variant for rendered prompts.
    pub variant: TemplateVariant,
    /// Retry/backoff/breaker policy for every lane's session.
    pub resilience: ResiliencePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_deadline_s: 0.02,
            queue_capacity: 256,
            batch_overhead_s: 0.002,
            per_item_s: 0.0001,
            workers: 1,
            setting: PromptSetting::ZeroShot,
            variant: TemplateVariant::Canonical,
            resilience: ResiliencePolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Override the batch size cap (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Override the batch deadline (clamped non-negative).
    pub fn with_batch_deadline_s(mut self, deadline_s: f64) -> Self {
        self.batch_deadline_s = deadline_s.max(0.0);
        self
    }

    /// Override the per-lane queue bound (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the per-batch fixed service cost.
    pub fn with_batch_overhead_s(mut self, overhead_s: f64) -> Self {
        self.batch_overhead_s = overhead_s.max(0.0);
        self
    }

    /// Override the per-request marginal service cost.
    pub fn with_per_item_s(mut self, per_item_s: f64) -> Self {
        self.per_item_s = per_item_s.max(0.0);
        self
    }

    /// Override the prefetch worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the lane resilience policy.
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Closed-form saturation throughput of one lane in requests per
    /// virtual second, assuming full fault-free batches:
    /// `max_batch / (batch_overhead_s + max_batch * per_item_s)`.
    pub fn lane_capacity_qps(&self) -> f64 {
        let full_batch_s = self.batch_overhead_s + self.max_batch as f64 * self.per_item_s;
        if full_batch_s <= 0.0 {
            f64::INFINITY
        } else {
            self.max_batch as f64 / full_batch_s
        }
    }
}

/// Everything one serving run produced. Byte-identical across worker
/// counts; compared field-for-field by the invariance tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests the traffic source offered.
    pub arrivals: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Admitted requests answered successfully.
    pub completed: u64,
    /// Admitted requests that exhausted the resilience budget.
    pub failed: u64,
    /// Sheds by reason, across tenants.
    pub shed: ShedStats,
    /// Virtual latency (arrival to completion) of every successful
    /// request, in completion order. Feed into
    /// `taxoglimpse_report::LatencyHistogram` for percentiles.
    pub latencies: Vec<f64>,
    /// Batches dispatched across lanes.
    pub batches: u64,
    /// Sum of dispatched batch sizes across lanes.
    pub occupancy_sum: u64,
    /// Largest batch dispatched on any lane.
    pub occupancy_max: u64,
    /// Virtual time of the last event.
    pub makespan_s: f64,
    /// The arrival horizon the run was configured with.
    pub horizon_s: f64,
    /// Chained digest over the full event trace.
    pub trace_digest: u64,
    /// Number of trace records behind the digest.
    pub trace_events: u64,
    /// Per-tenant outcome rows, in tenant order.
    pub tenants: Vec<TenantStats>,
    /// Per-lane (per-model) outcome rows, in model order.
    pub lanes: Vec<LaneStats>,
}

impl ServeReport {
    /// Fraction of offered requests shed by admission.
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed.total() as f64 / self.arrivals as f64
        }
    }

    /// Fraction of admitted requests answered successfully.
    pub fn availability(&self) -> f64 {
        let finished = self.completed + self.failed;
        if finished == 0 {
            1.0
        } else {
            self.completed as f64 / finished as f64
        }
    }

    /// Successful answers per virtual second, over the makespan.
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// Mean dispatched batch size.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.batches as f64
        }
    }

    /// Retry/breaker counters summed across lanes.
    pub fn resilience(&self) -> ResilienceStats {
        self.lanes.iter().map(|lane| lane.resilience).sum()
    }
}

/// Split a batch's attempt-0 prefetch across `workers` threads.
///
/// Contiguous even chunks, results spliced back in chunk order: model
/// answers are pure per query, so the split is unobservable in the
/// results — only in wall-clock time.
fn prefetch(
    model: &dyn LanguageModel,
    queries: &[Query<'_>],
    workers: usize,
) -> Vec<Result<Response, ModelError>> {
    let workers = workers.max(1);
    let results = if workers == 1 || queries.len() < 2 {
        model.answer_batch(queries)
    } else {
        let chunk = queries.len().div_ceil(workers);
        let mut spliced = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|part| scope.spawn(move || model.answer_batch(part)))
                .collect();
            for handle in handles {
                spliced.extend(handle.join().expect("serve prefetch worker panicked"));
            }
        });
        spliced
    };
    assert_eq!(
        results.len(),
        queries.len(),
        "answer_batch must return one result per query"
    );
    results
}

/// Dispatch a due batch on `lane_idx` (if any) or (re-)arm its
/// deadline. Called after every event that can change the lane's
/// dispatch conditions.
#[allow(clippy::too_many_arguments)]
fn pump_lane(
    lane_idx: usize,
    now_s: f64,
    lanes: &mut [Lane],
    queue: &mut EventQueue,
    trace: &mut TraceDigest,
    models: &[&dyn LanguageModel],
    questions: &[Question],
    prompts: &[String],
    config: &ServeConfig,
) {
    let lane = &mut lanes[lane_idx];
    if lane.should_dispatch(now_s, config.max_batch, config.batch_deadline_s) {
        let batch = lane.take_batch(config.max_batch);
        trace.record(TAG_DISPATCH, &[lane_idx as u64, batch.len() as u64, now_s.to_bits()]);

        let queries: Vec<Query<'_>> = batch
            .iter()
            .map(|request| {
                let question = request.question as usize;
                Query::new(&prompts[question], &questions[question], config.setting)
            })
            .collect();
        let prefetched = prefetch(models[lane_idx], &queries, config.workers);

        // Replay through the lane session in arrival order: retries,
        // backoff waits and breaker trips land on the lane's virtual
        // clock, and the deltas become part of the batch service time.
        let mut service_s = config.batch_overhead_s + config.per_item_s * batch.len() as f64;
        for ((request, query), first) in batch.iter().zip(&queries).zip(prefetched) {
            let before_s = lane.session.clock_s();
            let result = lane.session.call_prefetched(models[lane_idx], query, first);
            service_s += lane.session.clock_s() - before_s;
            lane.in_flight.push(CompletedRequest { request: *request, delivered: result.is_ok() });
        }
        queue.schedule(now_s + service_s, SYSTEM_TENANT, Event::BatchDone { lane: lane_idx as u32 });
    } else if !lane.busy {
        if let Some((deadline_at_s, epoch)) = lane.deadline_to_schedule(config.batch_deadline_s) {
            queue.schedule(
                deadline_at_s,
                SYSTEM_TENANT,
                Event::BatchDeadline { lane: lane_idx as u32, epoch },
            );
        }
    }
}

/// Run one serving simulation to completion: offer traffic until the
/// horizon, admit/batch/serve it through the model towers, and drain.
///
/// `models` are the per-lane towers (index = lane = model id in
/// request draws); `questions` is the pool requests draw from.
pub fn run_serve(
    models: &[&dyn LanguageModel],
    questions: &[Question],
    traffic: &TrafficConfig,
    config: &ServeConfig,
) -> ServeReport {
    assert!(!models.is_empty(), "run_serve needs at least one model lane");
    assert!(!questions.is_empty(), "run_serve needs a non-empty question pool");
    assert!(!traffic.tenants.is_empty(), "run_serve needs at least one tenant");

    // Render every prompt once up front; dispatches borrow them.
    let prompts: Vec<String> = questions
        .iter()
        .map(|question| render_prompt(question, config.setting, config.variant, &[]))
        .collect();

    let mut lanes: Vec<Lane> = models
        .iter()
        .map(|model| Lane::new(model.name(), ResilienceSession::new(config.resilience)))
        .collect();
    let mut source = TrafficSource::new(traffic);
    let mut gate = AdmissionControl::new(&traffic.tenants);
    let mut queue = EventQueue::new();
    let mut trace = TraceDigest::new();

    let mut arrivals = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut shed = ShedStats::default();
    let mut latencies = Vec::new();
    let mut makespan_s = 0.0f64;

    for tenant in 0..traffic.tenants.len() as u32 {
        let first_s = source.next_arrival_s(tenant, 0.0);
        if first_s < traffic.horizon_s {
            queue.schedule(first_s, tenant, Event::Arrival { tenant });
        }
    }

    while let Some((key, event)) = queue.pop() {
        let now_s = key.time_s();
        makespan_s = makespan_s.max(now_s);
        match event {
            Event::Arrival { tenant } => {
                let (model, question) = source.draw_request(tenant, models.len(), questions.len());
                let id = arrivals;
                arrivals += 1;
                trace.record(
                    TAG_ARRIVAL,
                    &[id, u64::from(tenant), u64::from(model), u64::from(question), key.time_bits],
                );

                // Open loop: the next arrival is scheduled regardless
                // of what happens to this one.
                let next_s = source.next_arrival_s(tenant, now_s);
                if next_s < traffic.horizon_s {
                    queue.schedule(next_s, tenant, Event::Arrival { tenant });
                }

                let lane_idx = model as usize;
                let verdict = gate.admit(
                    tenant,
                    now_s,
                    lanes[lane_idx].session.state(),
                    lanes[lane_idx].pending.len(),
                    config.queue_capacity,
                );
                match verdict {
                    Ok(()) => {
                        admitted += 1;
                        lanes[lane_idx].pending.push_back(PendingRequest {
                            id,
                            tenant,
                            question,
                            arrival_s: now_s,
                        });
                        pump_lane(
                            lane_idx, now_s, &mut lanes, &mut queue, &mut trace, models,
                            questions, &prompts, config,
                        );
                    }
                    Err(reason) => {
                        shed.count(reason);
                        trace.record(TAG_SHED, &[id, reason.code()]);
                    }
                }
            }
            Event::BatchDeadline { lane, epoch } => {
                let lane_idx = lane as usize;
                if lanes[lane_idx].deadline_is_current(epoch) {
                    lanes[lane_idx].deadline_scheduled = false;
                    pump_lane(
                        lane_idx, now_s, &mut lanes, &mut queue, &mut trace, models, questions,
                        &prompts, config,
                    );
                }
            }
            Event::BatchDone { lane } => {
                let lane_idx = lane as usize;
                let done: Vec<CompletedRequest> = lanes[lane_idx].in_flight.drain(..).collect();
                lanes[lane_idx].busy = false;
                for completion in done {
                    let latency_s = now_s - completion.request.arrival_s;
                    trace.record(
                        TAG_COMPLETE,
                        &[
                            completion.request.id,
                            u64::from(completion.delivered),
                            latency_s.to_bits(),
                        ],
                    );
                    gate.record_outcome(completion.request.tenant, completion.delivered);
                    if completion.delivered {
                        completed += 1;
                        lanes[lane_idx].stats.completed += 1;
                        latencies.push(latency_s);
                    } else {
                        failed += 1;
                        lanes[lane_idx].stats.failed += 1;
                    }
                }
                pump_lane(
                    lane_idx, now_s, &mut lanes, &mut queue, &mut trace, models, questions,
                    &prompts, config,
                );
            }
        }
    }

    let mut batches = 0u64;
    let mut occupancy_sum = 0u64;
    let mut occupancy_max = 0u64;
    let lane_stats: Vec<LaneStats> = lanes
        .into_iter()
        .map(|mut lane| {
            debug_assert!(lane.pending.is_empty(), "drained run left pending work");
            debug_assert!(!lane.busy, "drained run left a busy lane");
            lane.stats.resilience = lane.session.stats();
            batches += lane.stats.batches;
            occupancy_sum += lane.stats.occupancy_sum;
            occupancy_max = occupancy_max.max(lane.stats.occupancy_max);
            lane.stats
        })
        .collect();

    ServeReport {
        arrivals,
        admitted,
        completed,
        failed,
        shed,
        latencies,
        batches,
        occupancy_sum,
        occupancy_max,
        makespan_s,
        horizon_s: traffic.horizon_s,
        trace_digest: trace.digest(),
        trace_events: trace.events(),
        tenants: gate.into_stats(),
        lanes: lane_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::question::QuestionBody;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool(n: usize) -> Vec<Question> {
        (0..n as u64)
            .map(|id| Question {
                id,
                taxonomy: TaxonomyKind::Ebay,
                child: format!("child-{id}"),
                child_level: 1,
                parent_level: 0,
                true_parent: "parent".into(),
                instance_typing: false,
                body: QuestionBody::TrueFalse {
                    candidate: "parent".into(),
                    expected_yes: true,
                    negative: None,
                },
            })
            .collect()
    }

    /// A healthy model with a fixed simulated latency per answer.
    struct SteadyModel {
        latency_s: f64,
        calls: AtomicU64,
    }

    impl SteadyModel {
        fn new(latency_s: f64) -> Self {
            SteadyModel { latency_s, calls: AtomicU64::new(0) }
        }
    }

    impl LanguageModel for SteadyModel {
        fn name(&self) -> &str {
            "steady"
        }

        fn answer(&self, _query: &Query<'_>) -> Result<Response, ModelError> {
            // Relaxed: independent monotonic counter, only read after
            // the run finishes.
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(Response::new("Yes.").with_latency(self.latency_s))
        }
    }

    /// A model that always fails retryably: every query exhausts the
    /// retry budget and the breaker eventually trips.
    struct DownModel;

    impl LanguageModel for DownModel {
        fn name(&self) -> &str {
            "down"
        }

        fn answer(&self, _query: &Query<'_>) -> Result<Response, ModelError> {
            Err(ModelError::Unavailable)
        }
    }

    fn traffic(total_qps: f64, horizon_s: f64) -> TrafficConfig {
        TrafficConfig::mixed_fleet(0xBEEF, total_qps, horizon_s)
    }

    #[test]
    fn serving_accounts_for_every_arrival() {
        let model = SteadyModel::new(0.0);
        let models: Vec<&dyn LanguageModel> = vec![&model];
        let questions = pool(50);
        let config = ServeConfig::default();
        let report = run_serve(&models, &questions, &traffic(400.0, 2.0), &config);

        assert!(report.arrivals > 100, "only {} arrivals", report.arrivals);
        assert_eq!(report.admitted + report.shed.total(), report.arrivals);
        assert_eq!(report.completed + report.failed, report.admitted);
        assert_eq!(report.failed, 0, "healthy model never fails");
        assert_eq!(report.latencies.len() as u64, report.completed);
        assert_eq!(report.availability(), 1.0);
        assert!(report.makespan_s >= report.horizon_s * 0.5);
        assert!(report.batches > 0);
        assert!(report.mean_occupancy() >= 1.0);
        // The abusive tenant is shed by its bucket even at low load.
        assert!(report.shed.rate_limited > 0, "abusive tenant was not rate limited");
        let abusive = &report.tenants[7];
        assert!(abusive.shed.rate_limited > 0);
        // Tenant rows add up to the totals.
        assert_eq!(report.tenants.iter().map(|t| t.arrivals).sum::<u64>(), report.arrivals);
        assert_eq!(report.tenants.iter().map(|t| t.completed).sum::<u64>(), report.completed);
        // Lane rows too.
        assert_eq!(report.lanes.iter().map(|l| l.completed).sum::<u64>(), report.completed);
        assert_eq!(report.resilience().queries, report.admitted);
    }

    #[test]
    fn same_seed_same_report_different_seed_different_trace() {
        let model = SteadyModel::new(0.001);
        let models: Vec<&dyn LanguageModel> = vec![&model];
        let questions = pool(40);
        let config = ServeConfig::default();
        let a = run_serve(&models, &questions, &traffic(300.0, 1.0), &config);
        let b = run_serve(&models, &questions, &traffic(300.0, 1.0), &config);
        assert_eq!(a, b, "same inputs, byte-identical report");

        let other = TrafficConfig { seed: 0xD1FF, ..traffic(300.0, 1.0) };
        let c = run_serve(&models, &questions, &other, &config);
        assert_ne!(a.trace_digest, c.trace_digest, "seed must reach the trace");
    }

    #[test]
    fn deadline_closes_small_batches_and_cap_closes_big_ones() {
        let model = SteadyModel::new(0.0);
        let models: Vec<&dyn LanguageModel> = vec![&model];
        let questions = pool(40);
        // Sparse traffic + long deadline: batches close by deadline
        // with small occupancy.
        let sparse = TrafficConfig {
            seed: 1,
            horizon_s: 2.0,
            tenants: vec![TenantSpec::poisson("t", 50.0)],
        };
        let lazy = ServeConfig::default().with_batch_deadline_s(0.05);
        let small = run_serve(&models, &questions, &sparse, &lazy);
        // Dense traffic, same deadline: the size cap dominates.
        let dense = TrafficConfig {
            seed: 1,
            horizon_s: 2.0,
            tenants: vec![TenantSpec::poisson("t", 4000.0)],
        };
        let big = run_serve(&models, &questions, &dense, &lazy);
        assert!(
            big.mean_occupancy() > small.mean_occupancy() * 2.0,
            "dense {} vs sparse {}",
            big.mean_occupancy(),
            small.mean_occupancy()
        );
        assert_eq!(big.occupancy_max, 32, "cap-closed batches are full");
    }

    #[test]
    fn overload_sheds_and_latency_grows_with_load() {
        let model = SteadyModel::new(0.0);
        let models: Vec<&dyn LanguageModel> = vec![&model];
        let questions = pool(40);
        let config = ServeConfig::default().with_queue_capacity(64);
        let capacity = config.lane_capacity_qps();

        let light = run_serve(&models, &questions, &traffic(capacity * 0.3, 2.0), &config);
        let heavy = run_serve(&models, &questions, &traffic(capacity * 2.0, 2.0), &config);
        assert!(heavy.shed.queue_full > 0, "2x overload must overflow the queue");
        assert!(heavy.shed_rate() > light.shed_rate());

        let mean = |r: &ServeReport| {
            r.latencies.iter().sum::<f64>() / r.latencies.len().max(1) as f64
        };
        assert!(
            mean(&heavy) > mean(&light),
            "queueing delay must show up: heavy {} vs light {}",
            mean(&heavy),
            mean(&light)
        );
    }

    #[test]
    fn dead_lane_trips_the_breaker_and_sheds_overload() {
        let down = DownModel;
        let healthy = SteadyModel::new(0.0);
        let models: Vec<&dyn LanguageModel> = vec![&down, &healthy];
        let questions = pool(40);
        let config = ServeConfig::default();
        let report = run_serve(&models, &questions, &traffic(500.0, 2.0), &config);

        assert!(report.failed > 0, "the dead lane must fail requests");
        assert!(report.shed.overload > 0, "open breaker must shed queued-behind work");
        assert!(report.availability() < 1.0);
        let down_lane = &report.lanes[0];
        assert_eq!(down_lane.completed, 0);
        assert!(down_lane.resilience.fast_failed > 0, "breaker never tripped");
        let healthy_lane = &report.lanes[1];
        assert!(healthy_lane.completed > 0);
        assert_eq!(healthy_lane.failed, 0);
    }

    #[test]
    fn prefetch_split_is_unobservable() {
        let model = SteadyModel::new(0.0);
        let questions = pool(8);
        let prompts: Vec<String> = questions
            .iter()
            .map(|q| render_prompt(q, PromptSetting::ZeroShot, TemplateVariant::Canonical, &[]))
            .collect();
        let queries: Vec<Query<'_>> = questions
            .iter()
            .zip(&prompts)
            .map(|(q, p)| Query::new(p, q, PromptSetting::ZeroShot))
            .collect();
        let sequential = prefetch(&model, &queries, 1);
        for workers in [2, 3, 8, 16] {
            assert_eq!(prefetch(&model, &queries, workers), sequential);
        }
    }

    #[test]
    fn config_builders_clamp() {
        let config = ServeConfig::default()
            .with_max_batch(0)
            .with_batch_deadline_s(-1.0)
            .with_queue_capacity(0)
            .with_batch_overhead_s(-1.0)
            .with_per_item_s(-1.0)
            .with_workers(0);
        assert_eq!(config.max_batch, 1);
        assert_eq!(config.batch_deadline_s, 0.0);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.batch_overhead_s, 0.0);
        assert_eq!(config.per_item_s, 0.0);
        assert_eq!(config.workers, 1);
        assert_eq!(config.lane_capacity_qps(), f64::INFINITY);
        assert!(ServeConfig::default().lane_capacity_qps() > 0.0);
    }
}
