//! Per-model dynamic batching.
//!
//! Each model gets one [`Lane`]: a bounded FIFO of admitted requests
//! plus a single logical server. A batch closes — and dispatches
//! through the model's `answer_batch` tower — when either
//!
//! * the queue holds `max_batch` requests (size cap), or
//! * the oldest pending request has waited `batch_deadline_s` of
//!   virtual time (deadline close), or
//! * the server goes idle with work pending (work-conserving close).
//!
//! Deadlines are scheduled as events; a lane's *dispatch epoch*
//! invalidates deadlines scheduled for batches that have since been
//! dispatched by the size cap, so stale events are recognized by an
//! epoch mismatch and ignored rather than cancelled (the event queue
//! never needs deletion).
//!
//! The batching tradeoff the benchmark measures comes from the service
//! model: a dispatched batch of `n` requests occupies the server for
//! `batch_overhead_s + n * per_item_s` plus whatever retry/backoff
//! time the lane's [`ResilienceSession`] accrues replaying it. Large
//! batches amortize the overhead (throughput); waiting to fill them
//! costs queueing delay (latency).

use crate::resilience::{ResilienceSession, ResilienceStats};

/// One admitted request waiting in (or flowing through) a lane.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    /// Global arrival ordinal (trace identity).
    pub id: u64,
    /// The tenant that offered it.
    pub tenant: u32,
    /// Index into the question pool.
    pub question: u32,
    /// Virtual arrival timestamp.
    pub arrival_s: f64,
}

/// Outcome of one dispatched request, reported at batch completion.
#[derive(Debug, Clone, Copy)]
pub struct CompletedRequest {
    /// The request's metadata.
    pub request: PendingRequest,
    /// Whether the resilience layer delivered an answer.
    pub delivered: bool,
}

/// Per-lane counters for the serving report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Model name the lane serves.
    pub model: String,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that exhausted the resilience budget.
    pub failed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Sum of batch sizes (mean occupancy = `occupancy_sum / batches`).
    pub occupancy_sum: u64,
    /// Largest batch dispatched.
    pub occupancy_max: u64,
    /// The lane session's retry/breaker counters.
    pub resilience: ResilienceStats,
}

/// One model's serving lane.
#[derive(Debug)]
pub struct Lane {
    /// Admitted requests waiting for a batch, oldest first.
    pub pending: std::collections::VecDeque<PendingRequest>,
    /// Requests dispatched and not yet completed, with their verdicts
    /// (computed at dispatch, surfaced at the batch-done event).
    pub in_flight: Vec<CompletedRequest>,
    /// Whether the server is occupied by a dispatched batch.
    pub busy: bool,
    /// Dispatch epoch; bumped on every dispatch so outstanding
    /// deadline events for earlier batches become stale.
    pub epoch: u64,
    /// Whether a deadline event is outstanding for the current epoch.
    pub deadline_scheduled: bool,
    /// Retry/backoff/breaker state for this lane.
    pub session: ResilienceSession,
    /// Counters for the report.
    pub stats: LaneStats,
}

impl Lane {
    /// A fresh idle lane for `model`, with a fresh session.
    pub fn new(model: &str, session: ResilienceSession) -> Self {
        Lane {
            pending: std::collections::VecDeque::new(),
            in_flight: Vec::new(),
            busy: false,
            epoch: 0,
            deadline_scheduled: false,
            session,
            stats: LaneStats { model: model.to_owned(), ..LaneStats::default() },
        }
    }

    /// Whether a batch should dispatch *now*: server idle, work
    /// pending, and either the size cap reached or the oldest request
    /// past its deadline.
    pub fn should_dispatch(&self, now_s: f64, max_batch: usize, deadline_s: f64) -> bool {
        if self.busy || self.pending.is_empty() {
            return false;
        }
        if self.pending.len() >= max_batch {
            return true;
        }
        match self.pending.front() {
            Some(oldest) => oldest.arrival_s + deadline_s <= now_s,
            None => false,
        }
    }

    /// Pop the next batch (up to `max_batch` oldest requests), bump
    /// the epoch, and mark the server busy. Call only after
    /// [`Lane::should_dispatch`] returned true.
    pub fn take_batch(&mut self, max_batch: usize) -> Vec<PendingRequest> {
        let n = self.pending.len().min(max_batch.max(1));
        let batch: Vec<PendingRequest> = self.pending.drain(..n).collect();
        self.epoch += 1;
        self.deadline_scheduled = false;
        self.busy = true;
        self.stats.batches += 1;
        self.stats.occupancy_sum += batch.len() as u64;
        self.stats.occupancy_max = self.stats.occupancy_max.max(batch.len() as u64);
        batch
    }

    /// The deadline the current oldest pending request implies, if a
    /// deadline event still needs scheduling.
    pub fn deadline_to_schedule(&mut self, deadline_s: f64) -> Option<(f64, u64)> {
        if self.deadline_scheduled {
            return None;
        }
        let oldest = self.pending.front()?;
        self.deadline_scheduled = true;
        Some((oldest.arrival_s + deadline_s, self.epoch))
    }

    /// Whether a deadline event for `epoch` is still current.
    pub fn deadline_is_current(&self, epoch: u64) -> bool {
        epoch == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ResiliencePolicy;

    fn lane() -> Lane {
        Lane::new("m", ResilienceSession::new(ResiliencePolicy::default()))
    }

    fn request(id: u64, arrival_s: f64) -> PendingRequest {
        PendingRequest { id, tenant: 0, question: 0, arrival_s }
    }

    #[test]
    fn dispatches_on_size_cap_or_deadline() {
        let mut lane = lane();
        assert!(!lane.should_dispatch(0.0, 4, 0.1), "idle lane has nothing to dispatch");

        lane.pending.push_back(request(0, 0.0));
        assert!(!lane.should_dispatch(0.05, 4, 0.1), "neither cap nor deadline yet");
        assert!(lane.should_dispatch(0.1, 4, 0.1), "deadline reached");

        for id in 1..4 {
            lane.pending.push_back(request(id, 0.02));
        }
        assert!(lane.should_dispatch(0.03, 4, 0.1), "size cap reached");

        let batch = lane.take_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].id, 0, "oldest first");
        assert!(lane.busy);
        assert_eq!(lane.epoch, 1);
        assert_eq!(lane.stats.batches, 1);
        assert_eq!(lane.stats.occupancy_sum, 4);
        assert_eq!(lane.stats.occupancy_max, 4);
        assert!(!lane.should_dispatch(10.0, 4, 0.1), "busy lane never double-dispatches");
    }

    #[test]
    fn deadline_scheduling_is_once_per_batch_and_epoch_guarded() {
        let mut lane = lane();
        assert_eq!(lane.deadline_to_schedule(0.1), None, "no pending, no deadline");

        lane.pending.push_back(request(0, 1.0));
        let (at, epoch) = lane.deadline_to_schedule(0.1).expect("deadline for the oldest");
        assert_eq!(at, 1.1);
        assert_eq!(epoch, 0);
        assert_eq!(lane.deadline_to_schedule(0.1), None, "already scheduled");
        assert!(lane.deadline_is_current(epoch));

        lane.take_batch(4);
        assert!(!lane.deadline_is_current(epoch), "dispatch staled the deadline");

        // After the dispatch, a newly pending request re-arms.
        lane.pending.push_back(request(1, 2.0));
        let (at, epoch) = lane.deadline_to_schedule(0.1).expect("re-armed deadline");
        assert_eq!(at, 2.1);
        assert_eq!(epoch, 1);
        assert!(lane.deadline_is_current(epoch));
    }
}
