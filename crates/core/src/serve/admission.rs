//! Admission control: per-tenant token buckets, bounded lane queues,
//! and breaker-aware load shedding — all in virtual time.
//!
//! A request is admitted only if it clears three deterministic gates,
//! in a fixed order so the shed *reason* is as reproducible as the
//! shed itself:
//!
//! 1. **Rate limit** — the tenant's token bucket, refilled lazily at
//!    `bucket_rate_qps` up to `bucket_burst`, must hold a whole token.
//!    Refill amounts are pure arithmetic over virtual timestamps, so
//!    two runs see bit-identical token levels.
//! 2. **Overload trip** — if the lane's circuit breaker (the
//!    [`crate::resilience`] machinery inside the lane's session) is
//!    open and the lane already has queued work, the request is shed:
//!    queueing more behind a tripped backend only burns latency. The
//!    head-of-line request still goes through, which is what feeds the
//!    breaker its half-open probes and lets the lane recover.
//! 3. **Queue bound** — the lane's pending queue is capacity-bounded
//!    with deterministic tail drop.
//!
//! Shed requests are counted per reason and per tenant; they never
//! reach a model.

use crate::resilience::BreakerState;

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty.
    RateLimited,
    /// The lane's breaker is open and work is already queued.
    Overload,
    /// The lane's pending queue is full.
    QueueFull,
}

impl ShedReason {
    /// Stable small code for trace digests.
    pub fn code(&self) -> u64 {
        match self {
            ShedReason::RateLimited => 1,
            ShedReason::Overload => 2,
            ShedReason::QueueFull => 3,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate-limited",
            ShedReason::Overload => "overload",
            ShedReason::QueueFull => "queue-full",
        }
    }
}

/// Shed counters by reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedStats {
    /// Requests shed by an empty token bucket.
    pub rate_limited: u64,
    /// Requests shed behind an open breaker.
    pub overload: u64,
    /// Requests shed by a full lane queue.
    pub queue_full: u64,
}

impl ShedStats {
    /// Total shed requests across reasons.
    pub fn total(&self) -> u64 {
        self.rate_limited + self.overload + self.queue_full
    }

    /// Count one shed.
    pub fn count(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.rate_limited += 1,
            ShedReason::Overload => self.overload += 1,
            ShedReason::QueueFull => self.queue_full += 1,
        }
    }
}

impl std::ops::AddAssign for ShedStats {
    fn add_assign(&mut self, rhs: ShedStats) {
        self.rate_limited += rhs.rate_limited;
        self.overload += rhs.overload;
        self.queue_full += rhs.queue_full;
    }
}

/// Per-tenant serving outcome counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant display name (from the [`super::TenantSpec`]).
    pub name: String,
    /// Requests the tenant offered.
    pub arrivals: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Requests shed, by reason.
    pub shed: ShedStats,
    /// Admitted requests answered successfully.
    pub completed: u64,
    /// Admitted requests that exhausted the resilience budget.
    pub failed: u64,
}

/// A token bucket in virtual time: lazily refilled on each probe.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    rate_qps: f64,
    burst: f64,
    tokens: f64,
    refilled_at_s: f64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_qps` up to `burst` tokens.
    pub fn new(rate_qps: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket { rate_qps: rate_qps.max(0.0), burst, tokens: burst, refilled_at_s: 0.0 }
    }

    /// Refill for the elapsed virtual time, then try to take one
    /// token. Returns whether the request is within allowance.
    pub fn admit(&mut self, now_s: f64) -> bool {
        if now_s > self.refilled_at_s {
            let refill = (now_s - self.refilled_at_s) * self.rate_qps;
            self.tokens = (self.tokens + refill).min(self.burst);
            self.refilled_at_s = now_s;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// The admission gate: one token bucket and one stats row per tenant.
#[derive(Debug)]
pub struct AdmissionControl {
    buckets: Vec<TokenBucket>,
    stats: Vec<TenantStats>,
}

impl AdmissionControl {
    /// Build buckets and stats rows from the tenant specs.
    pub fn new(tenants: &[super::TenantSpec]) -> Self {
        AdmissionControl {
            buckets: tenants
                .iter()
                .map(|t| TokenBucket::new(t.bucket_rate_qps, t.bucket_burst))
                .collect(),
            stats: tenants
                .iter()
                .map(|t| TenantStats { name: t.name.clone(), ..TenantStats::default() })
                .collect(),
        }
    }

    /// Run the three admission gates for one arrival. `Ok(())` admits;
    /// `Err(reason)` sheds. Counters update either way.
    pub fn admit(
        &mut self,
        tenant: u32,
        now_s: f64,
        breaker: BreakerState,
        lane_pending: usize,
        lane_capacity: usize,
    ) -> Result<(), ShedReason> {
        let row = &mut self.stats[tenant as usize];
        row.arrivals += 1;
        let verdict = if !self.buckets[tenant as usize].admit(now_s) {
            Err(ShedReason::RateLimited)
        } else {
            let tripped = match breaker {
                BreakerState::Open => true,
                BreakerState::HalfOpen | BreakerState::Closed => false,
            };
            if tripped && lane_pending > 0 {
                Err(ShedReason::Overload)
            } else if lane_pending >= lane_capacity {
                Err(ShedReason::QueueFull)
            } else {
                Ok(())
            }
        };
        match verdict {
            Ok(()) => row.admitted += 1,
            Err(reason) => row.shed.count(reason),
        }
        verdict
    }

    /// Record the final outcome of an admitted request.
    pub fn record_outcome(&mut self, tenant: u32, delivered: bool) {
        let row = &mut self.stats[tenant as usize];
        if delivered {
            row.completed += 1;
        } else {
            row.failed += 1;
        }
    }

    /// The per-tenant rows, in tenant order.
    pub fn into_stats(self) -> Vec<TenantStats> {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::super::TenantSpec;
    use super::*;

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let mut bucket = TokenBucket::new(10.0, 5.0);
        // The initial burst allowance: 5 immediate admits, then empty.
        for _ in 0..5 {
            assert!(bucket.admit(0.0));
        }
        assert!(!bucket.admit(0.0));
        // 0.1s refills exactly one token.
        assert!(bucket.admit(0.1));
        assert!(!bucket.admit(0.1));
        // A long idle period caps at the burst size.
        assert!(bucket.tokens() < 1.0);
        bucket.admit(100.0);
        assert!(bucket.tokens() <= 5.0);
    }

    fn gate() -> AdmissionControl {
        AdmissionControl::new(&[
            TenantSpec::poisson("steady", 100.0),
            TenantSpec::abusive("abusive", 100.0, 1.0),
        ])
    }

    #[test]
    fn gates_apply_in_order_and_count_per_tenant() {
        let mut gate = gate();
        // Gate 3: queue full.
        assert_eq!(gate.admit(0, 0.0, BreakerState::Closed, 8, 8), Err(ShedReason::QueueFull));
        // Gate 2: breaker open with queued work.
        assert_eq!(gate.admit(0, 0.0, BreakerState::Open, 1, 8), Err(ShedReason::Overload));
        // Breaker open but the lane is idle: the probe goes through.
        assert_eq!(gate.admit(0, 0.0, BreakerState::Open, 0, 8), Ok(()));
        // Half-open lanes admit normally.
        assert_eq!(gate.admit(0, 0.0, BreakerState::HalfOpen, 1, 8), Ok(()));
        // Gate 1 wins over the others: an empty bucket sheds even when
        // the queue is also full.
        let burst = 1.0f64.max(4.0) as u64;
        for _ in 0..burst {
            let _ = gate.admit(1, 0.0, BreakerState::Closed, 0, 8);
        }
        assert_eq!(gate.admit(1, 0.0, BreakerState::Open, 8, 8), Err(ShedReason::RateLimited));

        gate.record_outcome(0, true);
        gate.record_outcome(0, false);
        let stats = gate.into_stats();
        assert_eq!(stats[0].name, "steady");
        assert_eq!(stats[0].arrivals, 4);
        assert_eq!(stats[0].admitted, 2);
        assert_eq!(stats[0].shed.queue_full, 1);
        assert_eq!(stats[0].shed.overload, 1);
        assert_eq!(stats[0].completed, 1);
        assert_eq!(stats[0].failed, 1);
        assert_eq!(stats[1].shed.rate_limited, 1);
        assert_eq!(stats[1].shed.total(), 1);
    }
}
