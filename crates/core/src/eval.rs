//! The evaluation harness (§4): run a model over a dataset, parse its
//! free-text answers, and aggregate accuracy / miss rate overall and per
//! level.

use crate::dataset::{Dataset, QuestionDataset};
use crate::domain::TaxonomyKind;
use crate::metrics::{Metrics, Outcome};
use crate::model::{LanguageModel, Query};
use crate::parse::{parse_mcq, parse_tf, ParsedAnswer};
use crate::prompts::{render_prefix, render_prompt, render_prompt_into, PromptSetting};
use crate::question::{Question, QuestionBody, QuestionKind};
use crate::resilience::{ResiliencePolicy, ResilienceSession};
use crate::templates::TemplateVariant;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalConfig {
    /// Prompting setting (zero-shot by default).
    pub setting: PromptSetting,
    /// Template paraphrase variant (canonical by default).
    pub variant: TemplateVariant,
}

impl EvalConfig {
    /// Override the prompting setting.
    pub fn with_setting(mut self, setting: PromptSetting) -> Self {
        self.setting = setting;
        self
    }

    /// Override the template paraphrase variant.
    pub fn with_variant(mut self, variant: TemplateVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// Metrics for one child level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelMetrics {
    /// Level of the probed children.
    pub child_level: usize,
    /// Aggregated outcomes at that level.
    pub metrics: Metrics,
}

/// Result of evaluating one model on one dataset.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Probed taxonomy.
    pub taxonomy: TaxonomyKind,
    /// Dataset flavor.
    pub flavor: QuestionDataset,
    /// Prompting setting used.
    pub setting: PromptSetting,
    /// All-levels aggregate.
    pub overall: Metrics,
    /// Per-level breakdown, shallowest first (Figure 3 series).
    pub by_level: Vec<LevelMetrics>,
}

impl EvalReport {
    /// Accuracy series per level (for Figure 3 / Figure 6 plots).
    pub fn accuracy_by_level(&self) -> Vec<(usize, f64)> {
        self.by_level.iter().map(|l| (l.child_level, l.metrics.accuracy())).collect()
    }
}

impl ToJson for LevelMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("child_level", self.child_level.to_json()),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl FromJson for LevelMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LevelMetrics {
            child_level: json.field_as("child_level")?,
            metrics: json.field_as("metrics")?,
        })
    }
}

impl ToJson for EvalReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("taxonomy", self.taxonomy.to_json()),
            ("flavor", self.flavor.to_json()),
            ("setting", self.setting.to_json()),
            ("overall", self.overall.to_json()),
            ("by_level", self.by_level.to_json()),
        ])
    }
}

impl FromJson for EvalReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EvalReport {
            model: json.field_as("model")?,
            taxonomy: json.field_as("taxonomy")?,
            flavor: json.field_as("flavor")?,
            setting: json.field_as("setting")?,
            overall: json.field_as("overall")?,
            by_level: json.field_as("by_level")?,
        })
    }
}

/// Score one parsed answer against the gold answer.
pub fn score(question: &Question, parsed: ParsedAnswer) -> Outcome {
    match (&question.body, parsed) {
        // A sibling round whose gold child is not among the shown
        // options is answered *correctly* by abstaining — before the
        // blanket IDontKnow-is-a-miss arm below.
        (QuestionBody::Sibling { correct: None, .. }, ParsedAnswer::IDontKnow) => Outcome::Correct,
        (_, ParsedAnswer::IDontKnow) => Outcome::Missed,
        (QuestionBody::TrueFalse { expected_yes, .. }, ParsedAnswer::Yes) => {
            if *expected_yes {
                Outcome::Correct
            } else {
                Outcome::Wrong
            }
        }
        (QuestionBody::TrueFalse { expected_yes, .. }, ParsedAnswer::No) => {
            if *expected_yes {
                Outcome::Wrong
            } else {
                Outcome::Correct
            }
        }
        (QuestionBody::Mcq { correct, .. }, ParsedAnswer::Option(i)) => {
            if i == *correct {
                Outcome::Correct
            } else {
                Outcome::Wrong
            }
        }
        // Sibling rounds show `options.len()` children plus an abstain
        // slot at the next letter; an index at or past the child count
        // is the abstain slot (a real model answering "D)" in a
        // three-child round chose "None of the above").
        (QuestionBody::Sibling { options, correct }, ParsedAnswer::Option(i)) => {
            let abstained = (i as usize) >= options.len();
            match correct {
                Some(c) if !abstained => {
                    if i == *c {
                        Outcome::Correct
                    } else {
                        Outcome::Wrong
                    }
                }
                Some(_) => Outcome::Missed,
                None => {
                    if abstained {
                        Outcome::Correct
                    } else {
                        Outcome::Wrong
                    }
                }
            }
        }
        // Unparseable answers and answer-shape mismatches are wrong
        // answers. Spelled out arm by arm (no `_` wildcard) so adding a
        // `ParsedAnswer` variant is a compile error here, not a silent
        // Wrong.
        (_, ParsedAnswer::Unparsed) => Outcome::Wrong,
        (QuestionBody::TrueFalse { .. }, ParsedAnswer::Option(_)) => Outcome::Wrong,
        (
            QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. },
            ParsedAnswer::Yes | ParsedAnswer::No,
        ) => Outcome::Wrong,
    }
}

/// Default number of queries handed to [`LanguageModel::answer_batch`]
/// per call — large enough to amortize prefix hashing and lock traffic,
/// small enough that prompt buffers stay cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Runs models over datasets.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    config: EvalConfig,
    resilience: ResiliencePolicy,
    batch_size: usize,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::builder().build()
    }
}

/// Builder for [`Evaluator`] — the workspace's clamping `with_*`
/// idiom: a cheap default, chainable overrides that clamp rather than
/// panic, and a `build()` that cannot fail.
#[derive(Debug, Clone, Copy)]
pub struct EvaluatorBuilder {
    config: EvalConfig,
    resilience: ResiliencePolicy,
    batch_size: usize,
}

impl Default for EvaluatorBuilder {
    fn default() -> Self {
        EvaluatorBuilder {
            config: EvalConfig::default(),
            resilience: ResiliencePolicy::default(),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl EvaluatorBuilder {
    /// Override the evaluation configuration (setting + variant).
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the resilience policy applied to every model call.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Override the `answer_batch` batch size (clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Evaluator {
        Evaluator {
            config: self.config,
            resilience: self.resilience,
            batch_size: self.batch_size,
        }
    }
}

impl Evaluator {
    /// Start building an evaluator.
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::default()
    }

    /// Create an evaluator with the given configuration and the default
    /// resilience policy (3 deliveries, exponential backoff, breaker
    /// on — all invisible while models never fail).
    #[deprecated(
        since = "0.10.0",
        note = "build via Evaluator::builder(), or run through workload::WorkloadRunner"
    )]
    pub fn new(config: EvalConfig) -> Self {
        Evaluator::builder().with_config(config).build()
    }

    /// Override the resilience policy applied to every model call.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Override the `answer_batch` batch size (clamped to ≥ 1). Report
    /// bytes are identical at every batch size — batching only changes
    /// how attempt-0 deliveries are grouped, never their content.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> EvalConfig {
        self.config
    }

    /// The resilience policy in force.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// The `answer_batch` batch size in force.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Evaluate `model` on every question of `dataset`.
    pub fn run(&self, model: &dyn LanguageModel, dataset: &Dataset) -> EvalReport {
        model.reset();
        let mut overall = Metrics::default();
        let mut by_level = Vec::with_capacity(dataset.levels.len());
        let mut bufs = Vec::new();
        for slice in &dataset.levels {
            let level_metrics =
                self.eval_questions(model, &slice.questions, &slice.exemplars, &mut bufs);
            overall += level_metrics;
            by_level.push(LevelMetrics { child_level: slice.child_level, metrics: level_metrics });
        }
        EvalReport {
            model: model.name().to_owned(),
            taxonomy: dataset.taxonomy,
            flavor: dataset.flavor,
            setting: self.config.setting,
            overall,
            by_level,
        }
    }

    /// Evaluate `model` on a run of questions sharing one exemplar pool,
    /// without resetting the model first — the unit of work the grid
    /// scheduler hands out as `(cell, chunk)`. Metrics are additive, so
    /// summing chunk results in index order equals one sequential pass.
    pub fn run_questions(
        &self,
        model: &dyn LanguageModel,
        questions: &[Question],
        exemplars: &[Question],
    ) -> Metrics {
        self.eval_questions(model, questions, exemplars, &mut Vec::new())
    }

    /// The question loop behind [`Evaluator::run`] / `run_questions`:
    /// renders the few-shot prefix once for the whole run and each
    /// batch of target questions into the reused `bufs`, so the steady
    /// state allocates nothing per query.
    ///
    /// Questions are processed in batches of [`Evaluator::batch_size`]:
    /// each batch's attempt-0 deliveries are prefetched through
    /// [`LanguageModel::answer_batch`] (where models amortize prefix
    /// hashing, knowledge lookups and lock traffic), then replayed
    /// through the session **in question order** via
    /// [`ResilienceSession::call_prefetched`] — so retries, backoff and
    /// breaker state evolve exactly as in the sequential path and
    /// outcome bytes are independent of the batch size.
    ///
    /// Every run gets a *fresh* [`ResilienceSession`]: retry, backoff
    /// and breaker state are local to the question sequence, never
    /// shared across grid chunks — a chunk's outcome bytes therefore
    /// depend only on the chunk, not on worker count or scheduling.
    /// Queries the session gives up on score as [`Outcome::Failed`].
    fn eval_questions(
        &self,
        model: &dyn LanguageModel,
        questions: &[Question],
        exemplars: &[Question],
        bufs: &mut Vec<String>,
    ) -> Metrics {
        let prefix =
            render_prefix(self.config.setting, self.config.variant, exemplars, PromptSetting::SHOTS);
        let mut session = ResilienceSession::new(self.resilience);
        let mut metrics = Metrics::default();
        for chunk in questions.chunks(self.batch_size.max(1)) {
            if bufs.len() < chunk.len() {
                bufs.resize_with(chunk.len(), String::new);
            }
            for (question, buf) in chunk.iter().zip(bufs.iter_mut()) {
                render_prompt_into(question, self.config.setting, self.config.variant, &prefix, buf);
            }
            let queries: Vec<Query<'_>> = chunk
                .iter()
                .zip(bufs.iter())
                .map(|(question, buf)| {
                    Query::new(buf, question, self.config.setting).with_prefix_len(prefix.len())
                })
                .collect();
            let firsts = model.answer_batch(&queries);
            assert_eq!(
                firsts.len(),
                queries.len(),
                "answer_batch must return exactly one result per query"
            );
            for (first, query) in firsts.into_iter().zip(&queries) {
                let outcome = match session.call_prefetched(model, query, first) {
                    Ok(response) => {
                        let parsed = match query.question.kind() {
                            QuestionKind::TrueFalse => parse_tf(&response.text),
                            QuestionKind::Mcq => parse_mcq(&response.text),
                        };
                        score(query.question, parsed)
                    }
                    Err(_) => Outcome::Failed,
                };
                metrics.record(outcome);
            }
        }
        metrics
    }

    /// Ask a single question and score the response (with a one-shot
    /// resilience session).
    pub fn ask(
        &self,
        model: &dyn LanguageModel,
        question: &Question,
        exemplars: &[Question],
    ) -> Outcome {
        let prompt = render_prompt(question, self.config.setting, self.config.variant, exemplars);
        let query = Query::new(&prompt, question, self.config.setting);
        let mut session = ResilienceSession::new(self.resilience);
        match session.call(model, &query) {
            Ok(response) => {
                let parsed = match question.kind() {
                    QuestionKind::TrueFalse => parse_tf(&response.text),
                    QuestionKind::Mcq => parse_mcq(&response.text),
                };
                score(question, parsed)
            }
            Err(_) => Outcome::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn hard_dataset() -> Dataset {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 21, scale: 1.0 }).unwrap();
        DatasetBuilder::new(&t, TaxonomyKind::Ebay, 21)
            .sample_cap(Some(40))
            .build(QuestionDataset::Hard)
            .unwrap()
    }

    #[test]
    fn always_yes_gets_positive_rate_accuracy() {
        let d = hard_dataset();
        let report = Evaluator::default().run(&FixedAnswerModel::always_yes(), &d);
        let positives = d.questions().filter(|q| q.expected_yes() == Some(true)).count();
        let expected = positives as f64 / d.len() as f64;
        assert!((report.overall.accuracy() - expected).abs() < 1e-12);
        assert_eq!(report.overall.miss_rate(), 0.0);
        assert_eq!(report.overall.total(), d.len());
    }

    #[test]
    fn always_idk_has_full_miss_rate() {
        let d = hard_dataset();
        let report = Evaluator::default().run(&FixedAnswerModel::always_idk(), &d);
        assert_eq!(report.overall.accuracy(), 0.0);
        assert_eq!(report.overall.miss_rate(), 1.0);
    }

    #[test]
    fn per_level_metrics_sum_to_overall() {
        let d = hard_dataset();
        let report = Evaluator::default().run(&FixedAnswerModel::always_yes(), &d);
        let mut sum = Metrics::default();
        for l in &report.by_level {
            sum += l.metrics;
        }
        assert_eq!(sum, report.overall);
        assert_eq!(report.by_level.len(), d.levels.len());
    }

    #[test]
    fn score_matrix() {
        use crate::question::NegativeKind;
        let tf_pos = Question {
            id: 0,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "p".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate: "p".into(), expected_yes: true, negative: None },
        };
        let tf_neg = Question {
            body: QuestionBody::TrueFalse {
                candidate: "u".into(),
                expected_yes: false,
                negative: Some(NegativeKind::Hard),
            },
            ..tf_pos.clone()
        };
        let mcq = Question {
            body: QuestionBody::Mcq {
                options: ["w".into(), "p".into(), "x".into(), "y".into()],
                correct: 1,
            },
            ..tf_pos.clone()
        };
        assert_eq!(score(&tf_pos, ParsedAnswer::Yes), Outcome::Correct);
        assert_eq!(score(&tf_pos, ParsedAnswer::No), Outcome::Wrong);
        assert_eq!(score(&tf_neg, ParsedAnswer::No), Outcome::Correct);
        assert_eq!(score(&tf_neg, ParsedAnswer::Yes), Outcome::Wrong);
        assert_eq!(score(&tf_pos, ParsedAnswer::IDontKnow), Outcome::Missed);
        assert_eq!(score(&mcq, ParsedAnswer::Option(1)), Outcome::Correct);
        assert_eq!(score(&mcq, ParsedAnswer::Option(0)), Outcome::Wrong);
        assert_eq!(score(&mcq, ParsedAnswer::IDontKnow), Outcome::Missed);
        assert_eq!(score(&mcq, ParsedAnswer::Unparsed), Outcome::Wrong);
        // Answer-shape mismatches are wrong.
        assert_eq!(score(&tf_pos, ParsedAnswer::Option(0)), Outcome::Wrong);
        assert_eq!(score(&mcq, ParsedAnswer::Yes), Outcome::Wrong);
    }

    #[test]
    fn score_sibling_rounds() {
        let base = Question {
            id: 0,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "p".into(),
            instance_typing: false,
            body: QuestionBody::Sibling {
                options: vec!["w".into(), "p".into(), "x".into()],
                correct: Some(1),
            },
        };
        // Gold child shown: pick it, miss it, or abstain (the index at
        // or past the child count is the abstain slot).
        assert_eq!(score(&base, ParsedAnswer::Option(1)), Outcome::Correct);
        assert_eq!(score(&base, ParsedAnswer::Option(0)), Outcome::Wrong);
        assert_eq!(score(&base, ParsedAnswer::Option(3)), Outcome::Missed);
        assert_eq!(score(&base, ParsedAnswer::IDontKnow), Outcome::Missed);
        assert_eq!(score(&base, ParsedAnswer::Unparsed), Outcome::Wrong);
        assert_eq!(score(&base, ParsedAnswer::Yes), Outcome::Wrong);
        // Gold child not shown: abstaining is the correct answer.
        let miss = Question {
            body: QuestionBody::Sibling { options: vec!["w".into(), "x".into()], correct: None },
            ..base.clone()
        };
        assert_eq!(score(&miss, ParsedAnswer::IDontKnow), Outcome::Correct);
        assert_eq!(score(&miss, ParsedAnswer::Option(2)), Outcome::Correct);
        assert_eq!(score(&miss, ParsedAnswer::Option(0)), Outcome::Wrong);
        assert_eq!(score(&miss, ParsedAnswer::Unparsed), Outcome::Wrong);
    }
}
