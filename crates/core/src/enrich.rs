//! Taxonomy enrichment: attaching new entities with a model.
//!
//! The paper's future-work discussion (§5.1–5.2) is about using LLMs to
//! do ontology-learning work — constructing and maintaining the lower
//! levels of taxonomies. This module implements the core operation:
//! given a new entity name, find its parent concept. The
//! [`Enricher`] shortlists candidate parents by surface similarity and
//! lets the model confirm via the standard Is-A templates, so any
//! [`LanguageModel`] (simulated LLM, lexical baseline, your own) slots
//! in.
//!
//! [`evaluate_reattachment`] measures attachment quality the standard
//! way: remove sampled leaves, re-attach them, and score top-1 parent
//! accuracy plus mean reciprocal rank of the true parent in the
//! shortlist.

use crate::domain::TaxonomyKind;
use crate::model::{LanguageModel, Query};
use crate::parse::{parse_tf, ParsedAnswer};
use crate::prompts::PromptSetting;
use crate::question::{Question, QuestionBody};
use crate::sampling::cochran_sample_size;
use crate::templates::{render_question, TemplateVariant};
use taxoglimpse_synth::rng::{fork, SliceRandom};
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// A proposed attachment for one entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The entity being attached.
    pub entity: String,
    /// Chosen parent node.
    pub parent: NodeId,
    /// Whether the model confirmed the choice (vs. lexical fallback).
    pub model_confirmed: bool,
    /// Shortlist rank (0 = lexically closest) of the chosen parent.
    pub rank: usize,
}

/// Attaches new entities under the concepts of an existing taxonomy.
pub struct Enricher<'t> {
    taxonomy: &'t Taxonomy,
    kind: TaxonomyKind,
    /// Parent candidates are drawn from this level (usually the deepest
    /// internal level — new entities arrive as leaves).
    parent_level: usize,
    /// How many shortlisted candidates the model is asked about.
    shortlist: usize,
}

impl<'t> Enricher<'t> {
    /// Create an enricher attaching entities under `parent_level`
    /// concepts.
    pub fn new(taxonomy: &'t Taxonomy, kind: TaxonomyKind, parent_level: usize) -> Self {
        Enricher { taxonomy, kind, parent_level, shortlist: 4 }
    }

    /// Adjust the shortlist size (default 4).
    pub fn with_shortlist(mut self, shortlist: usize) -> Self {
        self.shortlist = shortlist.max(1);
        self
    }

    /// Rank all parent candidates for `entity` by surface similarity,
    /// best first.
    pub fn shortlist_for(&self, entity: &str) -> Vec<NodeId> {
        let mut scored: Vec<(NodeId, f64)> = self
            .taxonomy
            .nodes_at_level(self.parent_level)
            .iter()
            .map(|&n| (n, surface_score(entity, self.taxonomy.name(n))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.into_iter().map(|(n, _)| n).collect()
    }

    /// Attach `entity`: probe the model over the lexical shortlist and
    /// take the first confirmed candidate, falling back to the lexical
    /// best when the model rejects everything.
    pub fn attach(&self, entity: &str, model: &dyn LanguageModel) -> Option<Placement> {
        let ranked = self.shortlist_for(entity);
        let first = *ranked.first()?;
        for (rank, &candidate) in ranked.iter().take(self.shortlist).enumerate() {
            if self.confirm(entity, candidate, model) == ParsedAnswer::Yes {
                return Some(Placement {
                    entity: entity.to_owned(),
                    parent: candidate,
                    model_confirmed: true,
                    rank,
                });
            }
        }
        Some(Placement { entity: entity.to_owned(), parent: first, model_confirmed: false, rank: 0 })
    }

    fn confirm(&self, entity: &str, candidate: NodeId, model: &dyn LanguageModel) -> ParsedAnswer {
        let question = Question {
            id: 0,
            taxonomy: self.kind,
            child: entity.to_owned(),
            child_level: self.parent_level + 1,
            parent_level: self.parent_level,
            true_parent: self.taxonomy.name(candidate).to_owned(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: self.taxonomy.name(candidate).to_owned(),
                expected_yes: true,
                negative: None,
            },
        };
        let prompt = render_question(&question, TemplateVariant::Canonical);
        let query = Query::new(&prompt, &question, PromptSetting::ZeroShot);
        // A failed delivery reads as not-confirmed: reattachment then
        // falls back to the lexical shortlist, never to a guess.
        match model.answer(&query) {
            Ok(response) => parse_tf(&response.text),
            Err(_) => ParsedAnswer::Unparsed,
        }
    }
}

/// Result of the leaf-reattachment evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReattachmentReport {
    /// Leaves evaluated.
    pub evaluated: usize,
    /// Fraction whose chosen parent was the true parent.
    pub top1_accuracy: f64,
    /// Mean reciprocal rank of the true parent in the lexical shortlist
    /// (model-independent; measures the shortlist quality).
    pub shortlist_mrr: f64,
    /// Fraction of placements the model actively confirmed.
    pub confirmed_rate: f64,
}

/// Remove a Cochran-sized sample of leaves (capped at `cap`) and
/// re-attach them with `model`, scoring parent recovery.
pub fn evaluate_reattachment(
    taxonomy: &Taxonomy,
    kind: TaxonomyKind,
    model: &dyn LanguageModel,
    seed: u64,
    cap: Option<usize>,
) -> ReattachmentReport {
    let deepest = taxonomy.num_levels().saturating_sub(1);
    let mut leaves: Vec<NodeId> = taxonomy
        .nodes_at_level(deepest)
        .iter()
        .copied()
        .filter(|&l| taxonomy.parent(l).is_some())
        .collect();
    let mut rng = fork(seed, "reattach", kind as u64);
    leaves.shuffle(&mut rng);
    let mut n = cochran_sample_size(leaves.len());
    if let Some(cap) = cap {
        n = n.min(cap);
    }
    leaves.truncate(n);

    let parent_level = deepest.saturating_sub(1);
    let enricher = Enricher::new(taxonomy, kind, parent_level);
    let (mut top1, mut mrr_sum, mut confirmed) = (0usize, 0.0f64, 0usize);
    for &leaf in &leaves {
        let true_parent = taxonomy.parent(leaf).expect("roots were filtered");
        let entity = taxonomy.name(leaf);
        let ranked = enricher.shortlist_for(entity);
        if let Some(pos) = ranked.iter().position(|&c| c == true_parent) {
            mrr_sum += 1.0 / (pos + 1) as f64;
        }
        if let Some(placement) = enricher.attach(entity, model) {
            if placement.parent == true_parent {
                top1 += 1;
            }
            if placement.model_confirmed {
                confirmed += 1;
            }
        }
    }
    let denom = leaves.len().max(1) as f64;
    ReattachmentReport {
        evaluated: leaves.len(),
        top1_accuracy: top1 as f64 / denom,
        shortlist_mrr: mrr_sum / denom,
        confirmed_rate: confirmed as f64 / denom,
    }
}

/// Surface score combining whole-name containment and word overlap.
fn surface_score(entity: &str, concept: &str) -> f64 {
    let el = entity.to_ascii_lowercase();
    let cl = concept.to_ascii_lowercase();
    let containment = if cl.len() >= 4 && el.contains(&cl) { 1.0 } else { 0.0 };
    let ew: Vec<&str> = el.split(' ').collect();
    let cw: Vec<&str> = cl.split(' ').collect();
    let shared = cw.iter().filter(|w| ew.contains(w)).count();
    let overlap = if cw.is_empty() { 0.0 } else { shared as f64 / cw.len() as f64 };
    // Character-bigram Jaccard as a tiebreaker.
    let bigrams = |s: &str| -> Vec<(u8, u8)> {
        let b: Vec<u8> = s.bytes().collect();
        let mut grams: Vec<(u8, u8)> = b.windows(2).map(|w| (w[0], w[1])).collect();
        grams.sort_unstable();
        grams.dedup();
        grams
    };
    let (ga, gb) = (bigrams(&el), bigrams(&cl));
    let inter = ga.iter().filter(|g| gb.contains(g)).count();
    let union = ga.len() + gb.len() - inter;
    let jaccard = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
    containment * 2.0 + overlap + jaccard * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FixedAnswerModel, ModelError, Response};
    use taxoglimpse_synth::{generate, GenOptions};

    /// Oracle that confirms exactly the true parent (it compares the
    /// candidate against the entity's real parent name, which we smuggle
    /// in through a closure-free comparison: a species contains its
    /// genus, so string containment is the oracle for NCBI).
    struct ContainmentOracle;

    impl LanguageModel for ContainmentOracle {
        fn name(&self) -> &str {
            "containment-oracle"
        }

        fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
            let QuestionBody::TrueFalse { candidate, .. } = &query.question.body else {
                return Ok(Response::new("I don't know.".to_owned()));
            };
            let yes = query.question.child.to_ascii_lowercase().contains(&candidate.to_ascii_lowercase());
            Ok(Response::new(if yes { "Yes." } else { "No." }.to_owned()))
        }
    }

    #[test]
    fn ncbi_species_reattach_with_containment_oracle() {
        let t = generate(TaxonomyKind::Ncbi, GenOptions { seed: 30, scale: 0.002 }).unwrap();
        let report = evaluate_reattachment(&t, TaxonomyKind::Ncbi, &ContainmentOracle, 30, Some(60));
        assert!(report.evaluated > 0);
        // Species embed the genus: the shortlist + oracle recover almost
        // every parent.
        assert!(report.top1_accuracy > 0.9, "top1 {}", report.top1_accuracy);
        assert!(report.shortlist_mrr > 0.9, "mrr {}", report.shortlist_mrr);
        assert!(report.confirmed_rate > 0.9);
    }

    #[test]
    fn abstaining_model_falls_back_to_lexical_best() {
        let t = generate(TaxonomyKind::Oae, GenOptions { seed: 31, scale: 0.1 }).unwrap();
        let report = evaluate_reattachment(&t, TaxonomyKind::Oae, &FixedAnswerModel::always_idk(), 31, Some(40));
        assert_eq!(report.confirmed_rate, 0.0);
        // OAE children embed parent phrases, so even the pure lexical
        // fallback recovers many parents.
        assert!(report.top1_accuracy > 0.5, "top1 {}", report.top1_accuracy);
    }

    #[test]
    fn always_yes_takes_the_lexical_top_candidate() {
        let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 32, scale: 0.05 }).unwrap();
        let enricher = Enricher::new(&t, TaxonomyKind::Amazon, t.num_levels() - 2);
        let leaf = t.nodes_at_level(t.num_levels() - 1)[0];
        let placement = enricher.attach(t.name(leaf), &FixedAnswerModel::always_yes()).unwrap();
        assert!(placement.model_confirmed);
        assert_eq!(placement.rank, 0, "always-yes confirms the first candidate");
        assert_eq!(placement.parent, enricher.shortlist_for(t.name(leaf))[0]);
    }

    #[test]
    fn shortlist_ranks_true_parent_high_for_overlapping_names() {
        let t = generate(TaxonomyKind::Oae, GenOptions { seed: 33, scale: 0.1 }).unwrap();
        let deepest = t.num_levels() - 1;
        let enricher = Enricher::new(&t, TaxonomyKind::Oae, deepest - 1);
        let mut hits = 0;
        let leaves = t.nodes_at_level(deepest);
        for &leaf in leaves.iter().take(30) {
            let ranked = enricher.shortlist_for(t.name(leaf));
            let true_parent = t.parent(leaf).unwrap();
            if ranked.iter().take(4).any(|&c| c == true_parent) {
                hits += 1;
            }
        }
        assert!(hits >= 20, "true parent in top-4 for only {hits}/30 leaves");
    }

    #[test]
    fn surface_score_ordering() {
        assert!(surface_score("Verbascum chaixii", "Verbascum") > surface_score("Verbascum chaixii", "Silene"));
        assert!(
            surface_score("acute cardiac lesion AE", "cardiac lesion AE")
                > surface_score("acute cardiac lesion AE", "renal failure AE")
        );
    }

    #[test]
    fn empty_parent_level_yields_none() {
        let mut b = taxoglimpse_taxonomy::TaxonomyBuilder::new("t");
        b.add_root("only");
        let t = b.build().unwrap();
        let enricher = Enricher::new(&t, TaxonomyKind::Ebay, 5);
        assert!(enricher.attach("anything", &FixedAnswerModel::always_yes()).is_none());
    }
}
