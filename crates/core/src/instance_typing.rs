//! Instance typing (§4.5): can the model type an *instance* (a product,
//! a species, a language, a disease, an adverse event) against each
//! ancestor level of its leaf concept?
//!
//! For an instance `i` under entity `e_k` at level `k`, the paper keeps
//! the pairs `(i → e_k), (i → e_k.p), …, (i → e_k.r)`, labelled with the
//! target entity's level, and generates hard (sibling-of-target) and
//! easy (random same-level) negatives exactly like §2.2.
//!
//! The produced [`Dataset`] reuses the standard machinery, with one
//! convention change: each [`crate::dataset::LevelSlice`]'s
//! `child_level` holds the **target ancestor level** (the Figure-6
//! x-axis), not the instance's own level. Only Easy and Hard flavors
//! exist (the paper does not run MCQ instance typing), and only
//! zero-shot prompting is reported, so the slices carry no exemplars.

use crate::dataset::{Dataset, LevelSlice, QuestionDataset};
use crate::domain::TaxonomyKind;
use crate::question::{NegativeKind, Question, QuestionBody};
use crate::sampling::cochran_sample_size;
use std::fmt;
use taxoglimpse_synth::instances::InstanceGenerator;
use taxoglimpse_synth::rng::{fork, SliceRandom};
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// Errors from instance-typing dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceTypingError {
    /// This taxonomy is excluded from instance typing (eBay, Schema.org,
    /// ACM-CCS, GeoNames).
    Unsupported(TaxonomyKind),
    /// Instance typing has no MCQ flavor in the paper.
    McqNotDefined,
}

impl fmt::Display for InstanceTypingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceTypingError::Unsupported(k) => {
                write!(f, "{k} has no valid instances (paper §4.5 skips it)")
            }
            InstanceTypingError::McqNotDefined => {
                write!(f, "instance typing uses True/False questions only")
            }
        }
    }
}

impl std::error::Error for InstanceTypingError {}

/// Builds instance-typing datasets.
#[derive(Debug)]
pub struct InstanceTypingBuilder<'t> {
    taxonomy: &'t Taxonomy,
    kind: TaxonomyKind,
    seed: u64,
    sample_cap: Option<usize>,
}

impl<'t> InstanceTypingBuilder<'t> {
    /// Create a builder; fails for the four excluded taxonomies.
    #[deprecated(
        since = "0.10.0",
        note = "run through workload::InstanceTypingWorkload with a WorkloadContext instead"
    )]
    pub fn new(
        taxonomy: &'t Taxonomy,
        kind: TaxonomyKind,
        seed: u64,
    ) -> Result<Self, InstanceTypingError> {
        if !kind.has_instances() {
            return Err(InstanceTypingError::Unsupported(kind));
        }
        Ok(InstanceTypingBuilder { taxonomy, kind, seed, sample_cap: None })
    }

    /// Cap the number of sampled leaf concepts (for quick runs).
    pub fn sample_cap(mut self, cap: Option<usize>) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Build the Easy or Hard instance-typing dataset.
    pub fn build(&self, flavor: QuestionDataset) -> Result<Dataset, InstanceTypingError> {
        build_dataset(self.taxonomy, self.kind, self.seed, self.sample_cap, flavor)
    }
}

/// Build the Easy or Hard instance-typing dataset — the single
/// construction path shared by the deprecated builder shim and
/// [`crate::workload::InstanceTypingWorkload`].
pub(crate) fn build_dataset(
    t: &Taxonomy,
    kind: TaxonomyKind,
    seed: u64,
    sample_cap: Option<usize>,
    flavor: QuestionDataset,
) -> Result<Dataset, InstanceTypingError> {
    if !kind.has_instances() {
        return Err(InstanceTypingError::Unsupported(kind));
    }
    if flavor == QuestionDataset::Mcq {
        return Err(InstanceTypingError::McqNotDefined);
    }
    let generator =
        InstanceGenerator::new(kind, seed).expect("has_instances was checked above");

    // Sample leaf concepts with the §2.2 confidence/margin.
    let mut leaves = t.leaves();
    let mut rng = fork(seed ^ (kind as u64) << 16, "instance-typing", 0);
    leaves.shuffle(&mut rng);
    let mut n = cochran_sample_size(leaves.len());
    if let Some(cap) = sample_cap {
        n = n.min(cap);
    }
    leaves.truncate(n);

    let instances = generator.instances_for(t, &leaves, 1);

    // Group questions by target ancestor level.
    let mut slices: Vec<Vec<Question>> = vec![Vec::new(); t.num_levels()];
    let mut next_id = 1u64 << 48;
    for instance in &instances {
        // For synthesized instances (products) the leaf concept itself
        // is the first target; for leaf-as-instance taxonomies the
        // instance *is* the leaf, so targets start at its parent.
        let anchor: NodeId = if generator.synthesizes() {
            instance.leaf
        } else {
            match t.parent(instance.leaf) {
                Some(p) => p,
                None => continue,
            }
        };
        let instance_level = t.level(anchor) + 1;
        for target in std::iter::once(anchor).chain(t.ancestors(anchor)) {
            let target_level = t.level(target);
            // Positive.
            slices[target_level].push(Question {
                id: post_inc(&mut next_id),
                taxonomy: kind,
                child: instance.name.clone(),
                child_level: instance_level,
                parent_level: target_level,
                true_parent: t.name(target).to_owned(),
                instance_typing: true,
                body: QuestionBody::TrueFalse {
                    candidate: t.name(target).to_owned(),
                    expected_yes: true,
                    negative: None,
                },
            });
            // Negative.
            let negative = match flavor {
                QuestionDataset::Hard => {
                    let sibs = t.siblings(target);
                    sibs.choose(&mut rng).copied()
                }
                QuestionDataset::Easy => {
                    let pool = t.nodes_at_level(target_level);
                    pool.choose(&mut rng).copied().filter(|&c| c != target)
                }
                // lint:allow(P001, Mcq is rejected by the guard at the top of build_dataset before this match runs)
                QuestionDataset::Mcq => unreachable!("rejected above"),
            };
            if let Some(neg) = negative {
                slices[target_level].push(Question {
                    id: post_inc(&mut next_id),
                    taxonomy: kind,
                    child: instance.name.clone(),
                    child_level: instance_level,
                    parent_level: target_level,
                    true_parent: t.name(target).to_owned(),
                    instance_typing: true,
                    body: QuestionBody::TrueFalse {
                        candidate: t.name(neg).to_owned(),
                        expected_yes: false,
                        negative: Some(match flavor {
                            QuestionDataset::Hard => NegativeKind::Hard,
                            _ => NegativeKind::Easy,
                        }),
                    },
                });
            }
        }
    }

    let levels = slices
        .into_iter()
        .enumerate()
        .filter(|(_, qs)| !qs.is_empty())
        .map(|(level, questions)| LevelSlice { child_level: level, questions, exemplars: Vec::new() })
        .collect();
    Ok(Dataset { taxonomy: kind, flavor, levels })
}

fn post_inc(v: &mut u64) -> u64 {
    let out = *v;
    *v += 1;
    out
}

#[cfg(test)]
// The deprecated builder shim must keep working for one PR; its tests
// exercise it deliberately.
#[allow(deprecated)]
mod tests {
    use super::*;
    use taxoglimpse_synth::{generate, GenOptions};

    #[test]
    fn excluded_taxonomies_are_rejected() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 1, scale: 0.2 }).unwrap();
        let err = InstanceTypingBuilder::new(&t, TaxonomyKind::Ebay, 1).unwrap_err();
        assert_eq!(err, InstanceTypingError::Unsupported(TaxonomyKind::Ebay));
    }

    #[test]
    fn mcq_flavor_is_rejected() {
        let t = generate(TaxonomyKind::Google, GenOptions { seed: 1, scale: 0.05 }).unwrap();
        let b = InstanceTypingBuilder::new(&t, TaxonomyKind::Google, 1).unwrap();
        assert_eq!(b.build(QuestionDataset::Mcq).unwrap_err(), InstanceTypingError::McqNotDefined);
    }

    #[test]
    fn product_instances_are_typed_at_every_ancestor_level() {
        let t = generate(TaxonomyKind::Google, GenOptions { seed: 2, scale: 0.05 }).unwrap();
        let b = InstanceTypingBuilder::new(&t, TaxonomyKind::Google, 2)
            .unwrap()
            .sample_cap(Some(30));
        let d = b.build(QuestionDataset::Hard).unwrap();
        assert!(!d.is_empty());
        // Every question is instance typing and every slice level is a
        // valid taxonomy level.
        for slice in &d.levels {
            assert!(slice.child_level < t.num_levels());
            for q in &slice.questions {
                assert!(q.instance_typing);
                assert_eq!(q.parent_level, slice.child_level);
            }
        }
        // Root-level slice must exist (everything chains to a root).
        assert!(d.levels.iter().any(|s| s.child_level == 0));
    }

    #[test]
    fn leaf_as_instance_taxonomies_skip_the_leaf_level() {
        let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 3, scale: 0.02 }).unwrap();
        let b = InstanceTypingBuilder::new(&t, TaxonomyKind::Glottolog, 3)
            .unwrap()
            .sample_cap(Some(30));
        let d = b.build(QuestionDataset::Hard).unwrap();
        // The instance IS the leaf, so no slice targets the deepest level.
        let deepest = t.num_levels() - 1;
        assert!(d.levels.iter().all(|s| s.child_level < deepest));
    }

    #[test]
    fn positives_and_negatives_are_balanced() {
        let t = generate(TaxonomyKind::Icd10Cm, GenOptions { seed: 4, scale: 0.1 }).unwrap();
        let b = InstanceTypingBuilder::new(&t, TaxonomyKind::Icd10Cm, 4)
            .unwrap()
            .sample_cap(Some(50));
        let d = b.build(QuestionDataset::Easy).unwrap();
        let pos = d.questions().filter(|q| q.expected_yes() == Some(true)).count();
        let neg = d.len() - pos;
        assert!(pos > 0 && neg > 0);
        assert!(neg <= pos);
        assert!(neg as f64 / pos as f64 > 0.8, "{neg}/{pos}");
    }

    #[test]
    fn deterministic() {
        let t = generate(TaxonomyKind::Oae, GenOptions { seed: 5, scale: 0.05 }).unwrap();
        let mk = || {
            InstanceTypingBuilder::new(&t, TaxonomyKind::Oae, 5)
                .unwrap()
                .sample_cap(Some(20))
                .build(QuestionDataset::Hard)
                .unwrap()
        };
        assert_eq!(
            taxoglimpse_json::to_string(&mk()).unwrap(),
            taxoglimpse_json::to_string(&mk()).unwrap()
        );
    }
}
