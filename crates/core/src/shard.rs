//! Sharded scale-out: one logical benchmark over partitioned work.
//!
//! The grid runner parallelizes *within* one process-wide question
//! list; this module partitions the work itself across shard workers
//! behind a deterministic router, at two levels:
//!
//! * **Grid-level** ([`run_grid_sharded`]): the (model × taxonomy) grid
//!   is split into shards, each owning a disjoint set of cells with its
//!   own [`crate::grid::GridRunner`] (labelled via
//!   `GridRunnerBuilder::with_shard_id` so panics stay attributable),
//!   its own response cache and its own per-chunk circuit breakers.
//!   A cell's shard is a pure function of `(model name, taxonomy)`
//!   content, so the assignment is identical on every machine and run.
//! * **Taxonomy-level** ([`run_sharded`]): one big dataset (NCBI/ICD
//!   scale) is split into content-keyed subtree slots
//!   ([`SubtreePartition`]), each shard evaluates the slots it owns,
//!   and the per-shard reports merge back (in shard-index order, slot
//!   ascending within each shard) into one logical report.
//!
//! # The determinism argument
//!
//! Merged reports must be **byte-identical across shard counts
//! {1, 2, 8}** — the same proof obligation as PR 4's `generate_par`,
//! one level up. The construction:
//!
//! 1. Work is keyed to a **fixed pool of [`NUM_SLOTS`] virtual slots**,
//!    never directly to shards. Slot membership is derived from content
//!    (taxonomy subtree names, or `(model, taxonomy)` identity for grid
//!    cells) — never from thread identity, timing, or the shard count.
//! 2. Shard `s` of `S` owns exactly the slots `{p : p mod S == s}`.
//!    Changing `S` regroups slots across workers but cannot move a
//!    question between slots.
//! 3. Every `(slot, level)` run is its own evaluation unit with a
//!    *fresh* resilience session ([`Evaluator::run_questions`]), so
//!    retry/backoff/breaker state — and therefore every attempt number
//!    a fault stream sees — depends only on the slot's own question
//!    sequence. Fault decisions themselves are pure functions of
//!    `(plan, model, taxonomy, question id, attempt)`, and response
//!    caches are proven byte-transparent, so per-shard caches with
//!    different hit patterns still cannot perturb outcome bytes.
//! 4. Metrics are additive counters summed per level in slot order;
//!    per-slot bytes are shard-count-invariant by (1)–(3), hence so is
//!    any ordered sum over them.
//!
//! `tests/shard.rs` proves the property across shard counts × worker
//! counts × cache on/off × a 20% fault plan; `bench_shard` enforces it
//! in-run on every benchmark execution and commits the digests.

use crate::dataset::{Dataset, LevelSlice};
use crate::domain::TaxonomyKind;
use crate::eval::{EvalReport, Evaluator, LevelMetrics};
use crate::grid::{GridCell, GridRunnerBuilder};
use crate::metrics::Metrics;
use crate::model::LanguageModel;
use std::collections::BTreeMap;
use taxoglimpse_synth::rng::hash_str;
use taxoglimpse_taxonomy::partition::SubtreePartition;
use taxoglimpse_taxonomy::Taxonomy;

/// The fixed number of virtual slots work is partitioned into. Shards
/// own slots, never raw questions or cells — this indirection is what
/// keeps partition membership independent of the shard count (any
/// count up to `NUM_SLOTS` divides the pool without re-keying it).
pub const NUM_SLOTS: usize = 64;

/// Seed for hashing a grid cell's `(model name, taxonomy)` identity
/// into a slot.
const CELL_SLOT_SEED: u64 = 0x5AAD_CE11_0000_0001;

/// Seed for routing a question whose child name has no node at its
/// level in the routing taxonomy (e.g. instance names).
const NAME_SLOT_SEED: u64 = 0x5AAD_CE11_0000_0002;

/// Routes slots (and through them, cells and subtrees) to shards.
///
/// The router is intentionally trivial — `slot mod num_shards` — so
/// that the *entire* placement policy lives in the content-keyed
/// slot assignment and changing the shard count can only regroup
/// slots, never re-key them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards (clamped to ≥ 1).
    pub fn new(num_shards: usize) -> Self {
        ShardRouter { num_shards: num_shards.max(1) }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `slot`.
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        slot % self.num_shards
    }

    /// Whether `shard` owns `slot`.
    pub fn owns(&self, shard: usize, slot: usize) -> bool {
        self.shard_of_slot(slot) == shard
    }

    /// The slot of a grid cell, keyed purely by `(model name,
    /// taxonomy)` content.
    pub fn cell_slot(model_name: &str, taxonomy: TaxonomyKind) -> usize {
        let mut key = String::with_capacity(model_name.len() + 16);
        key.push_str(model_name);
        key.push('\u{1f}');
        key.push_str(taxonomy.label());
        (hash_str(CELL_SLOT_SEED, &key) % NUM_SLOTS as u64) as usize
    }

    /// The shard owning a grid cell.
    pub fn shard_of_cell(&self, model_name: &str, taxonomy: TaxonomyKind) -> usize {
        self.shard_of_slot(Self::cell_slot(model_name, taxonomy))
    }
}

/// One dataset split into [`NUM_SLOTS`] per-slot sub-datasets along a
/// content-keyed [`SubtreePartition`].
///
/// Every slot dataset keeps the *full* per-level structure of the
/// source (same levels, same exemplar pools) so rendered prompts are
/// byte-identical to the unsharded run; only the evaluation questions
/// are split. Empty slots keep empty levels — structure, not content,
/// is what must stay uniform.
#[derive(Debug, Clone)]
pub struct ShardedDataset {
    slots: Vec<Dataset>,
    questions: usize,
}

impl ShardedDataset {
    /// Split `dataset` (built over `taxonomy`) along `partition`.
    ///
    /// Questions are routed by their child entity: a question lands in
    /// the slot of the taxonomy node carrying its child's name at its
    /// child level (first node in structural order when a name repeats
    /// at a level — a deterministic, content-derived tie-break).
    /// Child names with no node at that level (instance-typing
    /// questions probe instances, not nodes) fall back to a pure
    /// name-hash slot.
    pub fn partition(
        dataset: &Dataset,
        taxonomy: &Taxonomy,
        partition: &SubtreePartition,
    ) -> ShardedDataset {
        let num_slots = partition.num_slots();
        // Name → slot, per level, resolved first-in-structural-order.
        let mut name_slot: BTreeMap<(usize, &str), usize> = BTreeMap::new();
        for level in 0..taxonomy.num_levels() {
            for &node in taxonomy.nodes_at_level(level) {
                name_slot.entry((level, taxonomy.name(node))).or_insert(partition.slot_of(node));
            }
        }

        let mut slots: Vec<Dataset> = (0..num_slots)
            .map(|_| Dataset {
                taxonomy: dataset.taxonomy,
                flavor: dataset.flavor,
                levels: dataset
                    .levels
                    .iter()
                    .map(|slice| LevelSlice {
                        child_level: slice.child_level,
                        questions: Vec::new(),
                        exemplars: slice.exemplars.clone(),
                    })
                    .collect(),
            })
            .collect();

        let mut questions = 0usize;
        for (li, slice) in dataset.levels.iter().enumerate() {
            for question in &slice.questions {
                let slot = match name_slot.get(&(question.child_level, question.child.as_str())) {
                    Some(&slot) => slot,
                    None => (hash_str(NAME_SLOT_SEED, &question.child) % num_slots as u64) as usize,
                };
                slots[slot].levels[li].questions.push(question.clone());
                questions += 1;
            }
        }
        ShardedDataset { slots, questions }
    }

    /// Number of slots (the partition's, typically [`NUM_SLOTS`]).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The sub-dataset owned by `slot`.
    pub fn slot(&self, slot: usize) -> &Dataset {
        &self.slots[slot]
    }

    /// Total evaluation questions across all slots (equals the source
    /// dataset's count — partitioning never drops a question).
    pub fn len(&self) -> usize {
        self.questions
    }

    /// Whether the partitioned dataset holds no questions.
    pub fn is_empty(&self) -> bool {
        self.questions == 0
    }

    /// Number of slots holding at least one question.
    pub fn occupied_slots(&self) -> usize {
        self.slots.iter().filter(|d| !d.is_empty()).count()
    }
}

/// One shard's share of a taxonomy-level sharded run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard index (0-based, dense).
    pub shard: usize,
    /// The slots this shard owned (ascending).
    pub slots: Vec<usize>,
    /// Questions this shard evaluated.
    pub questions: usize,
    /// The shard's partial report: full level structure, metrics only
    /// from the shard's own slots.
    pub report: EvalReport,
}

/// Evaluate one [`ShardedDataset`] across `shard_models.len()` shards —
/// shard `s` runs `shard_models[s]` over the slots `{p : p mod S == s}`
/// in ascending slot order, each `(slot, level)` as its own evaluation
/// unit — and return the per-shard partial runs in shard-index order.
///
/// The model stacks must be functionally identical (same underlying
/// model and fault plan per shard; per-shard caches and breakers are
/// fine — both are byte-transparent). Merge the partial reports with
/// `taxoglimpse_report::merge::merge_reports`; the module docs carry
/// the proof that the merged bytes are independent of the shard count.
///
/// A panic inside one slot's evaluation surfaces with the owning
/// `(shard, slot, level)` identity so failures in sharded runs remain
/// attributable.
pub fn run_sharded(
    evaluator: &Evaluator,
    shard_models: &[&dyn LanguageModel],
    sharded: &ShardedDataset,
) -> Vec<ShardRun> {
    assert!(!shard_models.is_empty(), "run_sharded needs at least one shard model");
    let num_shards = shard_models.len();
    let router = ShardRouter::new(num_shards);
    for model in shard_models {
        model.reset();
    }

    // One worker per shard; handles joined in shard-index order, so
    // assembly order is fixed regardless of which shard finishes first.
    let mut runs: Vec<ShardRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_models
            .iter()
            .enumerate()
            .map(|(shard, model)| {
                let router = router;
                scope.spawn(move || run_one_shard(evaluator, shard, &router, *model, sharded))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(run) => run,
                // Re-raise the labelled per-slot payload unchanged.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    runs.sort_by_key(|r| r.shard);
    runs
}

/// Evaluate the slots `shard` owns, ascending, one `(slot, level)` per
/// [`Evaluator::run_questions`] call.
fn run_one_shard(
    evaluator: &Evaluator,
    shard: usize,
    router: &ShardRouter,
    model: &dyn LanguageModel,
    sharded: &ShardedDataset,
) -> ShardRun {
    // The level template is uniform across slots by construction; take
    // it from slot 0 (an empty partition still has its level skeleton).
    let template: Vec<usize> = sharded
        .slot(0)
        .levels
        .iter()
        .map(|s| s.child_level)
        .collect();
    let mut by_level: Vec<LevelMetrics> = template
        .iter()
        .map(|&child_level| LevelMetrics { child_level, metrics: Metrics::default() })
        .collect();
    let mut slots = Vec::new();
    let mut questions = 0usize;

    for slot in 0..sharded.num_slots() {
        if !router.owns(shard, slot) {
            continue;
        }
        slots.push(slot);
        let dataset = sharded.slot(slot);
        for (li, slice) in dataset.levels.iter().enumerate() {
            if slice.questions.is_empty() {
                continue;
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                evaluator.run_questions(model, &slice.questions, &slice.exemplars)
            }));
            let metrics = match outcome {
                Ok(metrics) => metrics,
                // lint:allow(P001, deliberate re-panic - a shard worker panic is re-raised with its shard and slot context)
                Err(payload) => panic!(
                    "shard {shard} slot {slot} (model `{}`, taxonomy {:?}, level {}): {}",
                    model.name(),
                    dataset.taxonomy,
                    slice.child_level,
                    crate::grid::panic_message(payload.as_ref()),
                ),
            };
            by_level[li].metrics += metrics;
            questions += slice.questions.len();
        }
    }

    let mut overall = Metrics::default();
    for level in &by_level {
        overall += level.metrics;
    }
    let template_dataset = sharded.slot(0);
    ShardRun {
        shard,
        slots,
        questions,
        report: EvalReport {
            model: model.name().to_owned(),
            taxonomy: template_dataset.taxonomy,
            flavor: template_dataset.flavor,
            setting: evaluator.config().setting,
            overall,
            by_level,
        },
    }
}

/// Partition the row-major (model × dataset) cell grid into per-shard
/// cell lists by content-keyed cell slots. Returns `router.num_shards()`
/// lists; within each, cells keep their global row-major order. Also
/// returns each cell's global index for reassembly.
pub fn shard_cells(
    router: &ShardRouter,
    model_names: &[&str],
    datasets: &[&Dataset],
) -> Vec<Vec<(usize, GridCell)>> {
    let mut shards: Vec<Vec<(usize, GridCell)>> = vec![Vec::new(); router.num_shards()];
    for (m, name) in model_names.iter().enumerate() {
        for (d, dataset) in datasets.iter().enumerate() {
            let shard = router.shard_of_cell(name, dataset.taxonomy);
            let global = m * datasets.len() + d;
            shards[shard].push((global, GridCell { model: m, dataset: d }));
        }
    }
    shards
}

/// Run the full (model × dataset) grid as `shard_models.len()` shards,
/// each with its own [`crate::grid::GridRunner`] built from `builder`
/// (labelled with its shard id), and reassemble the per-cell reports in
/// global row-major order — byte-identical to an unsharded
/// `run_cross` with the same per-cell model stacks.
///
/// `shard_models[s]` is shard `s`'s model stack: one entry per logical
/// model, same length and same model *names* across shards (each shard
/// typically wraps the shared base models in its own cache). Cell
/// ownership is routed by `(model name, taxonomy)` content via
/// [`ShardRouter::cell_slot`], so the placement is reproducible
/// everywhere.
pub fn run_grid_sharded(
    builder: GridRunnerBuilder,
    shard_models: &[Vec<&dyn LanguageModel>],
    datasets: &[&Dataset],
) -> Vec<EvalReport> {
    assert!(!shard_models.is_empty(), "run_grid_sharded needs at least one shard");
    let num_models = shard_models[0].len();
    for (shard, models) in shard_models.iter().enumerate() {
        assert!(
            models.len() == num_models,
            "shard {shard} has {} models, expected {num_models}: every shard must carry \
             the same logical model stack",
            models.len(),
        );
        for (m, model) in models.iter().enumerate() {
            assert!(
                model.name() == shard_models[0][m].name(),
                "shard {shard} model {m} is `{}` but shard 0 has `{}`: stacks must agree by name",
                model.name(),
                shard_models[0][m].name(),
            );
        }
    }

    let router = ShardRouter::new(shard_models.len());
    let names: Vec<&str> = shard_models[0].iter().map(|m| m.name()).collect();
    let sharded_cells = shard_cells(&router, &names, datasets);

    let mut results: Vec<Option<EvalReport>> = (0..num_models * datasets.len())
        .map(|_| None)
        .collect();
    let shard_reports: Vec<(usize, Vec<EvalReport>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sharded_cells
            .iter()
            .enumerate()
            .map(|(shard, owned)| {
                let models = &shard_models[shard];
                scope.spawn(move || {
                    let cells: Vec<GridCell> = owned.iter().map(|&(_, cell)| cell).collect();
                    let runner = builder.with_shard_id(shard).build();
                    (shard, runner.run_cells(models, datasets, &cells))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(reports) => reports,
                // run_cells already labels failures with the shard id.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    for (shard, reports) in shard_reports {
        for (&(global, _), report) in sharded_cells[shard].iter().zip(reports) {
            results[global] = Some(report);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every grid cell is owned by exactly one shard"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, QuestionDataset};
    use crate::model::FixedAnswerModel;
    use taxoglimpse_json::to_string;
    use taxoglimpse_synth::{generate, GenOptions};

    fn taxonomy() -> Taxonomy {
        generate(TaxonomyKind::Ebay, GenOptions { seed: 31, scale: 1.0 })
            .expect("ebay generation succeeds at scale 1")
    }

    fn dataset(t: &Taxonomy) -> Dataset {
        DatasetBuilder::new(t, TaxonomyKind::Ebay, 31)
            .sample_cap(Some(40))
            .build(QuestionDataset::Hard)
            .expect("ebay dataset builds")
    }

    #[test]
    fn partitioning_preserves_every_question() {
        let t = taxonomy();
        let d = dataset(&t);
        let p = SubtreePartition::new(&t, NUM_SLOTS);
        let sharded = ShardedDataset::partition(&d, &t, &p);
        assert_eq!(sharded.len(), d.len());
        assert_eq!(sharded.num_slots(), NUM_SLOTS);
        assert!(sharded.occupied_slots() > 1, "ebay should spread over multiple slots");
        let total: usize = (0..sharded.num_slots()).map(|s| sharded.slot(s).len()).sum();
        assert_eq!(total, d.len());
        // Every slot keeps the full level skeleton and exemplar pools.
        for s in 0..sharded.num_slots() {
            let slot = sharded.slot(s);
            assert_eq!(slot.levels.len(), d.levels.len());
            for (a, b) in slot.levels.iter().zip(&d.levels) {
                assert_eq!(a.child_level, b.child_level);
                assert_eq!(a.exemplars.len(), b.exemplars.len());
            }
        }
    }

    #[test]
    fn merged_metrics_equal_unsharded_run_for_every_shard_count() {
        let t = taxonomy();
        let d = dataset(&t);
        let p = SubtreePartition::new(&t, NUM_SLOTS);
        let sharded = ShardedDataset::partition(&d, &t, &p);
        let evaluator = Evaluator::default();
        let model = FixedAnswerModel::always_yes();

        let baseline = evaluator.run(&model, &d);
        for shards in [1usize, 2, 8] {
            let stacks: Vec<&dyn LanguageModel> = (0..shards).map(|_| &model as _).collect();
            let runs = run_sharded(&evaluator, &stacks, &sharded);
            assert_eq!(runs.len(), shards);
            let mut overall = Metrics::default();
            let mut questions = 0usize;
            for (s, run) in runs.iter().enumerate() {
                assert_eq!(run.shard, s);
                assert!(run.slots.iter().all(|&slot| slot % shards == s));
                overall += run.report.overall;
                questions += run.questions;
            }
            assert_eq!(questions, d.len());
            // A stateless model answers identically under any grouping,
            // so the merged counters must equal the unsharded run's.
            assert_eq!(overall, baseline.overall);
        }
    }

    #[test]
    fn grid_sharding_is_byte_identical_to_unsharded_cross() {
        let t = taxonomy();
        let t2 = generate(TaxonomyKind::GeoNames, GenOptions { seed: 31, scale: 1.0 })
            .expect("geonames generation succeeds at scale 1");
        let ds = [
            dataset(&t),
            DatasetBuilder::new(&t2, TaxonomyKind::GeoNames, 31)
                .sample_cap(Some(30))
                .build(QuestionDataset::Hard)
                .expect("geonames dataset builds"),
        ];
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let idk = FixedAnswerModel::always_idk();
        let models: Vec<&dyn LanguageModel> = vec![&yes, &idk];

        let builder = GridRunnerBuilder::default().with_threads(2).with_chunk_size(16);
        let baseline = builder.build().run_cross(&models, &dataset_refs);
        let baseline_json: Vec<String> =
            baseline.iter().map(|r| to_string(r).expect("report serializes")).collect();

        for shards in [1usize, 2, 8] {
            let stacks: Vec<Vec<&dyn LanguageModel>> = (0..shards).map(|_| models.clone()).collect();
            let sharded = run_grid_sharded(builder, &stacks, &dataset_refs);
            let sharded_json: Vec<String> =
                sharded.iter().map(|r| to_string(r).expect("report serializes")).collect();
            assert_eq!(sharded_json, baseline_json, "{shards}-shard grid must match unsharded");
        }
    }

    #[test]
    fn cell_routing_is_content_keyed_and_exhaustive() {
        let router = ShardRouter::new(3);
        assert_eq!(router.num_shards(), 3);
        for kind in TaxonomyKind::ALL {
            let slot = ShardRouter::cell_slot("GPT-4", kind);
            assert!(slot < NUM_SLOTS);
            assert_eq!(slot, ShardRouter::cell_slot("GPT-4", kind), "slot must be stable");
            assert_eq!(router.shard_of_cell("GPT-4", kind), slot % 3);
            assert!(router.owns(slot % 3, slot));
        }
        // Zero shards clamps to one, the degenerate single-owner router.
        assert_eq!(ShardRouter::new(0).num_shards(), 1);
    }

    #[test]
    fn sharded_panic_carries_shard_slot_and_level() {
        struct Bomb;
        impl LanguageModel for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn answer(
                &self,
                _query: &crate::model::Query<'_>,
            ) -> Result<crate::model::Response, crate::model::ModelError> {
                panic!("synthetic shard failure")
            }
        }
        let t = taxonomy();
        let d = dataset(&t);
        let p = SubtreePartition::new(&t, NUM_SLOTS);
        let sharded = ShardedDataset::partition(&d, &t, &p);
        let evaluator = Evaluator::default();
        let bomb = Bomb;
        let stacks: Vec<&dyn LanguageModel> = vec![&bomb, &bomb];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded(&evaluator, &stacks, &sharded)
        }));
        let payload = result.expect_err("sharded run must surface the failure");
        let message = crate::grid::panic_message(payload.as_ref());
        assert!(message.starts_with("shard "), "panic must lead with the shard id: {message}");
        assert!(message.contains(" slot "), "panic must name the slot: {message}");
        assert!(message.contains("model `bomb`"), "{message}");
        assert!(message.contains("synthetic shard failure"), "{message}");
    }
}
