//! Question generation (§2.2).
//!
//! For each sampled child entity `e_n` at level `n`:
//!
//! * **positive** — its true parent `e_n.p`;
//! * **negative-easy** — a random level-`n-1` entity other than `e_n.p`;
//! * **negative-hard** — a random *uncle* (sibling of `e_n.p`);
//! * **MCQ** — `e_n.p` plus three distinct uncles as distractors.
//!
//! Children without any uncle are skipped for hard negatives (this is why
//! the paper's hard datasets are occasionally a few questions smaller
//! than the easy ones, e.g. Google 2134 vs 2150). When fewer than three
//! uncles exist for MCQ, distractors are topped up from the rest of the
//! parent level.

use crate::domain::TaxonomyKind;
use crate::question::{NegativeKind, Question, QuestionBody};
use taxoglimpse_synth::rng::{fork, Rng, SliceRandom, SynthRng};
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// Generates questions for one taxonomy.
#[derive(Debug)]
pub struct QuestionGenerator<'t> {
    taxonomy: &'t Taxonomy,
    kind: TaxonomyKind,
    seed: u64,
}

impl<'t> QuestionGenerator<'t> {
    /// Create a generator over `taxonomy`.
    pub fn new(taxonomy: &'t Taxonomy, kind: TaxonomyKind, seed: u64) -> Self {
        QuestionGenerator { taxonomy, kind, seed }
    }

    /// The underlying taxonomy.
    pub fn taxonomy(&self) -> &'t Taxonomy {
        self.taxonomy
    }

    /// Sample `count` distinct child entities at `child_level`
    /// (deterministic for a fixed seed).
    pub fn sample_children(&self, child_level: usize, count: usize) -> Vec<NodeId> {
        let pool = self.taxonomy.nodes_at_level(child_level);
        let mut rng = self.level_rng(child_level, "sample");
        let mut ids: Vec<NodeId> = pool.to_vec();
        ids.shuffle(&mut rng);
        ids.truncate(count.min(ids.len()));
        ids
    }

    fn level_rng(&self, child_level: usize, tag: &str) -> SynthRng {
        fork(self.seed ^ (self.kind as u64) << 32, tag, child_level as u64)
    }

    /// Positive question for `child`.
    pub fn positive(&self, child: NodeId, id: u64) -> Question {
        let t = self.taxonomy;
        let parent = t.parent(child).expect("positive questions need a non-root child");
        self.tf_question(id, child, t.name(parent).to_owned(), true, None)
    }

    /// Negative-easy question: candidate drawn uniformly from the parent
    /// level minus the true parent. Returns `None` if the parent level
    /// has no other node.
    pub fn negative_easy(&self, child: NodeId, id: u64, rng: &mut SynthRng) -> Option<Question> {
        let t = self.taxonomy;
        let parent = t.parent(child)?;
        let pool = t.nodes_at_level(t.level(parent));
        if pool.len() < 2 {
            return None;
        }
        // Sibling names are unique but global names need not be: a
        // candidate whose *name* equals the true parent's would make the
        // negative unanswerable, so filter by name, with a bounded retry.
        let candidate = (0..64).find_map(|_| {
            let &c = pool.choose(rng).expect("nonempty pool");
            (c != parent && t.name(c) != t.name(parent)).then_some(c)
        })?;
        Some(self.tf_question(id, child, t.name(candidate).to_owned(), false, Some(NegativeKind::Easy)))
    }

    /// Negative-hard question: candidate drawn from the uncles. Returns
    /// `None` if the child has no uncles.
    pub fn negative_hard(&self, child: NodeId, id: u64, rng: &mut SynthRng) -> Option<Question> {
        let t = self.taxonomy;
        let parent = t.parent(child)?;
        let uncles: Vec<NodeId> = t
            .uncles(child)
            .into_iter()
            .filter(|&u| t.name(u) != t.name(parent))
            .collect();
        let &candidate = uncles.choose(rng)?;
        Some(self.tf_question(id, child, t.name(candidate).to_owned(), false, Some(NegativeKind::Hard)))
    }

    /// MCQ: true parent plus three distractors (uncles first, topped up
    /// from the parent level). Returns `None` if fewer than three
    /// distinct distractors exist.
    pub fn mcq(&self, child: NodeId, id: u64, rng: &mut SynthRng) -> Option<Question> {
        let t = self.taxonomy;
        let parent = t.parent(child)?;
        // Distractor option texts must be pairwise distinct and distinct
        // from the correct option, so track *names*, not just ids.
        let mut names: Vec<&str> = vec![t.name(parent)];
        let push_distinct = |pool: Vec<NodeId>, names: &mut Vec<&'t str>, want: usize| {
            for n in pool {
                if names.len() > want {
                    break;
                }
                let name = t.name(n);
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        };
        let mut uncles = t.uncles(child);
        uncles.shuffle(rng);
        push_distinct(uncles, &mut names, 3);
        if names.len() < 4 {
            let mut pool: Vec<NodeId> = t
                .nodes_at_level(t.level(parent))
                .iter()
                .copied()
                .filter(|&n| n != parent)
                .collect();
            pool.shuffle(rng);
            push_distinct(pool, &mut names, 3);
        }
        if names.len() < 4 {
            // Last resort for tiny parent levels (Schema.org has only 3
            // roots): borrow distractors from other levels, excluding the
            // child's own ancestors.
            let ancestors = t.ancestors(child);
            let mut pool: Vec<NodeId> = t
                .ids()
                .filter(|&n| n != parent && n != child && !ancestors.contains(&n))
                .collect();
            pool.shuffle(rng);
            push_distinct(pool, &mut names, 3);
        }
        if names.len() < 4 {
            return None;
        }

        let mut options: Vec<String> = names.into_iter().map(str::to_owned).collect();
        options.shuffle(rng);
        let correct = options
            .iter()
            .position(|o| o == t.name(parent))
            .expect("parent name is in the option set") as u8;
        let options: [String; 4] = options.try_into().expect("exactly four options");

        Some(Question {
            id,
            taxonomy: self.kind,
            child: t.name(child).to_owned(),
            child_level: t.level(child),
            parent_level: t.level(parent),
            true_parent: t.name(parent).to_owned(),
            instance_typing: false,
            body: QuestionBody::Mcq { options, correct },
        })
    }

    fn tf_question(
        &self,
        id: u64,
        child: NodeId,
        candidate: String,
        expected_yes: bool,
        negative: Option<NegativeKind>,
    ) -> Question {
        let t = self.taxonomy;
        let parent = t.parent(child).expect("tf questions need a non-root child");
        Question {
            id,
            taxonomy: self.kind,
            child: t.name(child).to_owned(),
            child_level: t.level(child),
            parent_level: t.level(parent),
            true_parent: t.name(parent).to_owned(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate, expected_yes, negative },
        }
    }

    /// Fresh RNG stream for negatives at a level (exposed so the dataset
    /// builder controls determinism).
    pub fn negatives_rng(&self, child_level: usize) -> SynthRng {
        self.level_rng(child_level, "negatives")
    }

    /// Fresh RNG for auxiliary draws (exemplars etc.).
    pub fn aux_rng(&self, tag: &str) -> SynthRng {
        let mut rng = self.level_rng(0, tag);
        // Burn one draw so "aux" streams differ from level streams even
        // when tags collide with level tags.
        let _ = rng.gen::<u64>();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_synth::{generate, GenOptions};

    fn fixture() -> (Taxonomy, TaxonomyKind) {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 3, scale: 1.0 }).unwrap();
        (t, TaxonomyKind::Ebay)
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let (t, k) = fixture();
        let g = QuestionGenerator::new(&t, k, 99);
        let a = g.sample_children(2, 50);
        let b = g.sample_children(2, 50);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "sampled children must be distinct");
        for &c in &a {
            assert_eq!(t.level(c), 2);
        }
    }

    #[test]
    fn positive_questions_are_true() {
        let (t, k) = fixture();
        let g = QuestionGenerator::new(&t, k, 1);
        let child = g.sample_children(1, 1)[0];
        let q = g.positive(child, 7);
        assert_eq!(q.id, 7);
        assert_eq!(q.expected_yes(), Some(true));
        assert_eq!(q.child, t.name(child));
        assert_eq!(q.true_parent, t.name(t.parent(child).unwrap()));
        assert_eq!(q.shown_candidate(), q.true_parent);
        assert_eq!(q.child_level, 1);
        assert_eq!(q.parent_level, 0);
    }

    #[test]
    fn negative_easy_never_picks_the_parent() {
        let (t, k) = fixture();
        let g = QuestionGenerator::new(&t, k, 5);
        let mut rng = g.negatives_rng(2);
        for &child in &g.sample_children(2, 100) {
            let q = g.negative_easy(child, 0, &mut rng).unwrap();
            assert_eq!(q.expected_yes(), Some(false));
            assert_ne!(q.shown_candidate(), q.true_parent);
        }
    }

    #[test]
    fn negative_hard_picks_uncles() {
        let (t, k) = fixture();
        let g = QuestionGenerator::new(&t, k, 5);
        let mut rng = g.negatives_rng(2);
        for &child in &g.sample_children(2, 100) {
            if let Some(q) = g.negative_hard(child, 0, &mut rng) {
                // The candidate must be a sibling of the true parent.
                let parent = t.parent(child).unwrap();
                let uncle_names: Vec<&str> =
                    t.uncles(child).iter().map(|&u| t.name(u)).collect();
                assert!(
                    uncle_names.contains(&q.shown_candidate()),
                    "candidate {:?} is not an uncle of {:?}",
                    q.shown_candidate(),
                    t.name(parent),
                );
            }
        }
    }

    #[test]
    fn mcq_has_exactly_one_correct_option() {
        let (t, k) = fixture();
        let g = QuestionGenerator::new(&t, k, 5);
        let mut rng = g.negatives_rng(1);
        for &child in &g.sample_children(1, 60) {
            let q = g.mcq(child, 0, &mut rng).unwrap();
            let QuestionBody::Mcq { options, correct } = &q.body else { panic!() };
            assert_eq!(options[*correct as usize], q.true_parent);
            let mut sorted = options.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "options must be distinct: {options:?}");
        }
    }

    #[test]
    fn mcq_on_tiny_parent_pool_is_none() {
        // A taxonomy with a two-node parent level cannot field 4 options.
        let mut b = taxoglimpse_taxonomy::TaxonomyBuilder::new("tiny");
        let r1 = b.add_root("r1");
        let _r2 = b.add_root("r2");
        let c = b.add_child(r1, "c");
        let t = b.build().unwrap();
        let g = QuestionGenerator::new(&t, TaxonomyKind::Ebay, 1);
        let mut rng = g.negatives_rng(1);
        assert!(g.mcq(c, 0, &mut rng).is_none());
    }
}
