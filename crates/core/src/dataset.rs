//! Dataset assembly (§2.2): the Easy, Hard and MCQ datasets, per level.
//!
//! * **Easy** = positives + negative-easy (2 questions per sampled
//!   child).
//! * **Hard** = positives + negative-hard (2 per child, minus children
//!   without uncles).
//! * **MCQ** = one 4-option question per sampled child.
//!
//! Per-level sample sizes follow Cochran at 95% confidence / 5% margin
//! ([`crate::sampling`]), which reproduces the paper's Table 4. A handful
//! of extra children are sampled per level as few-shot exemplars,
//! disjoint from the evaluation questions.

use crate::domain::TaxonomyKind;
use crate::qgen::QuestionGenerator;
use crate::question::Question;
use crate::sampling::cochran_sample_size;
use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// Number of exemplar questions reserved per level for few-shot
/// prompting (the paper uses five-shot).
pub const EXEMPLARS_PER_LEVEL: usize = 5;

/// The three dataset flavors of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionDataset {
    /// positives + random negatives.
    Easy,
    /// positives + uncle negatives.
    Hard,
    /// multiple choice.
    Mcq,
}

impl QuestionDataset {
    /// All three flavors.
    pub const ALL: [QuestionDataset; 3] =
        [QuestionDataset::Easy, QuestionDataset::Hard, QuestionDataset::Mcq];
}

impl fmt::Display for QuestionDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuestionDataset::Easy => "easy",
            QuestionDataset::Hard => "hard",
            QuestionDataset::Mcq => "mcq",
        })
    }
}

/// All questions probing children of one level, plus that level's
/// few-shot exemplars.
#[derive(Debug, Clone)]
pub struct LevelSlice {
    /// Level of the child entities (1 = "level 1 → root" questions).
    pub child_level: usize,
    /// The evaluation questions.
    pub questions: Vec<Question>,
    /// Held-out exemplar questions (with gold answers derivable via
    /// [`Question::gold`]) for few-shot prompting.
    pub exemplars: Vec<Question>,
}

/// A complete dataset for one taxonomy and flavor.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The probed taxonomy.
    pub taxonomy: TaxonomyKind,
    /// Easy / Hard / MCQ.
    pub flavor: QuestionDataset,
    /// Per-level slices, shallowest first (child level 1 upward).
    pub levels: Vec<LevelSlice>,
}

impl Dataset {
    /// Total number of evaluation questions.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.questions.len()).sum()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all evaluation questions, shallowest level first.
    pub fn questions(&self) -> impl Iterator<Item = &Question> {
        self.levels.iter().flat_map(|l| l.questions.iter())
    }

    /// Per-level question counts — one row of the paper's Table 4.
    pub fn level_counts(&self) -> Vec<(usize, usize)> {
        self.levels.iter().map(|l| (l.child_level, l.questions.len())).collect()
    }
}

taxoglimpse_json::unit_enum_json!(QuestionDataset { Easy, Hard, Mcq });

impl ToJson for LevelSlice {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("child_level", self.child_level.to_json()),
            ("questions", self.questions.to_json()),
            ("exemplars", self.exemplars.to_json()),
        ])
    }
}

impl FromJson for LevelSlice {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LevelSlice {
            child_level: json.field_as("child_level")?,
            questions: json.field_as("questions")?,
            exemplars: json.field_as("exemplars")?,
        })
    }
}

impl ToJson for Dataset {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("taxonomy", self.taxonomy.to_json()),
            ("flavor", self.flavor.to_json()),
            ("levels", self.levels.to_json()),
        ])
    }
}

impl FromJson for Dataset {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Dataset {
            taxonomy: json.field_as("taxonomy")?,
            flavor: json.field_as("flavor")?,
            levels: json.field_as("levels")?,
        })
    }
}

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The taxonomy has fewer than two levels, so no child level exists.
    TooShallow,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::TooShallow => write!(f, "taxonomy has no non-root level to probe"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Builds datasets over one taxonomy.
#[derive(Debug)]
pub struct DatasetBuilder<'t> {
    generator: QuestionGenerator<'t>,
    taxonomy: &'t Taxonomy,
    kind: TaxonomyKind,
    sample_cap: Option<usize>,
    threads: usize,
}

impl<'t> DatasetBuilder<'t> {
    /// Create a builder over `taxonomy` (as generated for `kind`) with a
    /// sampling seed.
    pub fn new(taxonomy: &'t Taxonomy, kind: TaxonomyKind, seed: u64) -> Self {
        DatasetBuilder {
            generator: QuestionGenerator::new(taxonomy, kind, seed),
            taxonomy,
            kind,
            sample_cap: None,
            threads: 1,
        }
    }

    /// Cap the per-level sample size below the Cochran size (useful for
    /// quick runs and tests). `None` restores the paper's sizes.
    pub fn sample_cap(mut self, cap: Option<usize>) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Build levels concurrently (one worker per level) when `threads`
    /// is greater than one. Byte-identical to the sequential build for
    /// any value: every level's sampling and negative streams are forked
    /// from the seed *by level*, so slices are independent and are
    /// merged back in level order.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn level_sample_size(&self, child_level: usize) -> usize {
        let population = self.taxonomy.nodes_at_level(child_level).len();
        let s = cochran_sample_size(population);
        match self.sample_cap {
            Some(cap) => s.min(cap),
            None => s,
        }
    }

    /// Build the dataset of the given flavor covering every child level
    /// (1 through the deepest).
    pub fn build(&self, flavor: QuestionDataset) -> Result<Dataset, DatasetError> {
        if self.taxonomy.num_levels() < 2 {
            return Err(DatasetError::TooShallow);
        }
        let child_levels: Vec<usize> = (1..self.taxonomy.num_levels()).collect();
        let levels: Vec<LevelSlice> = if self.threads <= 1 || child_levels.len() <= 1 {
            child_levels.iter().map(|&l| self.build_level(flavor, l)).collect()
        } else {
            // One scoped worker per level (taxonomies are at most a
            // handful of levels deep); joining in spawn order merges the
            // slices shallowest-first, same as the sequential loop.
            std::thread::scope(|scope| {
                let handles: Vec<_> = child_levels
                    .iter()
                    .map(|&l| scope.spawn(move || self.build_level(flavor, l)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("level build worker must not panic"))
                    .collect()
            })
        };
        Ok(Dataset { taxonomy: self.kind, flavor, levels })
    }

    /// Build one level slice.
    pub fn build_level(&self, flavor: QuestionDataset, child_level: usize) -> LevelSlice {
        let s = self.level_sample_size(child_level);
        let sampled = self.generator.sample_children(child_level, s + EXEMPLARS_PER_LEVEL * 4);
        let (eval_children, exemplar_pool) = sampled.split_at(s.min(sampled.len()));

        // Exemplars must be held out from the eval set *by name*: node
        // ids are disjoint by construction, but names at a level need
        // not be unique, and a same-named exemplar would leak the answer
        // into the few-shot prompt. Over-sample and skip collisions.
        let eval_names: std::collections::BTreeSet<&str> =
            eval_children.iter().map(|&c| self.taxonomy.name(c)).collect();
        let exemplar_children: Vec<NodeId> = exemplar_pool
            .iter()
            .copied()
            .filter(|&c| !eval_names.contains(self.taxonomy.name(c)))
            .take(EXEMPLARS_PER_LEVEL)
            .collect();

        let mut rng = self.generator.negatives_rng(child_level);
        let mut questions = Vec::with_capacity(eval_children.len() * 2);
        let mut next_id = (child_level as u64) << 32;
        let mut id = || {
            next_id += 1;
            next_id
        };

        match flavor {
            QuestionDataset::Easy => {
                for &c in eval_children {
                    questions.push(self.generator.positive(c, id()));
                    if let Some(q) = self.generator.negative_easy(c, id(), &mut rng) {
                        questions.push(q);
                    }
                }
            }
            QuestionDataset::Hard => {
                for &c in eval_children {
                    questions.push(self.generator.positive(c, id()));
                    if let Some(q) = self.generator.negative_hard(c, id(), &mut rng) {
                        questions.push(q);
                    }
                }
            }
            QuestionDataset::Mcq => {
                for &c in eval_children {
                    if let Some(q) = self.generator.mcq(c, id(), &mut rng) {
                        questions.push(q);
                    }
                }
            }
        }

        // Exemplars mirror the flavor: TF exemplars alternate Yes/No with
        // equal probability (§4.4), MCQ exemplars are plain MCQs.
        let mut exemplars = Vec::with_capacity(exemplar_children.len());
        for (i, &c) in exemplar_children.iter().enumerate() {
            let q = match flavor {
                QuestionDataset::Mcq => self.generator.mcq(c, id(), &mut rng),
                QuestionDataset::Easy => {
                    if i % 2 == 0 {
                        Some(self.generator.positive(c, id()))
                    } else {
                        self.generator.negative_easy(c, id(), &mut rng)
                    }
                }
                QuestionDataset::Hard => {
                    if i % 2 == 0 {
                        Some(self.generator.positive(c, id()))
                    } else {
                        self.generator.negative_hard(c, id(), &mut rng)
                    }
                }
            };
            exemplars.extend(q);
        }

        LevelSlice { child_level, questions, exemplars }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::QuestionKind;
    use taxoglimpse_synth::{generate, GenOptions};

    fn ebay() -> Taxonomy {
        generate(TaxonomyKind::Ebay, GenOptions { seed: 13, scale: 1.0 }).unwrap()
    }

    /// Reproduce the eBay column of Table 4: easy 176/430, hard 176/430,
    /// MCQ 88/215 (level 1, level 2). Our Cochran rounding differs from
    /// the paper's Qualtrics rounding by a couple of samples at level 1.
    #[test]
    fn ebay_dataset_sizes_match_table_4() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 1);
        let easy = b.build(QuestionDataset::Easy).unwrap();
        let counts = easy.level_counts();
        assert_eq!(counts.len(), 2);
        assert!(counts[0].1.abs_diff(176) <= 6, "level1 easy {}", counts[0].1);
        assert!(counts[1].1.abs_diff(430) <= 6, "level2 easy {}", counts[1].1);

        let mcq = b.build(QuestionDataset::Mcq).unwrap();
        let mc = mcq.level_counts();
        assert!(mc[0].1.abs_diff(88) <= 3, "level1 mcq {}", mc[0].1);
        assert!(mc[1].1.abs_diff(215) <= 3, "level2 mcq {}", mc[1].1);
    }

    #[test]
    fn hard_never_larger_than_easy() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 2);
        let easy = b.build(QuestionDataset::Easy).unwrap();
        let hard = b.build(QuestionDataset::Hard).unwrap();
        assert!(hard.len() <= easy.len());
        // And both are balanced-ish between positives and negatives.
        let pos = hard.questions().filter(|q| q.expected_yes() == Some(true)).count();
        let neg = hard.len() - pos;
        assert!(pos >= neg, "positives {pos} vs negatives {neg}");
        assert!(neg as f64 / pos as f64 > 0.9);
    }

    #[test]
    fn mcq_dataset_contains_only_mcqs() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 3);
        let mcq = b.build(QuestionDataset::Mcq).unwrap();
        assert!(mcq.questions().all(|q| q.kind() == QuestionKind::Mcq));
        assert!(!mcq.is_empty());
    }

    #[test]
    fn exemplars_are_disjoint_from_eval_questions() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 4);
        let d = b.build(QuestionDataset::Hard).unwrap();
        for slice in &d.levels {
            assert!(!slice.exemplars.is_empty());
            let eval_children: Vec<&str> =
                slice.questions.iter().map(|q| q.child.as_str()).collect();
            for e in &slice.exemplars {
                assert!(
                    !eval_children.contains(&e.child.as_str()),
                    "exemplar child {:?} leaked into the eval set",
                    e.child
                );
            }
        }
    }

    #[test]
    fn sample_cap_shrinks_levels() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 5).sample_cap(Some(10));
        let d = b.build(QuestionDataset::Easy).unwrap();
        for (_, n) in d.level_counts() {
            assert!(n <= 20);
        }
    }

    #[test]
    fn determinism() {
        let t = ebay();
        let b = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 6);
        let a = b.build(QuestionDataset::Hard).unwrap();
        let b2 = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 6).build(QuestionDataset::Hard).unwrap();
        let ja = taxoglimpse_json::to_string(&a).unwrap();
        let jb = taxoglimpse_json::to_string(&b2).unwrap();
        assert_eq!(ja, jb);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let t = ebay();
        for flavor in QuestionDataset::ALL {
            let seq = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 6).build(flavor).unwrap();
            let par = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 6)
                .threads(4)
                .build(flavor)
                .unwrap();
            let js = taxoglimpse_json::to_string(&seq).unwrap();
            let jp = taxoglimpse_json::to_string(&par).unwrap();
            assert_eq!(js, jp, "{flavor} dataset must not depend on the thread count");
        }
    }

    #[test]
    fn too_shallow_is_an_error() {
        let mut b = taxoglimpse_taxonomy::TaxonomyBuilder::new("flat");
        b.add_root("only");
        let t = b.build().unwrap();
        let err = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 1)
            .build(QuestionDataset::Easy)
            .unwrap_err();
        assert_eq!(err, DatasetError::TooShallow);
    }

    #[test]
    fn question_ids_are_unique() {
        let t = ebay();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 7).build(QuestionDataset::Easy).unwrap();
        let mut ids: Vec<u64> = d.questions().map(|q| q.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
