//! Run-artifact store: persist evaluation reports as JSON files and
//! query them back — the small "results database" behind the experiment
//! binaries, so expensive grids are computed once and analyzed many
//! times.
//!
//! Layout: one file per report,
//! `<dir>/<model>_<taxonomy>_<flavor>_<setting>.json`, overwritten on
//! re-run (runs are deterministic, so overwriting is idempotent).

use crate::dataset::QuestionDataset;
use crate::domain::TaxonomyKind;
use crate::eval::EvalReport;
use crate::prompts::PromptSetting;
use std::fmt;
use taxoglimpse_json::JsonError;
use std::path::{Path, PathBuf};

/// Errors from the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored file was not a valid report.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The JSON error encountered.
        error: JsonError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt { path, error } => {
                write!(f, "{} is not a valid report: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A directory of persisted [`EvalReport`]s.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// Open (creating if needed) a store at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(RunStore { dir: dir.as_ref().to_owned() })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(report: &EvalReport) -> String {
        let sanitize = |s: &str| s.replace(['/', ' '], "-").to_ascii_lowercase();
        format!(
            "{}_{}_{}_{}.json",
            sanitize(&report.model),
            report.taxonomy.label(),
            report.flavor,
            sanitize(&report.setting.to_string()),
        )
    }

    /// Persist one report (overwrites any previous run of the same
    /// cell).
    pub fn save(&self, report: &EvalReport) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(Self::file_name(report));
        let json = taxoglimpse_json::to_string_pretty(report).expect("reports serialize");
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Load every report in the store.
    pub fn load_all(&self) -> Result<Vec<EvalReport>, StoreError> {
        let mut out = Vec::new();
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        entries.sort();
        for path in entries {
            let data = std::fs::read_to_string(&path)?;
            let report = taxoglimpse_json::from_str(&data)
                .map_err(|error| StoreError::Corrupt { path: path.clone(), error })?;
            out.push(report);
        }
        Ok(out)
    }

    /// Load reports matching the given filters (`None` = any).
    pub fn query(
        &self,
        model: Option<&str>,
        taxonomy: Option<TaxonomyKind>,
        flavor: Option<QuestionDataset>,
        setting: Option<PromptSetting>,
    ) -> Result<Vec<EvalReport>, StoreError> {
        Ok(self
            .load_all()?
            .into_iter()
            .filter(|r| model.is_none_or(|m| r.model.eq_ignore_ascii_case(m)))
            .filter(|r| taxonomy.is_none_or(|t| r.taxonomy == t))
            .filter(|r| flavor.is_none_or(|f| r.flavor == f))
            .filter(|r| setting.is_none_or(|s| r.setting == s))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::eval::Evaluator;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("taxoglimpse-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(model_name: &str, flavor: QuestionDataset) -> EvalReport {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 60, scale: 0.5 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 60)
            .sample_cap(Some(10))
            .build(flavor)
            .unwrap();
        Evaluator::default().run(&FixedAnswerModel::new(model_name, "Yes."), &d)
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = tempdir("roundtrip");
        let store = RunStore::open(&dir).unwrap();
        let report = sample_report("m1", QuestionDataset::Hard);
        let path = store.save(&report).unwrap();
        assert!(path.exists());
        let loaded = store.load_all().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].overall, report.overall);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn overwrite_is_idempotent() {
        let dir = tempdir("overwrite");
        let store = RunStore::open(&dir).unwrap();
        let report = sample_report("m1", QuestionDataset::Hard);
        store.save(&report).unwrap();
        store.save(&report).unwrap();
        assert_eq!(store.load_all().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn query_filters() {
        let dir = tempdir("query");
        let store = RunStore::open(&dir).unwrap();
        store.save(&sample_report("alpha", QuestionDataset::Hard)).unwrap();
        store.save(&sample_report("alpha", QuestionDataset::Easy)).unwrap();
        store.save(&sample_report("beta", QuestionDataset::Hard)).unwrap();
        assert_eq!(store.load_all().unwrap().len(), 3);
        assert_eq!(store.query(Some("alpha"), None, None, None).unwrap().len(), 2);
        assert_eq!(store.query(None, None, Some(QuestionDataset::Hard), None).unwrap().len(), 2);
        assert_eq!(
            store.query(Some("ALPHA"), None, Some(QuestionDataset::Easy), None).unwrap().len(),
            1,
            "model match is case-insensitive"
        );
        assert_eq!(store.query(Some("gamma"), None, None, None).unwrap().len(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_reported() {
        let dir = tempdir("corrupt");
        let store = RunStore::open(&dir).unwrap();
        std::fs::write(dir.join("junk.json"), "not json").unwrap();
        assert!(matches!(store.load_all(), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
