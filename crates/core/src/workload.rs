//! The unified workload-entry surface.
//!
//! The repo grew four divergent ways to run a scenario — `Evaluator`
//! for sequential QA, `GridRunner` for the model × taxonomy grid,
//! `InstanceTypingBuilder` + evaluator plumbing for §4.5, and the
//! serving layer's own configuration — and the hierarchical
//! classification scenario ([`crate::hier`]) would have made a fifth.
//! This module collapses them behind one contract:
//!
//! * a [`Workload`] is *what* to measure: it builds its dataset from a
//!   [`WorkloadContext`] (taxonomy + kind + seed) and turns one model's
//!   answers into a typed report;
//! * a [`WorkloadRunner`] is *how* to run it: one builder-configured
//!   bundle of prompt settings, resilience policy, batch size, worker
//!   threads and chunking that every execution path — `run`,
//!   [`WorkloadRunner::run_cross`], [`WorkloadRunner::run_sharded`],
//!   [`WorkloadRunner::serve`] — dispatches through.
//!
//! The existing scenarios implement it ([`QaWorkload`],
//! [`InstanceTypingWorkload`], [`crate::hier::HierWorkload`]), so a bin
//! or example configures *one* runner and swaps workloads freely.
//! Determinism is inherited, not re-proven: every dispatch path bottoms
//! out in the same `Evaluator`/`GridRunner` machinery whose report
//! bytes are already proven independent of worker count, batch size,
//! cache state and fault plans.

use crate::dataset::{Dataset, DatasetBuilder, DatasetError, QuestionDataset};
use crate::domain::TaxonomyKind;
use crate::eval::{EvalConfig, EvalReport, Evaluator, DEFAULT_BATCH_SIZE};
use crate::grid::{GridRunner, GridRunnerBuilder};
use crate::instance_typing::InstanceTypingError;
use crate::model::LanguageModel;
use crate::question::Question;
use crate::resilience::ResiliencePolicy;
use crate::serve::{run_serve, ServeConfig, ServeReport, TrafficConfig};
use crate::shard::{run_sharded, ShardRun, ShardedDataset};
use std::fmt;
use taxoglimpse_taxonomy::Taxonomy;

/// Everything a workload needs to build its dataset: the taxonomy to
/// probe, its kind, and the sampling seed.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadContext<'t> {
    /// The taxonomy under test.
    pub taxonomy: &'t Taxonomy,
    /// Which of the paper's taxonomies it is.
    pub kind: TaxonomyKind,
    /// Seed for all sampling inside the workload's `build`.
    pub seed: u64,
}

impl<'t> WorkloadContext<'t> {
    /// Bundle a taxonomy with its kind and a sampling seed.
    pub fn new(taxonomy: &'t Taxonomy, kind: TaxonomyKind, seed: u64) -> Self {
        WorkloadContext { taxonomy, kind, seed }
    }
}

/// Errors from workload dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Standard QA dataset construction failed.
    Dataset(DatasetError),
    /// Instance-typing dataset construction failed.
    InstanceTyping(InstanceTypingError),
    /// The workload cannot run on this context (reason inside).
    Unsupported(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Dataset(e) => write!(f, "dataset construction failed: {e}"),
            WorkloadError::InstanceTyping(e) => write!(f, "instance typing failed: {e}"),
            WorkloadError::Unsupported(reason) => write!(f, "workload unsupported: {reason}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<DatasetError> for WorkloadError {
    fn from(e: DatasetError) -> Self {
        WorkloadError::Dataset(e)
    }
}

impl From<InstanceTypingError> for WorkloadError {
    fn from(e: InstanceTypingError) -> Self {
        WorkloadError::InstanceTyping(e)
    }
}

/// One benchmark scenario: build a dataset from a context, then turn a
/// model's answers into a typed report.
///
/// The contract every implementation upholds:
///
/// * `build` is a pure function of the context — same taxonomy, kind
///   and seed produce an identical `Data` value;
/// * `run` is deterministic given `(runner, model, data)`: report bytes
///   never depend on worker count, batch size, response-cache state or
///   which worker observed an injected fault;
/// * `run` resets the model before measuring, so back-to-back runs are
///   independent.
pub trait Workload {
    /// The built dataset type.
    type Data;
    /// The typed report `run` produces.
    type Report;

    /// Stable workload name (for labels and report files).
    fn name(&self) -> &'static str;

    /// Build the workload's dataset for one context.
    fn build(&self, cx: &WorkloadContext<'_>) -> Result<Self::Data, WorkloadError>;

    /// Run one model over previously built data under the runner's
    /// execution policy.
    fn run(
        &self,
        runner: &WorkloadRunner,
        model: &dyn LanguageModel,
        cx: &WorkloadContext<'_>,
        data: &Self::Data,
    ) -> Self::Report;
}

/// Builder-configured execution policy shared by every workload: which
/// prompts to render, how to retry failures, how to batch model calls,
/// and how many threads may carry the work.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRunner {
    config: EvalConfig,
    resilience: ResiliencePolicy,
    batch_size: usize,
    threads: Option<usize>,
    chunk_size: usize,
}

/// Builder for [`WorkloadRunner`] — the workspace's clamping `with_*`
/// idiom: cheap default, chainable overrides that clamp rather than
/// panic, infallible `build()`.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRunnerBuilder {
    config: EvalConfig,
    resilience: ResiliencePolicy,
    batch_size: usize,
    threads: Option<usize>,
    chunk_size: usize,
}

impl Default for WorkloadRunnerBuilder {
    fn default() -> Self {
        WorkloadRunnerBuilder {
            config: EvalConfig::default(),
            resilience: ResiliencePolicy::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            threads: None,
            chunk_size: crate::grid::DEFAULT_CHUNK_SIZE,
        }
    }
}

impl WorkloadRunnerBuilder {
    /// Override the evaluation configuration (setting + variant).
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the resilience policy applied to every model call.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Override the `answer_batch` batch size (clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Pin the worker-thread count (clamped to ≥ 1). Unset, the runner
    /// sizes to the machine. Purely an execution detail — report bytes
    /// are identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Override the work-unit chunk size (clamped to ≥ 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Finish the builder.
    pub fn build(self) -> WorkloadRunner {
        WorkloadRunner {
            config: self.config,
            resilience: self.resilience,
            batch_size: self.batch_size,
            threads: self.threads,
            chunk_size: self.chunk_size,
        }
    }
}

impl Default for WorkloadRunner {
    fn default() -> Self {
        WorkloadRunner::builder().build()
    }
}

impl WorkloadRunner {
    /// Start building a runner.
    pub fn builder() -> WorkloadRunnerBuilder {
        WorkloadRunnerBuilder::default()
    }

    /// The evaluation configuration in force.
    pub fn config(&self) -> EvalConfig {
        self.config
    }

    /// The resilience policy in force.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// The `answer_batch` batch size in force.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The pinned worker-thread count, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The work-unit chunk size in force.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The sequential evaluator this runner's policy configures.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::builder()
            .with_config(self.config)
            .with_resilience(self.resilience)
            .with_batch_size(self.batch_size)
            .build()
    }

    /// A grid-runner builder carrying this runner's policy (callers may
    /// still layer shard labels etc. on top before building).
    pub fn grid_builder(&self) -> GridRunnerBuilder {
        let builder = GridRunner::builder()
            .with_config(self.config)
            .with_resilience(self.resilience)
            .with_batch_size(self.batch_size)
            .with_chunk_size(self.chunk_size);
        match self.threads {
            Some(threads) => builder.with_threads(threads),
            None => builder,
        }
    }

    /// The grid runner this runner's policy configures.
    pub fn grid(&self) -> GridRunner {
        self.grid_builder().build()
    }

    /// Build and run one workload for one `(model, context)` cell.
    pub fn run<W: Workload>(
        &self,
        workload: &W,
        model: &dyn LanguageModel,
        cx: &WorkloadContext<'_>,
    ) -> Result<W::Report, WorkloadError> {
        let data = workload.build(cx)?;
        Ok(workload.run(self, model, cx, &data))
    }

    /// Run a workload over the model × context grid, building each
    /// context's dataset once. Reports come back model-major (all of
    /// model 0's contexts, then model 1's, …), matching
    /// [`GridRunner::run_cross`] cell order.
    pub fn run_cross<W: Workload>(
        &self,
        workload: &W,
        models: &[&dyn LanguageModel],
        cxs: &[WorkloadContext<'_>],
    ) -> Result<Vec<W::Report>, WorkloadError> {
        let data: Vec<W::Data> =
            cxs.iter().map(|cx| workload.build(cx)).collect::<Result<_, _>>()?;
        let mut reports = Vec::with_capacity(models.len() * cxs.len());
        for model in models {
            for (cx, d) in cxs.iter().zip(&data) {
                reports.push(workload.run(self, *model, cx, d));
            }
        }
        Ok(reports)
    }

    /// Dispatch a sharded run (one worker per shard, merged in
    /// shard-index order) under this runner's policy.
    pub fn run_sharded(
        &self,
        shard_models: &[&dyn LanguageModel],
        sharded: &ShardedDataset,
    ) -> Vec<ShardRun> {
        run_sharded(&self.evaluator(), shard_models, sharded)
    }

    /// A serving configuration carrying this runner's prompt settings
    /// and resilience policy (serving-specific knobs keep their
    /// defaults; override them on the returned value).
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            max_batch: self.batch_size,
            setting: self.config.setting,
            variant: self.config.variant,
            resilience: self.resilience,
            ..ServeConfig::default()
        }
    }

    /// Dispatch the virtual-time serving loop over a question pool
    /// under this runner's policy.
    pub fn serve(
        &self,
        models: &[&dyn LanguageModel],
        questions: &[Question],
        traffic: &TrafficConfig,
    ) -> ServeReport {
        run_serve(models, questions, traffic, &self.serve_config())
    }
}

/// The paper's grid QA scenario (§4): Easy/Hard/MCQ datasets built by
/// [`DatasetBuilder`], evaluated over the chunked grid.
#[derive(Debug, Clone, Copy)]
pub struct QaWorkload {
    flavor: QuestionDataset,
    sample_cap: Option<usize>,
}

impl QaWorkload {
    /// QA over one dataset flavor.
    pub fn new(flavor: QuestionDataset) -> Self {
        QaWorkload { flavor, sample_cap: None }
    }

    /// Cap per-level question sampling (for quick runs).
    pub fn with_sample_cap(mut self, cap: Option<usize>) -> Self {
        self.sample_cap = cap;
        self
    }
}

impl Workload for QaWorkload {
    type Data = Dataset;
    type Report = EvalReport;

    fn name(&self) -> &'static str {
        "grid-qa"
    }

    fn build(&self, cx: &WorkloadContext<'_>) -> Result<Dataset, WorkloadError> {
        Ok(DatasetBuilder::new(cx.taxonomy, cx.kind, cx.seed)
            .sample_cap(self.sample_cap)
            .build(self.flavor)?)
    }

    fn run(
        &self,
        runner: &WorkloadRunner,
        model: &dyn LanguageModel,
        _cx: &WorkloadContext<'_>,
        data: &Dataset,
    ) -> EvalReport {
        let mut reports = runner.grid().run_cross(&[model], &[data]);
        reports.remove(0)
    }
}

/// The instance-typing scenario (§4.5) behind the same surface.
#[derive(Debug, Clone, Copy)]
pub struct InstanceTypingWorkload {
    flavor: QuestionDataset,
    sample_cap: Option<usize>,
}

impl InstanceTypingWorkload {
    /// Instance typing over the Easy or Hard flavor (MCQ is rejected at
    /// `build`, as in the paper).
    pub fn new(flavor: QuestionDataset) -> Self {
        InstanceTypingWorkload { flavor, sample_cap: None }
    }

    /// Cap the number of sampled leaf concepts (for quick runs).
    pub fn with_sample_cap(mut self, cap: Option<usize>) -> Self {
        self.sample_cap = cap;
        self
    }
}

impl Workload for InstanceTypingWorkload {
    type Data = Dataset;
    type Report = EvalReport;

    fn name(&self) -> &'static str {
        "instance-typing"
    }

    fn build(&self, cx: &WorkloadContext<'_>) -> Result<Dataset, WorkloadError> {
        Ok(crate::instance_typing::build_dataset(
            cx.taxonomy,
            cx.kind,
            cx.seed,
            self.sample_cap,
            self.flavor,
        )?)
    }

    fn run(
        &self,
        runner: &WorkloadRunner,
        model: &dyn LanguageModel,
        _cx: &WorkloadContext<'_>,
        data: &Dataset,
    ) -> EvalReport {
        let mut reports = runner.grid().run_cross(&[model], &[data]);
        reports.remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_json::ToJson;
    use taxoglimpse_synth::{generate, GenOptions};

    fn context(t: &Taxonomy) -> WorkloadContext<'_> {
        WorkloadContext::new(t, TaxonomyKind::Ebay, 21)
    }

    #[test]
    fn qa_workload_matches_direct_evaluator() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 21, scale: 1.0 }).unwrap();
        let cx = context(&t);
        let workload = QaWorkload::new(QuestionDataset::Hard).with_sample_cap(Some(40));
        let runner = WorkloadRunner::builder().with_threads(2).build();
        let model = FixedAnswerModel::always_yes();
        let report = runner.run(&workload, &model, &cx).unwrap();
        let direct = Evaluator::default().run(&model, &workload.build(&cx).unwrap());
        assert_eq!(
            taxoglimpse_json::to_string(&report.to_json()).unwrap(),
            taxoglimpse_json::to_string(&direct.to_json()).unwrap()
        );
    }

    #[test]
    fn run_cross_is_model_major() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 21, scale: 0.5 }).unwrap();
        let cx = context(&t);
        let workload = QaWorkload::new(QuestionDataset::Easy).with_sample_cap(Some(10));
        let runner = WorkloadRunner::default();
        let yes = FixedAnswerModel::always_yes();
        let idk = FixedAnswerModel::always_idk();
        let reports = runner
            .run_cross(&workload, &[&yes, &idk], &[cx, cx])
            .unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].model, yes.name());
        assert_eq!(reports[3].model, idk.name());
        assert_eq!(reports[2].overall.miss_rate(), 1.0);
    }

    #[test]
    fn instance_typing_workload_rejects_unsupported_kind() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 1, scale: 0.2 }).unwrap();
        let cx = context(&t);
        let workload = InstanceTypingWorkload::new(QuestionDataset::Hard);
        assert!(matches!(
            workload.build(&cx),
            Err(WorkloadError::InstanceTyping(InstanceTypingError::Unsupported(_)))
        ));
    }

    #[test]
    fn builder_clamps() {
        let runner = WorkloadRunner::builder()
            .with_batch_size(0)
            .with_threads(0)
            .with_chunk_size(0)
            .build();
        assert_eq!(runner.batch_size(), 1);
        assert_eq!(runner.threads(), Some(1));
        assert_eq!(runner.chunk_size(), 1);
    }
}
