//! Deterministic memoized response cache (§6 cost model).
//!
//! The paper's scalability study shows cost-per-query is the limiting
//! factor in using an LLM *as* a taxonomy, and real traffic is heavily
//! repeated — so successful answers are worth memoizing. This module is
//! the exact-memoization layer: a [`ResponseCache`] keyed on
//! **(snapshot version, model, question identity, prompt setting,
//! prompt text, retry ordinal)** and a [`CachedModel`] middleware that
//! consults it before delegating to the wrapped model.
//!
//! Correctness rules, in order of importance:
//!
//! 1. **Only successful deliveries are cached.** Errors come from the
//!    fault layer and must keep re-rolling per attempt; memoizing them
//!    would freeze a transient fault into a permanent one.
//! 2. **Hits return the stored [`Response`] verbatim** — text *and*
//!    `latency_s`. The resilience layer advances its virtual clock by
//!    response latency, and breaker/backoff behavior under faults
//!    depends on that clock, so serving a hit with zero latency would
//!    make cache-on runs observably different from cache-off runs.
//! 3. **Every hit is verified against the full key materials** (model
//!    name, structured question, setting, attempt, prompt bytes,
//!    snapshot version) before being served: a 64-bit key collision
//!    can redirect a lookup to the wrong bucket but can never produce
//!    a wrong answer.
//! 4. **Invalidation is edit-driven.** Callers stamp the cache with
//!    [`ResponseCache::set_version`] (typically the taxonomy's
//!    `content_digest()`); a version change clears every entry, so
//!    answers observed against an edited snapshot can never leak into
//!    runs over the old one or vice versa.
//!
//! Composition with the PR 5 fault/resilience stack: the cache sits
//! *under* the fault injector (`FaultInjector<CachedModel<M>>`), so
//! fault streams — keyed on question identity and attempt — decide
//! first, and the cache memoizes only what a faultless delivery would
//! have produced. Cached runs therefore replay the exact same fault
//! sequence as uncached ones.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use taxoglimpse_synth::rng::{hash_str, mix64, StreamHasher};

use crate::model::{LanguageModel, ModelError, Query, Response};
use crate::question::Question;

/// Shard count for the entry map (power of two; the low key bits pick
/// the shard). 64 shards keep lock contention negligible at the grid's
/// worker counts while staying cheap to clear.
const SHARDS: usize = 64;

/// Seed for the metadata half of the key stream.
const KEY_SEED: u64 = 0xCAC4_E05E_ED00_0001;

/// Seed for the prompt-text half of the key stream (kept separate so a
/// batch sharing a few-shot prefix can hash the prefix once and clone
/// the hasher state per query).
const PROMPT_SEED: u64 = 0xCAC4_E05E_ED00_0002;

/// One memoized delivery with everything needed to verify a hit.
#[derive(Debug, Clone)]
struct CacheEntry {
    version: u64,
    model: Box<str>,
    question: Question,
    prompt: Box<str>,
    attempt: u32,
    response: Response,
}

/// Monotonic counters describing cache traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the wrapped model.
    pub misses: u64,
    /// Successful deliveries stored.
    pub insertions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters are additive, so per-shard snapshots aggregate into a
/// fleet-wide view (`bench_shard` sums one snapshot per shard cache).
impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        let mut total = CacheStats::default();
        for stats in iter {
            total += stats;
        }
        total
    }
}

/// A sharded exact-memoization store for model responses. See the
/// module docs for the key derivation and invalidation rules.
pub struct ResponseCache {
    /// Snapshot version the cache is valid for (e.g. the taxonomy's
    /// `content_digest()`); mixed into every key and checked on hits.
    version: AtomicU64,
    shards: Vec<Mutex<BTreeMap<u64, Vec<CacheEntry>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("version", &self.version())
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ResponseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseCache {
    /// An empty cache at snapshot version 0.
    pub fn new() -> Self {
        ResponseCache {
            version: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// An empty cache stamped for `version`.
    pub fn with_version(version: u64) -> Self {
        let cache = Self::new();
        // Relaxed: construction happens-before any sharing of the value.
        cache.version.store(version, Ordering::Relaxed);
        cache
    }

    /// The snapshot version entries are valid for.
    pub fn version(&self) -> u64 {
        // Relaxed: the version is a standalone stamp; entry validity is
        // re-verified under the shard lock on every hit.
        self.version.load(Ordering::Relaxed)
    }

    /// Stamp the cache for a (possibly new) snapshot version. A version
    /// change drops every entry — this is the edit-driven invalidation
    /// hook: pass the taxonomy's `content_digest()` after any edit and
    /// stale answers are unreachable (they also fail per-hit version
    /// verification, belt and braces).
    pub fn set_version(&self, version: u64) {
        // Relaxed swap: callers stamp versions between runs, not while
        // racing lookups; per-hit verification covers any interleaving.
        let old = self.version.swap(version, Ordering::Relaxed);
        if old != version {
            self.clear();
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock not poisoned").clear();
        }
    }

    /// Number of memoized deliveries currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard lock not poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CacheStats {
        // Relaxed throughout: independent monotonic counters; readers
        // want totals, not a consistent snapshot across the three.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // Relaxed: monotonic counter
            misses: self.misses.load(Ordering::Relaxed), // Relaxed: monotonic counter
            insertions: self.insertions.load(Ordering::Relaxed), // Relaxed: monotonic counter
        }
    }

    /// Hash of the metadata key half for `query` against `model_name`,
    /// at the current version. Kept separate from the prompt hash so
    /// batch lookups can amortize both halves.
    fn meta_hasher(&self, model_name: &str) -> StreamHasher {
        let mut h = StreamHasher::new(KEY_SEED ^ self.version());
        h.write_str(model_name);
        h
    }

    fn finish_key(meta: &StreamHasher, query: &Query<'_>, prompt_hash: u64) -> u64 {
        let mut h = meta.clone();
        h.write_decimal(query.setting as u64);
        h.write_decimal(u64::from(query.attempt));
        h.write_decimal(query.question.taxonomy as u64);
        h.write_decimal(query.question.id);
        mix64(h.finish() ^ prompt_hash)
    }

    /// Full key for a standalone lookup.
    fn key(&self, model_name: &str, query: &Query<'_>) -> u64 {
        Self::finish_key(&self.meta_hasher(model_name), query, hash_str(PROMPT_SEED, query.prompt))
    }

    fn shard(&self, key: u64) -> &Mutex<BTreeMap<u64, Vec<CacheEntry>>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Serve a verified hit, or record a miss. The stored response is
    /// returned verbatim (text, latency, attempts) — see module rule 2.
    fn lookup(&self, key: u64, model_name: &str, query: &Query<'_>) -> Option<Response> {
        let version = self.version();
        let shard = self.shard(key).lock().expect("cache shard lock not poisoned");
        let found = shard.get(&key).and_then(|entries| {
            entries
                .iter()
                .find(|e| e.verifies(version, model_name, query))
                .map(|e| e.response.clone())
        });
        drop(shard);
        if found.is_some() {
            // Relaxed: monotonic counter, no ordering needed.
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            // Relaxed: monotonic counter, no ordering needed.
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store a successful delivery under `key`.
    fn insert(&self, key: u64, model_name: &str, query: &Query<'_>, response: &Response) {
        let version = self.version();
        let entry = CacheEntry {
            version,
            model: model_name.into(),
            question: query.question.clone(),
            prompt: query.prompt.into(),
            attempt: query.attempt,
            response: response.clone(),
        };
        let mut shard = self.shard(key).lock().expect("cache shard lock not poisoned");
        let entries = shard.entry(key).or_default();
        // Two racing misses may both compute the (identical) answer;
        // keep one copy.
        if entries.iter().any(|e| e.verifies(version, model_name, query)) {
            return;
        }
        entries.push(entry);
        // Relaxed: monotonic counter, no ordering needed.
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }
}

impl CacheEntry {
    /// Whether this entry is exactly the delivery `query` asks for.
    fn verifies(&self, version: u64, model_name: &str, query: &Query<'_>) -> bool {
        self.version == version
            && self.attempt == query.attempt
            && self.question.id == query.question.id
            && self.question.taxonomy == query.question.taxonomy
            && &*self.model == model_name
            && &*self.prompt == query.prompt
            && &self.question == query.question
    }
}

/// Memoizing middleware: consult the cache, fall through to the base
/// model on a miss, store successful deliveries.
///
/// Contract on the wrapped model: its answers must be a pure function
/// of the query (the repo-wide determinism contract, which every
/// in-tree model honors) — the cache survives [`LanguageModel::reset`]
/// precisely because re-asking cannot change the answer. Wrap the
/// fault injector *around* this type, never inside it, so errors are
/// re-rolled per attempt and only faultless answer content is
/// memoized.
pub struct CachedModel<M> {
    base: M,
    cache: Arc<ResponseCache>,
}

impl<M: LanguageModel> CachedModel<M> {
    /// Wrap `base` with a fresh private cache (version 0).
    pub fn new(base: M) -> Self {
        Self::with_cache(base, Arc::new(ResponseCache::new()))
    }

    /// Wrap `base` with a shared cache (e.g. one stamped with a
    /// taxonomy `content_digest()` and reused across repeated runs).
    pub fn with_cache(base: M, cache: Arc<ResponseCache>) -> Self {
        CachedModel { base, cache }
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// The cache backing this wrapper.
    pub fn cache(&self) -> &Arc<ResponseCache> {
        &self.cache
    }

    /// Longest shared few-shot prefix declared by every query in the
    /// batch (via [`Query::prefix_len`]), verified byte-for-byte so a
    /// wrong hint can never corrupt a key.
    fn shared_prefix<'p>(queries: &[Query<'p>]) -> Option<&'p str> {
        let first = queries.first()?;
        if first.prefix_len == 0 {
            return None;
        }
        let prefix = first.prompt.get(..first.prefix_len)?;
        queries
            .iter()
            .all(|q| {
                q.prefix_len == prefix.len()
                    && q.prompt.len() >= prefix.len()
                    && q.prompt.as_bytes()[..prefix.len()] == *prefix.as_bytes()
            })
            .then_some(prefix)
    }
}

impl<M: LanguageModel> LanguageModel for CachedModel<M> {
    /// The base model's name: memoization is invisible in reports.
    fn name(&self) -> &str {
        self.base.name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let key = self.cache.key(self.base.name(), query);
        if let Some(hit) = self.cache.lookup(key, self.base.name(), query) {
            return Ok(hit);
        }
        let result = self.base.answer(query);
        if let Ok(response) = &result {
            self.cache.insert(key, self.base.name(), query, response);
        }
        result
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        let name = self.base.name();
        let meta = self.cache.meta_hasher(name);
        // Hash the shared few-shot prefix once; per query, clone the
        // hasher state and stream only the suffix (StreamHasher is
        // documented byte-for-byte equal to one-shot hashing).
        let prefix_state = Self::shared_prefix(queries).map(|prefix| {
            let mut h = StreamHasher::new(PROMPT_SEED);
            h.write_str(prefix);
            (prefix.len(), h)
        });
        let mut results: Vec<Option<Result<Response, ModelError>>> =
            Vec::with_capacity(queries.len());
        let mut miss_indices: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<u64> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let prompt_hash = match &prefix_state {
                Some((len, h)) => {
                    let mut h = h.clone();
                    h.write_str(&query.prompt[*len..]);
                    h.finish()
                }
                None => hash_str(PROMPT_SEED, query.prompt),
            };
            let key = ResponseCache::finish_key(&meta, query, prompt_hash);
            if let Some(hit) = self.cache.lookup(key, name, query) {
                results.push(Some(Ok(hit)));
            } else {
                results.push(None);
                miss_indices.push(i);
                miss_keys.push(key);
            }
        }
        if !miss_indices.is_empty() {
            let miss_queries: Vec<Query<'_>> =
                miss_indices.iter().map(|&i| queries[i]).collect();
            let answers = self.base.answer_batch(&miss_queries);
            assert_eq!(
                answers.len(),
                miss_queries.len(),
                "answer_batch must return exactly one result per query"
            );
            for ((&i, &key), answer) in
                miss_indices.iter().zip(&miss_keys).zip(answers)
            {
                if let Ok(response) = &answer {
                    self.cache.insert(key, name, &queries[i], response);
                }
                results[i] = Some(answer);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot was filled by a hit or a miss delivery"))
            .collect()
    }

    /// Forwarded to the base model; cache entries survive (see the type
    /// docs for why that is sound).
    fn reset(&self) {
        self.base.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::prompts::PromptSetting;
    use crate::question::QuestionBody;
    use std::sync::atomic::AtomicU32;

    fn question(id: u64) -> Question {
        Question {
            id,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "b".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate: "b".into(), expected_yes: true, negative: None },
        }
    }

    /// Counts deliveries; answers with the prompt echoed back, so every
    /// distinct prompt has a distinct answer.
    struct CountingEcho {
        calls: AtomicU32,
    }

    impl CountingEcho {
        fn new() -> Self {
            CountingEcho { calls: AtomicU32::new(0) }
        }

        fn calls(&self) -> u32 {
            // Relaxed: test-only counter.
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl LanguageModel for CountingEcho {
        fn name(&self) -> &str {
            "counting-echo"
        }

        fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
            // Relaxed: test-only counter.
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(Response::new(format!("echo: {}", query.prompt)).with_latency(0.25))
        }
    }

    /// Always fails, counting deliveries.
    struct AlwaysFails {
        calls: AtomicU32,
    }

    impl LanguageModel for AlwaysFails {
        fn name(&self) -> &str {
            "always-fails"
        }

        fn answer(&self, _query: &Query<'_>) -> Result<Response, ModelError> {
            // Relaxed: test-only counter.
            self.calls.fetch_add(1, Ordering::Relaxed);
            Err(ModelError::Unavailable)
        }
    }

    #[test]
    fn hits_serve_stored_response_verbatim() {
        let model = CachedModel::new(CountingEcho::new());
        let q = question(7);
        let query = Query::new("is a a b?", &q, PromptSetting::ZeroShot);
        let first = model.answer(&query).expect("echo model never fails");
        let second = model.answer(&query).expect("echo model never fails");
        assert_eq!(first, second);
        assert_eq!(second.latency_s, 0.25, "hit must preserve stored latency");
        assert_eq!(model.base().calls(), 1, "second call must be served from cache");
        let stats = model.cache().stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_stats_aggregate_across_shards() {
        let a = CacheStats { hits: 3, misses: 1, insertions: 1 };
        let b = CacheStats { hits: 1, misses: 3, insertions: 2 };
        let mut via_add_assign = a;
        via_add_assign += b;
        let via_sum: CacheStats = [a, b].into_iter().sum();
        assert_eq!(via_add_assign, via_sum);
        assert_eq!(via_sum, CacheStats { hits: 4, misses: 4, insertions: 3 });
        assert!((via_sum.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_distinguishes_question_setting_attempt_and_prompt() {
        let model = CachedModel::new(CountingEcho::new());
        let qa = question(1);
        let qb = question(2);
        let variants = [
            Query::new("p", &qa, PromptSetting::ZeroShot),
            Query::new("p", &qb, PromptSetting::ZeroShot),
            Query::new("p", &qa, PromptSetting::FewShot),
            Query::new("p", &qa, PromptSetting::ZeroShot).with_attempt(1),
            Query::new("p2", &qa, PromptSetting::ZeroShot),
        ];
        for query in &variants {
            model.answer(query).expect("echo model never fails");
        }
        assert_eq!(model.base().calls(), variants.len() as u32);
        assert_eq!(model.cache().len(), variants.len());
        // Re-asking each is now a hit.
        for query in &variants {
            model.answer(query).expect("echo model never fails");
        }
        assert_eq!(model.base().calls(), variants.len() as u32);
    }

    #[test]
    fn errors_are_never_cached() {
        let model = CachedModel::new(AlwaysFails { calls: AtomicU32::new(0) });
        let q = question(3);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        for _ in 0..3 {
            assert_eq!(model.answer(&query), Err(ModelError::Unavailable));
        }
        // Relaxed: test-only counter.
        assert_eq!(model.base().calls.load(Ordering::Relaxed), 3);
        assert!(model.cache().is_empty());
        assert_eq!(model.cache().stats().insertions, 0);
    }

    #[test]
    fn version_change_invalidates_but_same_version_keeps() {
        let cache = Arc::new(ResponseCache::with_version(0xAAAA));
        let model = CachedModel::with_cache(CountingEcho::new(), Arc::clone(&cache));
        let q = question(4);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        model.answer(&query).expect("echo model never fails");
        assert_eq!(cache.len(), 1);
        cache.set_version(0xAAAA);
        assert_eq!(cache.len(), 1, "same-version stamp must keep entries");
        cache.set_version(0xBBBB);
        assert!(cache.is_empty(), "version change must clear entries");
        model.answer(&query).expect("echo model never fails");
        assert_eq!(model.base().calls(), 2, "post-invalidation call must re-deliver");
    }

    #[test]
    fn taxonomy_edit_changes_digest_and_invalidates() {
        use taxoglimpse_synth::{generate, GenOptions};
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 11, scale: 0.05 })
            .expect("ebay generation succeeds at this scale");
        let edited = t.truncate_below(2).taxonomy;
        assert_ne!(t.content_digest(), edited.content_digest());

        let cache = Arc::new(ResponseCache::with_version(t.content_digest()));
        let model = CachedModel::with_cache(CountingEcho::new(), Arc::clone(&cache));
        let q = question(5);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        model.answer(&query).expect("echo model never fails");
        cache.set_version(edited.content_digest());
        assert!(cache.is_empty(), "edited snapshot must invalidate the cache");
    }

    #[test]
    fn batch_matches_single_calls_with_and_without_prefix_hint() {
        let q0 = question(10);
        let q1 = question(11);
        let q2 = question(12);
        let prefix = "Example: one Yes\n";
        let prompts: Vec<String> =
            ["is a?", "is b?", "is c?"].iter().map(|s| format!("{prefix}{s}")).collect();
        let questions = [&q0, &q1, &q2];
        let hinted: Vec<Query<'_>> = prompts
            .iter()
            .zip(questions)
            .map(|(p, q)| Query::new(p, q, PromptSetting::FewShot).with_prefix_len(prefix.len()))
            .collect();
        let bare: Vec<Query<'_>> = prompts
            .iter()
            .zip(questions)
            .map(|(p, q)| Query::new(p, q, PromptSetting::FewShot))
            .collect();

        let reference = CachedModel::new(CountingEcho::new());
        let expected: Vec<_> = bare.iter().map(|q| reference.answer(q)).collect();

        let batched = CachedModel::new(CountingEcho::new());
        assert_eq!(batched.answer_batch(&hinted), expected, "hinted batch diverged");
        assert_eq!(batched.base().calls(), 3);
        // Second pass: all hits, regardless of hint presence.
        assert_eq!(batched.answer_batch(&bare), expected, "unhinted batch diverged");
        assert_eq!(batched.base().calls(), 3, "second pass must be fully cached");
        assert_eq!(batched.cache().stats().hits, 3);
    }

    #[test]
    fn reset_keeps_cache_entries() {
        let model = CachedModel::new(CountingEcho::new());
        let q = question(6);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        model.answer(&query).expect("echo model never fails");
        model.reset();
        model.answer(&query).expect("echo model never fails");
        assert_eq!(model.base().calls(), 1, "reset must not drop memoized answers");
    }
}
