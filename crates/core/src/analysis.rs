//! Statistical analysis over evaluation results.
//!
//! The paper's narrative rests on comparisons ("GPT-4 outperforms…",
//! "accuracy declines with depth", "popularity predicts accuracy").
//! This module provides the statistics to make such claims precise:
//!
//! * [`two_proportion_z`] — is one model's accuracy significantly higher
//!   than another's on the same dataset?
//! * [`spearman`] — rank correlation, e.g. taxonomy popularity vs.
//!   model accuracy (Finding 1 as a number);
//! * [`level_trend`] — least-squares slope of accuracy over levels
//!   (Finding 2 as a number, negative = root-to-leaf decline);
//! * McNemar-style paired comparison on shared questions.

use crate::eval::EvalReport;
use crate::metrics::Metrics;

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZTest {
    /// The z statistic (positive = first proportion larger).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl ZTest {
    /// Significant at the 5% level?
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Two-proportion z-test on accuracies (pooled standard error).
pub fn two_proportion_z(a: &Metrics, b: &Metrics) -> ZTest {
    let (na, nb) = (a.total() as f64, b.total() as f64);
    if na == 0.0 || nb == 0.0 {
        return ZTest { z: 0.0, p_value: 1.0 };
    }
    let (pa, pb) = (a.accuracy(), b.accuracy());
    let pooled = (a.correct + b.correct) as f64 / (na + nb);
    let se = (pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb)).sqrt();
    if se == 0.0 {
        return ZTest { z: 0.0, p_value: 1.0 };
    }
    let z = (pa - pb) / se;
    ZTest { z, p_value: 2.0 * (1.0 - standard_normal_cdf(z.abs())) }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — plenty for significance testing).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Spearman rank correlation of two equally long samples.
///
/// Ties get average ranks. Returns 0 for degenerate inputs.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples must align");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Least-squares slope of per-level accuracy over child level — the
/// paper's root-to-leaf decline as a single number (negative = decline).
pub fn level_trend(report: &EvalReport) -> f64 {
    let points: Vec<(f64, f64)> = report
        .accuracy_by_level()
        .into_iter()
        .map(|(level, acc)| (level as f64, acc))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let num: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QuestionDataset;
    use crate::domain::TaxonomyKind;
    use crate::eval::LevelMetrics;
    use crate::prompts::PromptSetting;

    fn metrics(correct: usize, wrong: usize) -> Metrics {
        Metrics { correct, missed: 0, wrong, failed: 0 }
    }

    #[test]
    fn z_test_detects_clear_gaps() {
        // 90% vs 60% over 300 questions each: decisively significant.
        let t = two_proportion_z(&metrics(270, 30), &metrics(180, 120));
        assert!(t.z > 5.0);
        assert!(t.significant());
        // 52% vs 50% over 100 each: not significant.
        let t2 = two_proportion_z(&metrics(52, 48), &metrics(50, 50));
        assert!(!t2.significant(), "p = {}", t2.p_value);
        // Degenerate inputs.
        let t3 = two_proportion_z(&Metrics::default(), &metrics(5, 5));
        assert_eq!(t3.p_value, 1.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.959_963_985) - 0.975).abs() < 1e-4);
        assert!((standard_normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-4);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        // Monotone but nonlinear is still a perfect rank correlation.
        assert!((spearman(&[1.0, 2.0, 3.0, 4.0], &[1.0, 8.0, 27.0, 64.0]) - 1.0).abs() < 1e-12);
        // Ties get average ranks without panicking.
        let r = spearman(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(r > 0.0 && r < 1.0);
        assert_eq!(spearman(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples must align")]
    fn spearman_rejects_mismatched_lengths() {
        spearman(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn level_trend_detects_decline() {
        let mk = |accs: &[f64]| EvalReport {
            model: "m".into(),
            taxonomy: TaxonomyKind::Ebay,
            flavor: QuestionDataset::Hard,
            setting: PromptSetting::ZeroShot,
            overall: Metrics::default(),
            by_level: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| LevelMetrics {
                    child_level: i + 1,
                    metrics: Metrics {
                        correct: (a * 1000.0) as usize,
                        missed: 0,
                        wrong: 1000 - (a * 1000.0) as usize,
                        failed: 0,
                    },
                })
                .collect(),
        };
        assert!(level_trend(&mk(&[0.9, 0.8, 0.7, 0.6])) < -0.05);
        assert!(level_trend(&mk(&[0.5, 0.6, 0.7])) > 0.05);
        assert_eq!(level_trend(&mk(&[0.5])), 0.0);
    }
}
