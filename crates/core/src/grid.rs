//! Parallel grid evaluation.
//!
//! Tables 5–7 evaluate a (model × taxonomy) grid — hundreds of thousands
//! of independent queries. [`GridRunner`] splits every cell into
//! fixed-size question-range chunks and fans the `(cell, chunk)` work
//! units out over a scoped thread pool. Chunking is what keeps the pool
//! busy at the tail: with whole-cell scheduling the one NCBI-sized cell
//! serializes the end of the grid, while chunks of a few hundred
//! questions keep every worker fed until the last few units.
//!
//! Everything is deterministic: models are `Send + Sync` and answer as a
//! pure function of (question, setting), and chunk [`Metrics`] are
//! additive counters merged in ascending index order — so the assembled
//! reports are byte-identical to a sequential run regardless of thread
//! count, chunk size, or scheduling order (proven by
//! `tests/perf_equivalence.rs`).

use crate::dataset::Dataset;
use crate::eval::{EvalConfig, EvalReport, Evaluator, LevelMetrics};
use crate::metrics::Metrics;
use crate::model::LanguageModel;
use crate::resilience::ResiliencePolicy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default questions per work unit. Large enough that scheduling
/// overhead (one atomic fetch and one lock per unit) is noise, small
/// enough that even a single big cell splits into many units.
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// One grid cell: which model to run on which dataset.
#[derive(Debug, Clone, Copy)]
pub struct GridCell {
    /// Index into the runner's model list.
    pub model: usize,
    /// Index into the runner's dataset list.
    pub dataset: usize,
}

/// One schedulable unit: a question range of one level of one cell.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    /// Index into the cell list.
    cell: usize,
    /// Index into the dataset's level slices.
    level: usize,
    /// Question range within the level (empty for an empty level).
    start: usize,
    end: usize,
}

/// Fans (model × dataset) evaluations out over worker threads.
#[derive(Debug, Clone, Copy)]
pub struct GridRunner {
    config: EvalConfig,
    threads: usize,
    chunk_size: usize,
    batch_size: usize,
    resilience: ResiliencePolicy,
    shard: Option<usize>,
}

/// Builds a [`GridRunner`]: the one place to set the evaluation
/// configuration, worker count, chunk granularity and resilience
/// policy. Defaults: `EvalConfig::default()`, the machine's available
/// parallelism, [`DEFAULT_CHUNK_SIZE`], [`ResiliencePolicy::default`].
#[derive(Debug, Clone, Copy)]
pub struct GridRunnerBuilder {
    config: EvalConfig,
    threads: Option<usize>,
    chunk_size: usize,
    batch_size: usize,
    resilience: ResiliencePolicy,
    shard: Option<usize>,
}

impl Default for GridRunnerBuilder {
    fn default() -> Self {
        GridRunnerBuilder {
            config: EvalConfig::default(),
            threads: None,
            chunk_size: DEFAULT_CHUNK_SIZE,
            batch_size: crate::eval::DEFAULT_BATCH_SIZE,
            resilience: ResiliencePolicy::default(),
            shard: None,
        }
    }
}

impl GridRunnerBuilder {
    /// Set the evaluation configuration (setting + template variant).
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the worker count (clamped to ≥ 1). Unset = available
    /// parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Set the questions-per-work-unit granularity (clamped to ≥ 1).
    /// With a fixed fault plan, results are identical for every worker
    /// count; chunk size additionally scopes per-chunk resilience
    /// sessions, so it is part of a run's deterministic identity.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Set the `answer_batch` batch size used inside every chunk
    /// (clamped to >= 1). Report bytes are identical at every batch
    /// size; this only tunes how attempt-0 deliveries are grouped.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the resilience policy applied inside every chunk.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Label this runner as shard `shard` of a sharded run
    /// (`core::shard`). The label is pure attribution: it prefixes cell
    /// panic reports so a failure in a sharded grid names the shard it
    /// happened on, and it never influences scheduling, evaluation, or
    /// report bytes.
    pub fn with_shard_id(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Finish: resolve defaults into a runner.
    pub fn build(self) -> GridRunner {
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        });
        GridRunner {
            config: self.config,
            threads,
            chunk_size: self.chunk_size,
            batch_size: self.batch_size,
            resilience: self.resilience,
            shard: self.shard,
        }
    }
}

impl GridRunner {
    /// Start building a runner.
    pub fn builder() -> GridRunnerBuilder {
        GridRunnerBuilder::default()
    }

    /// A runner sized to the machine's available parallelism.
    pub fn with_available_parallelism(config: EvalConfig) -> Self {
        Self::builder().with_config(config).build()
    }

    /// Evaluate the full cross product of `models` × `datasets`.
    ///
    /// Results are returned in deterministic row-major order
    /// (`models[0]` on every dataset, then `models[1]`, and so on),
    /// regardless
    /// of scheduling.
    pub fn run_cross(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
    ) -> Vec<EvalReport> {
        let cells: Vec<GridCell> = (0..models.len())
            .flat_map(|m| (0..datasets.len()).map(move |d| GridCell { model: m, dataset: d }))
            .collect();
        self.run_cells(models, datasets, &cells)
    }

    /// Evaluate an explicit list of cells (deduplicated order preserved).
    ///
    /// A panic inside one cell's evaluation does not take down the whole
    /// grid or poison the result lock: the cell's panic is caught, every
    /// other cell still completes, and this method then panics with a
    /// message naming each failed `(model, dataset)` cell.
    pub fn run_cells(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
        cells: &[GridCell],
    ) -> Vec<EvalReport> {
        let evaluator = Evaluator::builder()
            .with_config(self.config)
            .with_resilience(self.resilience)
            .with_batch_size(self.batch_size)
            .build();

        // Split every cell into (level, question-range) work units —
        // cell-major, level-major, ascending start, so merging unit
        // results in index order replays the sequential question order.
        // An empty level still gets one (empty) unit, keeping the
        // per-level report structure uniform.
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut cell_units: Vec<std::ops::Range<usize>> = Vec::with_capacity(cells.len());
        for (ci, cell) in cells.iter().enumerate() {
            let first = units.len();
            for (li, slice) in datasets[cell.dataset].levels.iter().enumerate() {
                let n = slice.questions.len();
                let mut start = 0usize;
                loop {
                    let end = n.min(start.saturating_add(self.chunk_size));
                    units.push(WorkUnit { cell: ci, level: li, start, end });
                    start = end;
                    if start >= n {
                        break;
                    }
                }
            }
            cell_units.push(first..units.len());
        }

        // Per-run model reset happens once per cell up front (exactly as
        // often as the old whole-cell path), before any chunk of that
        // cell can run.
        for cell in cells {
            models[cell.model].reset();
        }

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<ChunkResult>>> = Mutex::new(vec![None; units.len()]);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(units.len().max(1)) {
                scope.spawn(|| loop {
                    // Relaxed is sound here: the counter is the *only*
                    // cross-thread coordination, and each fetch_add
                    // hands out a distinct unit index (RMW atomicity
                    // needs no ordering). Results are merged in unit
                    // order after `scope` joins, and the join itself is
                    // the happens-before edge that publishes every
                    // worker's writes — so claim order cannot affect
                    // the merged bytes.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let unit = units[i];
                    let cell = cells[unit.cell];
                    let slice = &datasets[cell.dataset].levels[unit.level];
                    // Catch the panic *before* taking the lock so a
                    // misbehaving chunk can never poison it for the rest
                    // of the grid.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        evaluator.run_questions(
                            models[cell.model],
                            &slice.questions[unit.start..unit.end],
                            &slice.exemplars,
                        )
                    }))
                    .map_err(|payload| panic_message(payload.as_ref()));
                    results.lock().expect("no panics while holding the lock")[i] = Some(outcome);
                });
            }
        });

        let outcomes = results.into_inner().expect("scope joined all workers");

        // Failures are aggregated per *cell* (first failing chunk's
        // reason speaks for the cell), preserving the cell-identity
        // panic contract at chunk granularity — and naming the failing
        // chunk's level and question-index range so a panic in one
        // chunk of a 100k-question cell is findable.
        let failures: Vec<String> = cells
            .iter()
            .zip(&cell_units)
            .filter_map(|(cell, range)| {
                let (unit, reason) = units[range.clone()]
                    .iter()
                    .zip(&outcomes[range.clone()])
                    .find_map(|(unit, o)| match o {
                        Some(Err(reason)) => Some((unit, reason)),
                        _ => None,
                    })?;
                let dataset = datasets[cell.dataset];
                // Sharded runs (`core::shard`) label each per-shard
                // runner, so a failure stays attributable to the shard
                // that owned the cell.
                let shard = match self.shard {
                    Some(s) => format!("shard {s} "),
                    None => String::new(),
                };
                Some(format!(
                    "{shard}cell (model `{}`, dataset `{:?}`) level {} questions {}..{}: {reason}",
                    models[cell.model].name(),
                    dataset.taxonomy,
                    dataset.levels[unit.level].child_level,
                    unit.start,
                    unit.end,
                ))
            })
            .collect();
        if !failures.is_empty() {
            // lint:allow(P001, deliberate re-panic - worker panics are joined and surfaced after all cells finish)
            panic!("{} grid cell(s) panicked: {}", failures.len(), failures.join("; "));
        }

        // Merge chunk metrics in unit-index order. Metrics are additive
        // counters, so the per-level and overall sums are bit-for-bit
        // what a sequential pass records.
        cells
            .iter()
            .zip(&cell_units)
            .map(|(cell, range)| {
                let dataset = datasets[cell.dataset];
                let mut by_level: Vec<LevelMetrics> = dataset
                    .levels
                    .iter()
                    .map(|s| LevelMetrics { child_level: s.child_level, metrics: Metrics::default() })
                    .collect();
                for (unit, outcome) in units[range.clone()].iter().zip(&outcomes[range.clone()]) {
                    let metrics = outcome
                        .as_ref()
                        .expect("every unit was processed")
                        .as_ref()
                        .expect("failures handled above");
                    by_level[unit.level].metrics += *metrics;
                }
                let mut overall = Metrics::default();
                for level in &by_level {
                    overall += level.metrics;
                }
                EvalReport {
                    model: models[cell.model].name().to_owned(),
                    taxonomy: dataset.taxonomy,
                    flavor: dataset.flavor,
                    setting: self.config.setting,
                    overall,
                    by_level,
                }
            })
            .collect()
    }
}

type ChunkResult = Result<Metrics, String>;

/// Best-effort extraction of a panic payload's message (shared with
/// `crate::shard`, which labels per-slot failures the same way).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, QuestionDataset};
    use crate::domain::TaxonomyKind;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn datasets() -> Vec<Dataset> {
        [TaxonomyKind::Ebay, TaxonomyKind::GeoNames]
            .into_iter()
            .map(|kind| {
                let t = generate(kind, GenOptions { seed: 11, scale: 1.0 }).unwrap();
                DatasetBuilder::new(&t, kind, 11)
                    .sample_cap(Some(40))
                    .build(QuestionDataset::Hard)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let idk = FixedAnswerModel::always_idk();
        let models: Vec<&dyn LanguageModel> = vec![&yes, &idk];

        let sequential: Vec<EvalReport> = models
            .iter()
            .flat_map(|m| {
                dataset_refs
                    .iter()
                    .map(|d| Evaluator::default().run(*m, d))
            })
            .collect();
        let parallel = GridRunner::builder().with_threads(4).build().run_cross(&models, &dataset_refs);

        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.overall, s.overall);
            assert_eq!(p.model, s.model);
            assert_eq!(p.taxonomy, s.taxonomy);
        }
    }

    #[test]
    fn single_thread_still_works() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let reports = GridRunner::builder().with_threads(1).build().run_cross(&models, &dataset_refs);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn explicit_cells_preserve_order() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let cells = vec![
            GridCell { model: 0, dataset: 1 },
            GridCell { model: 0, dataset: 0 },
        ];
        let reports = GridRunner::builder()
            .with_threads(8)
            .build()
            .run_cells(&models, &dataset_refs, &cells);
        assert_eq!(reports[0].taxonomy, TaxonomyKind::GeoNames);
        assert_eq!(reports[1].taxonomy, TaxonomyKind::Ebay);
    }

    #[test]
    fn empty_grid_is_fine() {
        let reports = GridRunner::builder().with_threads(4).build().run_cells(&[], &[], &[]);
        assert!(reports.is_empty());
    }

    struct PanickingModel;

    impl LanguageModel for PanickingModel {
        fn name(&self) -> &str {
            "panicker"
        }

        fn answer(
            &self,
            _query: &crate::model::Query<'_>,
        ) -> Result<crate::model::Response, crate::model::ModelError> {
            panic!("synthetic cell failure")
        }
    }

    #[test]
    fn panicking_cell_is_reported_by_identity() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let bad = PanickingModel;
        let models: Vec<&dyn LanguageModel> = vec![&yes, &bad];

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::builder().with_threads(4).build().run_cross(&models, &dataset_refs)
        }));
        let message = panic_message(result.expect_err("grid should surface the failure").as_ref());
        assert!(message.contains("2 grid cell(s) panicked"), "{message}");
        assert!(message.contains("model `panicker`"), "{message}");
        assert!(message.contains("Ebay") && message.contains("GeoNames"), "{message}");
        assert!(message.contains("synthetic cell failure"), "{message}");
        assert!(!message.contains("always-yes"), "healthy cells must not be blamed: {message}");
    }

    /// Regression (PR 5): the panic report names the failing chunk's
    /// level and question-index range, not just the cell identity.
    #[test]
    fn panic_report_names_level_and_question_range() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = vec![&ds[0]];
        let bad = PanickingModel;
        let models: Vec<&dyn LanguageModel> = vec![&bad];

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::builder()
                .with_threads(1)
                .with_chunk_size(5)
                .build()
                .run_cross(&models, &dataset_refs)
        }));
        let message = panic_message(result.expect_err("grid should surface the failure").as_ref());
        let first_level = ds[0].levels[0].child_level;
        assert!(
            message.contains(&format!("level {first_level} questions 0..5")),
            "chunked failure must carry its question range: {message}"
        );
    }

    /// Regression (PR 7): a shard-labelled runner prefixes cell panic
    /// reports with its shard id; an unlabelled runner stays as before.
    #[test]
    fn panic_report_names_shard_when_labelled() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = vec![&ds[0]];
        let bad = PanickingModel;
        let models: Vec<&dyn LanguageModel> = vec![&bad];

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::builder()
                .with_threads(1)
                .with_shard_id(5)
                .build()
                .run_cross(&models, &dataset_refs)
        }));
        let message = panic_message(result.expect_err("grid should surface the failure").as_ref());
        assert!(
            message.contains("shard 5 cell (model `panicker`"),
            "sharded failure must carry its shard id: {message}"
        );

        let unlabelled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::builder().with_threads(1).build().run_cross(&models, &dataset_refs)
        }));
        let message =
            panic_message(unlabelled.expect_err("grid should surface the failure").as_ref());
        assert!(
            message.contains("panicked: cell (model `panicker`"),
            "unsharded failures must not grow a shard label: {message}"
        );
    }

    /// Failing model calls degrade gracefully through the grid: the
    /// cell completes with `Failed` outcomes and availability < 100%,
    /// and healthy cells are untouched.
    #[test]
    fn failed_calls_flow_into_availability() {
        struct DownModel;
        impl LanguageModel for DownModel {
            fn name(&self) -> &str {
                "down"
            }
            fn answer(
                &self,
                _query: &crate::model::Query<'_>,
            ) -> Result<crate::model::Response, crate::model::ModelError> {
                Err(crate::model::ModelError::Unavailable)
            }
        }

        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = vec![&ds[0]];
        let yes = FixedAnswerModel::always_yes();
        let down = DownModel;
        let models: Vec<&dyn LanguageModel> = vec![&yes, &down];
        let reports = GridRunner::builder()
            .with_threads(4)
            .build()
            .run_cross(&models, &dataset_refs);
        assert_eq!(reports[0].overall.availability(), 1.0);
        assert_eq!(reports[0].overall.failed, 0);
        assert_eq!(reports[1].overall.availability(), 0.0, "every call failed");
        assert_eq!(reports[1].overall.failed, reports[1].overall.total());
        assert_eq!(reports[1].overall.accuracy(), 0.0);
    }
}
