//! Parallel grid evaluation.
//!
//! Tables 5–7 evaluate a (model × taxonomy) grid — hundreds of thousands
//! of independent queries. [`GridRunner`] fans the grid's cells out over
//! a scoped thread pool (cells are embarrassingly parallel; every model
//! is `Send + Sync` and deterministic, so parallel results are
//! byte-identical to sequential ones).

use crate::dataset::Dataset;
use crate::eval::{EvalConfig, EvalReport, Evaluator};
use crate::model::LanguageModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One grid cell: which model to run on which dataset.
#[derive(Debug, Clone, Copy)]
pub struct GridCell {
    /// Index into the runner's model list.
    pub model: usize,
    /// Index into the runner's dataset list.
    pub dataset: usize,
}

/// Fans (model × dataset) evaluations out over worker threads.
#[derive(Debug, Clone, Copy)]
pub struct GridRunner {
    config: EvalConfig,
    threads: usize,
}

impl GridRunner {
    /// A runner using up to `threads` workers (clamped to ≥ 1).
    pub fn new(config: EvalConfig, threads: usize) -> Self {
        GridRunner { config, threads: threads.max(1) }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn with_available_parallelism(config: EvalConfig) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(config, threads)
    }

    /// Evaluate the full cross product of `models` × `datasets`.
    ///
    /// Results are returned in deterministic row-major order
    /// (`models[0]` on every dataset, then `models[1]`, and so on),
    /// regardless
    /// of scheduling.
    pub fn run_cross(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
    ) -> Vec<EvalReport> {
        let cells: Vec<GridCell> = (0..models.len())
            .flat_map(|m| (0..datasets.len()).map(move |d| GridCell { model: m, dataset: d }))
            .collect();
        self.run_cells(models, datasets, &cells)
    }

    /// Evaluate an explicit list of cells (deduplicated order preserved).
    ///
    /// A panic inside one cell's evaluation does not take down the whole
    /// grid or poison the result lock: the cell's panic is caught, every
    /// other cell still completes, and this method then panics with a
    /// message naming each failed `(model, dataset)` cell.
    pub fn run_cells(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
        cells: &[GridCell],
    ) -> Vec<EvalReport> {
        let evaluator = Evaluator::new(self.config);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(cells.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = cells[i];
                    // Catch the panic *before* taking the lock so a
                    // misbehaving cell can never poison it for the rest
                    // of the grid.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        evaluator.run(models[cell.model], datasets[cell.dataset])
                    }))
                    .map_err(|payload| panic_message(payload.as_ref()));
                    results.lock().expect("no panics while holding the lock")[i] = Some(outcome);
                });
            }
        });

        let outcomes = results.into_inner().expect("scope joined all workers");
        let failures: Vec<String> = outcomes
            .iter()
            .zip(cells)
            .filter_map(|(outcome, cell)| match outcome {
                Some(Err(reason)) => Some(format!(
                    "cell (model `{}`, dataset `{:?}`): {reason}",
                    models[cell.model].name(),
                    datasets[cell.dataset].taxonomy,
                )),
                _ => None,
            })
            .collect();
        if !failures.is_empty() {
            panic!("{} grid cell(s) panicked: {}", failures.len(), failures.join("; "));
        }

        outcomes
            .into_iter()
            .map(|r| r.expect("every cell was processed").expect("failures handled above"))
            .collect()
    }
}

type CellResult = Result<EvalReport, String>;

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, QuestionDataset};
    use crate::domain::TaxonomyKind;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn datasets() -> Vec<Dataset> {
        [TaxonomyKind::Ebay, TaxonomyKind::GeoNames]
            .into_iter()
            .map(|kind| {
                let t = generate(kind, GenOptions { seed: 11, scale: 1.0 }).unwrap();
                DatasetBuilder::new(&t, kind, 11)
                    .sample_cap(Some(40))
                    .build(QuestionDataset::Hard)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let idk = FixedAnswerModel::always_idk();
        let models: Vec<&dyn LanguageModel> = vec![&yes, &idk];

        let sequential: Vec<EvalReport> = models
            .iter()
            .flat_map(|m| {
                dataset_refs
                    .iter()
                    .map(|d| Evaluator::new(EvalConfig::default()).run(*m, d))
            })
            .collect();
        let parallel = GridRunner::new(EvalConfig::default(), 4).run_cross(&models, &dataset_refs);

        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.overall, s.overall);
            assert_eq!(p.model, s.model);
            assert_eq!(p.taxonomy, s.taxonomy);
        }
    }

    #[test]
    fn single_thread_still_works() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let reports = GridRunner::new(EvalConfig::default(), 1).run_cross(&models, &dataset_refs);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn explicit_cells_preserve_order() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let cells = vec![
            GridCell { model: 0, dataset: 1 },
            GridCell { model: 0, dataset: 0 },
        ];
        let reports = GridRunner::new(EvalConfig::default(), 8).run_cells(&models, &dataset_refs, &cells);
        assert_eq!(reports[0].taxonomy, TaxonomyKind::GeoNames);
        assert_eq!(reports[1].taxonomy, TaxonomyKind::Ebay);
    }

    #[test]
    fn empty_grid_is_fine() {
        let reports = GridRunner::new(EvalConfig::default(), 4).run_cells(&[], &[], &[]);
        assert!(reports.is_empty());
    }

    struct PanickingModel;

    impl LanguageModel for PanickingModel {
        fn name(&self) -> &str {
            "panicker"
        }

        fn answer(&self, _query: &crate::model::Query<'_>) -> String {
            panic!("synthetic cell failure")
        }
    }

    #[test]
    fn panicking_cell_is_reported_by_identity() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let bad = PanickingModel;
        let models: Vec<&dyn LanguageModel> = vec![&yes, &bad];

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::new(EvalConfig::default(), 4).run_cross(&models, &dataset_refs)
        }));
        let message = panic_message(result.expect_err("grid should surface the failure").as_ref());
        assert!(message.contains("2 grid cell(s) panicked"), "{message}");
        assert!(message.contains("model `panicker`"), "{message}");
        assert!(message.contains("Ebay") && message.contains("GeoNames"), "{message}");
        assert!(message.contains("synthetic cell failure"), "{message}");
        assert!(!message.contains("always-yes"), "healthy cells must not be blamed: {message}");
    }
}
