//! Parallel grid evaluation.
//!
//! Tables 5–7 evaluate a (model × taxonomy) grid — hundreds of thousands
//! of independent queries. [`GridRunner`] splits every cell into
//! fixed-size question-range chunks and fans the `(cell, chunk)` work
//! units out over a scoped thread pool. Chunking is what keeps the pool
//! busy at the tail: with whole-cell scheduling the one NCBI-sized cell
//! serializes the end of the grid, while chunks of a few hundred
//! questions keep every worker fed until the last few units.
//!
//! Everything is deterministic: models are `Send + Sync` and answer as a
//! pure function of (question, setting), and chunk [`Metrics`] are
//! additive counters merged in ascending index order — so the assembled
//! reports are byte-identical to a sequential run regardless of thread
//! count, chunk size, or scheduling order (proven by
//! `tests/perf_equivalence.rs`).

use crate::dataset::Dataset;
use crate::eval::{EvalConfig, EvalReport, Evaluator, LevelMetrics};
use crate::metrics::Metrics;
use crate::model::LanguageModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default questions per work unit. Large enough that scheduling
/// overhead (one atomic fetch and one lock per unit) is noise, small
/// enough that even a single big cell splits into many units.
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// One grid cell: which model to run on which dataset.
#[derive(Debug, Clone, Copy)]
pub struct GridCell {
    /// Index into the runner's model list.
    pub model: usize,
    /// Index into the runner's dataset list.
    pub dataset: usize,
}

/// One schedulable unit: a question range of one level of one cell.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    /// Index into the cell list.
    cell: usize,
    /// Index into the dataset's level slices.
    level: usize,
    /// Question range within the level (empty for an empty level).
    start: usize,
    end: usize,
}

/// Fans (model × dataset) evaluations out over worker threads.
#[derive(Debug, Clone, Copy)]
pub struct GridRunner {
    config: EvalConfig,
    threads: usize,
    chunk_size: usize,
}

impl GridRunner {
    /// A runner using up to `threads` workers (clamped to ≥ 1).
    pub fn new(config: EvalConfig, threads: usize) -> Self {
        GridRunner { config, threads: threads.max(1), chunk_size: DEFAULT_CHUNK_SIZE }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn with_available_parallelism(config: EvalConfig) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(config, threads)
    }

    /// Override the questions-per-work-unit granularity (clamped to
    /// ≥ 1). Results are identical for every chunk size; only load
    /// balance changes.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Evaluate the full cross product of `models` × `datasets`.
    ///
    /// Results are returned in deterministic row-major order
    /// (`models[0]` on every dataset, then `models[1]`, and so on),
    /// regardless
    /// of scheduling.
    pub fn run_cross(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
    ) -> Vec<EvalReport> {
        let cells: Vec<GridCell> = (0..models.len())
            .flat_map(|m| (0..datasets.len()).map(move |d| GridCell { model: m, dataset: d }))
            .collect();
        self.run_cells(models, datasets, &cells)
    }

    /// Evaluate an explicit list of cells (deduplicated order preserved).
    ///
    /// A panic inside one cell's evaluation does not take down the whole
    /// grid or poison the result lock: the cell's panic is caught, every
    /// other cell still completes, and this method then panics with a
    /// message naming each failed `(model, dataset)` cell.
    pub fn run_cells(
        &self,
        models: &[&dyn LanguageModel],
        datasets: &[&Dataset],
        cells: &[GridCell],
    ) -> Vec<EvalReport> {
        let evaluator = Evaluator::new(self.config);

        // Split every cell into (level, question-range) work units —
        // cell-major, level-major, ascending start, so merging unit
        // results in index order replays the sequential question order.
        // An empty level still gets one (empty) unit, keeping the
        // per-level report structure uniform.
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut cell_units: Vec<std::ops::Range<usize>> = Vec::with_capacity(cells.len());
        for (ci, cell) in cells.iter().enumerate() {
            let first = units.len();
            for (li, slice) in datasets[cell.dataset].levels.iter().enumerate() {
                let n = slice.questions.len();
                let mut start = 0usize;
                loop {
                    let end = n.min(start.saturating_add(self.chunk_size));
                    units.push(WorkUnit { cell: ci, level: li, start, end });
                    start = end;
                    if start >= n {
                        break;
                    }
                }
            }
            cell_units.push(first..units.len());
        }

        // Per-run model reset happens once per cell up front (exactly as
        // often as the old whole-cell path), before any chunk of that
        // cell can run.
        for cell in cells {
            models[cell.model].reset();
        }

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<ChunkResult>>> = Mutex::new(vec![None; units.len()]);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(units.len().max(1)) {
                scope.spawn(|| loop {
                    // Relaxed is sound here: the counter is the *only*
                    // cross-thread coordination, and each fetch_add
                    // hands out a distinct unit index (RMW atomicity
                    // needs no ordering). Results are merged in unit
                    // order after `scope` joins, and the join itself is
                    // the happens-before edge that publishes every
                    // worker's writes — so claim order cannot affect
                    // the merged bytes.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let unit = units[i];
                    let cell = cells[unit.cell];
                    let slice = &datasets[cell.dataset].levels[unit.level];
                    // Catch the panic *before* taking the lock so a
                    // misbehaving chunk can never poison it for the rest
                    // of the grid.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        evaluator.run_questions(
                            models[cell.model],
                            &slice.questions[unit.start..unit.end],
                            &slice.exemplars,
                        )
                    }))
                    .map_err(|payload| panic_message(payload.as_ref()));
                    results.lock().expect("no panics while holding the lock")[i] = Some(outcome);
                });
            }
        });

        let outcomes = results.into_inner().expect("scope joined all workers");

        // Failures are aggregated per *cell* (first failing chunk's
        // reason speaks for the cell), preserving the cell-identity
        // panic contract at chunk granularity.
        let failures: Vec<String> = cells
            .iter()
            .zip(&cell_units)
            .filter_map(|(cell, range)| {
                let reason = outcomes[range.clone()].iter().find_map(|o| match o {
                    Some(Err(reason)) => Some(reason),
                    _ => None,
                })?;
                Some(format!(
                    "cell (model `{}`, dataset `{:?}`): {reason}",
                    models[cell.model].name(),
                    datasets[cell.dataset].taxonomy,
                ))
            })
            .collect();
        if !failures.is_empty() {
            panic!("{} grid cell(s) panicked: {}", failures.len(), failures.join("; "));
        }

        // Merge chunk metrics in unit-index order. Metrics are additive
        // counters, so the per-level and overall sums are bit-for-bit
        // what a sequential pass records.
        cells
            .iter()
            .zip(&cell_units)
            .map(|(cell, range)| {
                let dataset = datasets[cell.dataset];
                let mut by_level: Vec<LevelMetrics> = dataset
                    .levels
                    .iter()
                    .map(|s| LevelMetrics { child_level: s.child_level, metrics: Metrics::default() })
                    .collect();
                for (unit, outcome) in units[range.clone()].iter().zip(&outcomes[range.clone()]) {
                    let metrics = outcome
                        .as_ref()
                        .expect("every unit was processed")
                        .as_ref()
                        .expect("failures handled above");
                    by_level[unit.level].metrics += *metrics;
                }
                let mut overall = Metrics::default();
                for level in &by_level {
                    overall += level.metrics;
                }
                EvalReport {
                    model: models[cell.model].name().to_owned(),
                    taxonomy: dataset.taxonomy,
                    flavor: dataset.flavor,
                    setting: self.config.setting,
                    overall,
                    by_level,
                }
            })
            .collect()
    }
}

type ChunkResult = Result<Metrics, String>;

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, QuestionDataset};
    use crate::domain::TaxonomyKind;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn datasets() -> Vec<Dataset> {
        [TaxonomyKind::Ebay, TaxonomyKind::GeoNames]
            .into_iter()
            .map(|kind| {
                let t = generate(kind, GenOptions { seed: 11, scale: 1.0 }).unwrap();
                DatasetBuilder::new(&t, kind, 11)
                    .sample_cap(Some(40))
                    .build(QuestionDataset::Hard)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let idk = FixedAnswerModel::always_idk();
        let models: Vec<&dyn LanguageModel> = vec![&yes, &idk];

        let sequential: Vec<EvalReport> = models
            .iter()
            .flat_map(|m| {
                dataset_refs
                    .iter()
                    .map(|d| Evaluator::new(EvalConfig::default()).run(*m, d))
            })
            .collect();
        let parallel = GridRunner::new(EvalConfig::default(), 4).run_cross(&models, &dataset_refs);

        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.overall, s.overall);
            assert_eq!(p.model, s.model);
            assert_eq!(p.taxonomy, s.taxonomy);
        }
    }

    #[test]
    fn single_thread_still_works() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let reports = GridRunner::new(EvalConfig::default(), 1).run_cross(&models, &dataset_refs);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn explicit_cells_preserve_order() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let models: Vec<&dyn LanguageModel> = vec![&yes];
        let cells = vec![
            GridCell { model: 0, dataset: 1 },
            GridCell { model: 0, dataset: 0 },
        ];
        let reports = GridRunner::new(EvalConfig::default(), 8).run_cells(&models, &dataset_refs, &cells);
        assert_eq!(reports[0].taxonomy, TaxonomyKind::GeoNames);
        assert_eq!(reports[1].taxonomy, TaxonomyKind::Ebay);
    }

    #[test]
    fn empty_grid_is_fine() {
        let reports = GridRunner::new(EvalConfig::default(), 4).run_cells(&[], &[], &[]);
        assert!(reports.is_empty());
    }

    struct PanickingModel;

    impl LanguageModel for PanickingModel {
        fn name(&self) -> &str {
            "panicker"
        }

        fn answer(&self, _query: &crate::model::Query<'_>) -> String {
            panic!("synthetic cell failure")
        }
    }

    #[test]
    fn panicking_cell_is_reported_by_identity() {
        let ds = datasets();
        let dataset_refs: Vec<&Dataset> = ds.iter().collect();
        let yes = FixedAnswerModel::always_yes();
        let bad = PanickingModel;
        let models: Vec<&dyn LanguageModel> = vec![&yes, &bad];

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GridRunner::new(EvalConfig::default(), 4).run_cross(&models, &dataset_refs)
        }));
        let message = panic_message(result.expect_err("grid should surface the failure").as_ref());
        assert!(message.contains("2 grid cell(s) panicked"), "{message}");
        assert!(message.contains("model `panicker`"), "{message}");
        assert!(message.contains("Ebay") && message.contains("GeoNames"), "{message}");
        assert!(message.contains("synthetic cell failure"), "{message}");
        assert!(!message.contains("always-yes"), "healthy cells must not be blamed: {message}");
    }
}
