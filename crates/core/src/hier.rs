//! Two-stage hierarchical classification (coarse router + constrained
//! descent) — the "use the taxonomy to constrain the LLM" counterpoint
//! to the paper's free-form instance typing.
//!
//! The paper's flat baseline asks the model to produce a type label in
//! open text, so the model can (and does) hallucinate labels that exist
//! nowhere in the taxonomy. This module makes invalid labels impossible
//! *by construction*:
//!
//! 1. **Coarse routing**: an instance's name is scored against every
//!    region (node) at a configurable taxonomy level with the same
//!    trigram-Jaccard similarity the simulated models use as their
//!    embedding substitute. The `top_k` regions, ordered by similarity
//!    with deterministic `(name, id)` tie-breaks, become descent entry
//!    points.
//! 2. **Constrained descent**: from each candidate region, walk
//!    level-by-level asking sibling multiple-choice questions whose
//!    options are *exactly* the current node's children plus an
//!    explicit "None of the above" abstain option
//!    ([`crate::question::ABSTAIN_OPTION`]). The only way to descend is
//!    to pick a listed child, so every emitted label is a real taxonomy
//!    node; abstaining on every option window abandons the candidate
//!    and falls through to the next router candidate. Wrong-branch
//!    jumps and outright abstention are first-class
//!    [`HierOutcome`] values, not parse failures.
//!
//! [`HierMetrics`] additionally tracks what the descent *buys*: the
//! invalid-label (hallucination) rate of a free-form flat baseline run
//! on the same instances, wrong-branch deviation depth, abstain
//! calibration against router-measurable ambiguity, and prompt-token
//! cost per query versus stuffing the whole taxonomy into one prompt.
//!
//! Determinism: routing is a pure function of `(taxonomy, instance)`;
//! descent question ids are pure functions of
//! `(instance index, node, option window)` so fault plans and response
//! caches key identically at any worker count; instances are processed
//! via the same claim-counter + merge-in-index-order discipline as
//! [`crate::grid`], with a fresh [`ResilienceSession`] per instance so
//! no session state couples one worker's instances to another's.

use crate::domain::TaxonomyKind;
use crate::eval::EvalConfig;
use crate::model::{LanguageModel, Query};
use crate::parse::{parse_mcq, ParsedAnswer};
use crate::prompts::render_prompt;
use crate::question::{Question, QuestionBody};
use crate::resilience::ResilienceSession;
use crate::sampling::cochran_sample_size;
use crate::workload::{Workload, WorkloadContext, WorkloadError, WorkloadRunner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};
use taxoglimpse_synth::instances::InstanceGenerator;
use taxoglimpse_synth::rng::{SliceRandom, StreamHasher};
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// Hard ceiling on options per descent question: letters `A`–`D`, with
/// the next letter reserved for the abstain option (the parser's
/// explicit abstain slot is `E`).
pub const MAX_DESCENT_OPTIONS: usize = 4;

/// Domain-separation tag for descent question ids.
const ID_TAG_DESCENT: u64 = 0x41E2_17A6;
/// Domain-separation tag for flat-baseline question ids.
const ID_TAG_FLAT: u64 = 0x41E2_F1A7;
/// Seed tag for the flat baseline's surface-form corruption stream.
const FLAT_CORRUPT_TAG: u64 = 0xC0_44AB7;

// ---------------------------------------------------------------------
// In-core text helpers (core must not depend on the llm crate; the
// precedent is `detailed::candidate_similarity`). Cross-crate
// equivalence with `llm::similarity` / `llm::tokenizer` is pinned by
// integration tests at the workspace root.
// ---------------------------------------------------------------------

/// A name's deduplicated, sorted, lowercased byte trigrams — the
/// embedding substitute used for routing and ambiguity flags.
#[derive(Debug, Clone, Default)]
pub struct TrigramSet {
    grams: Vec<[u8; 3]>,
    lower: String,
}

impl TrigramSet {
    /// Build the trigram set of `name`.
    pub fn new(name: &str) -> Self {
        let lower: String = name.chars().map(|c| c.to_ascii_lowercase()).collect();
        let bytes = lower.as_bytes();
        let mut grams: Vec<[u8; 3]> = if bytes.len() < 3 {
            Vec::new()
        } else {
            bytes.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
        };
        grams.sort_unstable();
        grams.dedup();
        TrigramSet { grams, lower }
    }

    /// Trigram Jaccard similarity in `[0, 1]`; names too short for
    /// trigrams fall back to case-insensitive equality.
    pub fn jaccard(&self, other: &TrigramSet) -> f64 {
        if self.grams.is_empty() || other.grams.is_empty() {
            return if self.lower == other.lower { 1.0 } else { 0.0 };
        }
        let inter = self
            .grams
            .iter()
            .filter(|g| other.grams.binary_search(g).is_ok())
            .count();
        inter as f64 / (self.grams.len() + other.grams.len() - inter) as f64
    }
}

/// Approximate token count of `text`: whitespace words split into
/// alternating alphanumeric/punctuation runs, each run costing
/// `ceil(chars / 6)` tokens — the same rule as the llm crate's
/// tokenizer, inlined here for prompt-cost accounting.
pub fn approx_token_count(text: &str) -> usize {
    let mut tokens = 0usize;
    for word in text.split_whitespace() {
        let mut rest = word;
        while !rest.is_empty() {
            let is_alnum = rest.chars().next().map(|c| c.is_alphanumeric()).unwrap_or(false);
            let run_end = rest
                .char_indices()
                .find(|(_, c)| c.is_alphanumeric() != is_alnum)
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let (run, tail) = rest.split_at(run_end);
            tokens += run.chars().count().div_ceil(6);
            rest = tail;
        }
    }
    tokens
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Coarse-router configuration: which taxonomy level holds the regions
/// and how many candidates survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    level: usize,
    top_k: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { level: 1, top_k: 3 }
    }
}

impl RouterConfig {
    /// Set the region level (clamped at use to the taxonomy's deepest
    /// level, since the bound is per-taxonomy).
    pub fn with_level(mut self, level: usize) -> Self {
        self.level = level;
        self
    }

    /// Set how many candidate regions the router keeps (clamped ≥ 1).
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// The configured region level (before per-taxonomy clamping).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The configured candidate count.
    pub fn top_k(&self) -> usize {
        self.top_k
    }
}

/// Constrained-descent configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescentConfig {
    max_options: usize,
}

impl Default for DescentConfig {
    fn default() -> Self {
        DescentConfig { max_options: MAX_DESCENT_OPTIONS }
    }
}

impl DescentConfig {
    /// Set the options shown per sibling question (clamped to
    /// `1..=`[`MAX_DESCENT_OPTIONS`]; the next letter is always the
    /// abstain option).
    pub fn with_max_options(mut self, max_options: usize) -> Self {
        self.max_options = max_options.clamp(1, MAX_DESCENT_OPTIONS);
        self
    }

    /// The configured per-question option cap.
    pub fn max_options(&self) -> usize {
        self.max_options
    }
}

// ---------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------

/// One instance to classify: a name and the leaf concept it truly
/// belongs under, plus a router-measurable ambiguity flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierInstance {
    /// The instance's surface name (a synthesized product for shopping
    /// taxonomies, the leaf entity itself elsewhere).
    pub name: String,
    /// The gold leaf concept.
    pub gold: NodeId,
    /// `true` when the instance's name is no more similar to its gold
    /// leaf than to some sibling of that leaf — the cases where a
    /// well-calibrated model *should* abstain more.
    pub ambiguous: bool,
}

/// The built hierarchical-classification dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierDataset {
    /// Instances in sampling order.
    pub instances: Vec<HierInstance>,
}

/// How one instance's two-stage classification ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierOutcome {
    /// Descent reached the gold leaf.
    Correct,
    /// Descent committed to a leaf other than the gold one;
    /// `deviation_level` is the first level where the predicted
    /// root-chain departs from the gold root-chain (0 = wrong root).
    WrongBranch {
        /// First level at which the predicted chain leaves the gold
        /// chain.
        deviation_level: usize,
    },
    /// Every router candidate was abandoned (the model abstained on
    /// every option window somewhere down each one).
    Abstained,
    /// A model call exhausted its resilience budget.
    Failed,
}

/// How the free-form flat baseline's emitted label scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlatOutcome {
    /// Emitted exactly the gold leaf's name.
    Correct,
    /// Emitted a real taxonomy name, but not the gold leaf.
    WrongValid,
    /// Emitted a label that exists nowhere in the taxonomy — the
    /// hallucination class the constrained descent eliminates.
    Invalid,
    /// Declined to emit a label.
    Abstained,
    /// A model call exhausted its resilience budget.
    Failed,
}

/// Everything measured per `(model, taxonomy)` hierarchical run.
///
/// All counts partition `instances`; rate accessors divide defensively
/// so empty runs render as zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierMetrics {
    /// Instances classified.
    pub instances: usize,
    /// Descent outcomes: reached the gold leaf.
    pub hier_correct: usize,
    /// Descent outcomes: committed to a wrong leaf.
    pub hier_wrong_branch: usize,
    /// Descent outcomes: abstained everywhere.
    pub hier_abstained: usize,
    /// Descent outcomes: a model call failed permanently.
    pub hier_failed: usize,
    /// Labels emitted by descent that exist nowhere in the taxonomy.
    /// Zero by construction — recorded so reports *prove* it rather
    /// than assume it.
    pub hier_invalid: usize,
    /// Sum of wrong-branch deviation levels (for mean depth).
    pub wrong_branch_depth_sum: usize,
    /// Total sibling questions asked across all descents.
    pub hier_queries: usize,
    /// Total prompt tokens across all descent questions.
    pub hier_prompt_tokens: usize,
    /// Instances flagged ambiguous at build time.
    pub ambiguous: usize,
    /// Descent abstentions on ambiguous instances.
    pub abstain_ambiguous: usize,
    /// Descent abstentions on unambiguous instances.
    pub abstain_unambiguous: usize,
    /// Flat baseline: emitted exactly the gold name.
    pub flat_correct: usize,
    /// Flat baseline: emitted a real but wrong taxonomy name.
    pub flat_wrong_valid: usize,
    /// Flat baseline: emitted a label not in the taxonomy.
    pub flat_invalid: usize,
    /// Flat baseline: declined to answer.
    pub flat_abstained: usize,
    /// Flat baseline: model call failed permanently.
    pub flat_failed: usize,
    /// Total prompt tokens across flat-baseline questions.
    pub flat_prompt_tokens: usize,
    /// Prompt tokens the whole-taxonomy-in-prompt alternative would
    /// have cost, summed over instances.
    pub whole_taxonomy_prompt_tokens: usize,
}

impl HierMetrics {
    /// Fraction of instances whose descent reached the gold leaf.
    pub fn hier_accuracy(&self) -> f64 {
        ratio(self.hier_correct, self.instances)
    }

    /// Fraction of instances where descent abstained.
    pub fn hier_abstain_rate(&self) -> f64 {
        ratio(self.hier_abstained, self.instances)
    }

    /// Invalid-label rate of the constrained descent (zero by
    /// construction; reported to prove it).
    pub fn hier_invalid_rate(&self) -> f64 {
        ratio(self.hier_invalid, self.instances)
    }

    /// Mean deviation level over wrong-branch outcomes.
    pub fn mean_wrong_branch_depth(&self) -> f64 {
        ratio(self.wrong_branch_depth_sum, self.hier_wrong_branch)
    }

    /// Mean prompt tokens per descent *query*.
    pub fn hier_tokens_per_query(&self) -> f64 {
        ratio(self.hier_prompt_tokens, self.hier_queries)
    }

    /// Mean descent prompt tokens per *instance* (what one
    /// classification costs end to end).
    pub fn hier_tokens_per_instance(&self) -> f64 {
        ratio(self.hier_prompt_tokens, self.instances)
    }

    /// Abstain rate on instances flagged ambiguous.
    pub fn abstain_rate_ambiguous(&self) -> f64 {
        ratio(self.abstain_ambiguous, self.ambiguous)
    }

    /// Abstain rate on instances not flagged ambiguous.
    pub fn abstain_rate_unambiguous(&self) -> f64 {
        ratio(self.abstain_unambiguous, self.instances.saturating_sub(self.ambiguous))
    }

    /// Abstain calibration: ambiguous-instance abstain rate minus
    /// unambiguous-instance abstain rate (positive = well calibrated).
    pub fn abstain_calibration(&self) -> f64 {
        self.abstain_rate_ambiguous() - self.abstain_rate_unambiguous()
    }

    /// Fraction of flat-baseline emissions that were exactly gold.
    pub fn flat_accuracy(&self) -> f64 {
        ratio(self.flat_correct, self.instances)
    }

    /// The headline number: fraction of flat-baseline emissions that
    /// name a label which does not exist in the taxonomy.
    pub fn flat_invalid_rate(&self) -> f64 {
        ratio(self.flat_invalid, self.instances)
    }

    /// Mean whole-taxonomy-in-prompt tokens per instance.
    pub fn whole_taxonomy_tokens_per_instance(&self) -> f64 {
        ratio(self.whole_taxonomy_prompt_tokens, self.instances)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One `(model, taxonomy)` hierarchical-classification report.
#[derive(Debug, Clone, PartialEq)]
pub struct HierReport {
    /// The model evaluated.
    pub model: String,
    /// The taxonomy classified against.
    pub taxonomy: TaxonomyKind,
    /// Router region level actually used (after per-taxonomy clamping).
    pub router_level: usize,
    /// Router candidate count.
    pub router_top_k: usize,
    /// Options per descent question.
    pub descent_max_options: usize,
    /// The measurements.
    pub metrics: HierMetrics,
}

impl ToJson for HierMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("instances", self.instances.to_json()),
            ("hier_correct", self.hier_correct.to_json()),
            ("hier_wrong_branch", self.hier_wrong_branch.to_json()),
            ("hier_abstained", self.hier_abstained.to_json()),
            ("hier_failed", self.hier_failed.to_json()),
            ("hier_invalid", self.hier_invalid.to_json()),
            ("wrong_branch_depth_sum", self.wrong_branch_depth_sum.to_json()),
            ("hier_queries", self.hier_queries.to_json()),
            ("hier_prompt_tokens", self.hier_prompt_tokens.to_json()),
            ("ambiguous", self.ambiguous.to_json()),
            ("abstain_ambiguous", self.abstain_ambiguous.to_json()),
            ("abstain_unambiguous", self.abstain_unambiguous.to_json()),
            ("flat_correct", self.flat_correct.to_json()),
            ("flat_wrong_valid", self.flat_wrong_valid.to_json()),
            ("flat_invalid", self.flat_invalid.to_json()),
            ("flat_abstained", self.flat_abstained.to_json()),
            ("flat_failed", self.flat_failed.to_json()),
            ("flat_prompt_tokens", self.flat_prompt_tokens.to_json()),
            ("whole_taxonomy_prompt_tokens", self.whole_taxonomy_prompt_tokens.to_json()),
        ])
    }
}

impl FromJson for HierMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(HierMetrics {
            instances: json.field_as("instances")?,
            hier_correct: json.field_as("hier_correct")?,
            hier_wrong_branch: json.field_as("hier_wrong_branch")?,
            hier_abstained: json.field_as("hier_abstained")?,
            hier_failed: json.field_as("hier_failed")?,
            hier_invalid: json.field_as("hier_invalid")?,
            wrong_branch_depth_sum: json.field_as("wrong_branch_depth_sum")?,
            hier_queries: json.field_as("hier_queries")?,
            hier_prompt_tokens: json.field_as("hier_prompt_tokens")?,
            ambiguous: json.field_as("ambiguous")?,
            abstain_ambiguous: json.field_as("abstain_ambiguous")?,
            abstain_unambiguous: json.field_as("abstain_unambiguous")?,
            flat_correct: json.field_as("flat_correct")?,
            flat_wrong_valid: json.field_as("flat_wrong_valid")?,
            flat_invalid: json.field_as("flat_invalid")?,
            flat_abstained: json.field_as("flat_abstained")?,
            flat_failed: json.field_as("flat_failed")?,
            flat_prompt_tokens: json.field_as("flat_prompt_tokens")?,
            whole_taxonomy_prompt_tokens: json.field_as("whole_taxonomy_prompt_tokens")?,
        })
    }
}

impl ToJson for HierReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("taxonomy", self.taxonomy.to_json()),
            ("router_level", self.router_level.to_json()),
            ("router_top_k", self.router_top_k.to_json()),
            ("descent_max_options", self.descent_max_options.to_json()),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl FromJson for HierReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(HierReport {
            model: json.field_as("model")?,
            taxonomy: json.field_as("taxonomy")?,
            router_level: json.field_as("router_level")?,
            router_top_k: json.field_as("router_top_k")?,
            descent_max_options: json.field_as("descent_max_options")?,
            metrics: json.field_as("metrics")?,
        })
    }
}

// ---------------------------------------------------------------------
// The workload
// ---------------------------------------------------------------------

/// The two-stage hierarchical classification workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierWorkload {
    router: RouterConfig,
    descent: DescentConfig,
    sample_cap: Option<usize>,
}

impl HierWorkload {
    /// The workload with default router/descent configuration.
    pub fn new() -> Self {
        HierWorkload::default()
    }

    /// Override the router configuration.
    pub fn with_router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }

    /// Override the descent configuration.
    pub fn with_descent(mut self, descent: DescentConfig) -> Self {
        self.descent = descent;
        self
    }

    /// Cap the number of sampled instances (for quick runs).
    pub fn with_sample_cap(mut self, cap: Option<usize>) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Score `name` against every region at the (clamped) router level
    /// and return the `top_k` candidates, most similar first, ties
    /// broken by region name then id so the ranking is total.
    pub fn route(&self, t: &Taxonomy, name: &str) -> Vec<NodeId> {
        let level = self.router.level.min(t.num_levels().saturating_sub(1));
        let probe = TrigramSet::new(name);
        let mut scored: Vec<(f64, NodeId)> = t
            .nodes_at_level(level)
            .iter()
            .map(|&n| (probe.jaccard(&TrigramSet::new(t.name(n))), n))
            .collect();
        scored.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| t.name(a.1).cmp(t.name(b.1)))
                .then_with(|| a.1.raw().cmp(&b.1.raw()))
        });
        scored.truncate(self.router.top_k);
        scored.into_iter().map(|(_, n)| n).collect()
    }
}

/// Deterministic question id: a hash of `(tag, instance, node, window)`
/// with the top bit set to keep hier ids disjoint from dataset id
/// ranges. Stable across worker counts, so fault plans and response
/// caches key identically however instances are scheduled.
fn question_id(tag: u64, instance_idx: usize, node: u64, window: usize) -> u64 {
    let mut h = StreamHasher::new(tag);
    h.write_decimal(instance_idx as u64);
    h.write_str("|");
    h.write_decimal(node);
    h.write_str("|");
    h.write_decimal(window as u64);
    h.finish() | (1 << 63)
}

/// Build the sibling MCQ for one option window during descent.
fn sibling_question(
    kind: TaxonomyKind,
    t: &Taxonomy,
    instance_idx: usize,
    instance: &HierInstance,
    node: NodeId,
    window_idx: usize,
    window: &[NodeId],
) -> Question {
    let options: Vec<String> = window.iter().map(|&c| t.name(c).to_owned()).collect();
    let correct = window
        .iter()
        .position(|&c| c == instance.gold || t.is_ancestor(c, instance.gold))
        .map(|i| i as u8);
    let options_level = t.level(node) + 1;
    Question {
        id: question_id(ID_TAG_DESCENT, instance_idx, u64::from(node.raw()), window_idx),
        taxonomy: kind,
        child: instance.name.clone(),
        child_level: options_level + 1,
        parent_level: options_level,
        true_parent: t.name(instance.gold).to_owned(),
        instance_typing: true,
        body: QuestionBody::Sibling { options, correct },
    }
}

/// Per-instance tally merged into [`HierMetrics`] in instance order.
#[derive(Debug, Clone)]
struct InstanceResult {
    outcome: HierOutcome,
    queries: usize,
    prompt_tokens: usize,
    flat: FlatOutcome,
    flat_tokens: usize,
}

/// Shared read-only state for one `run` call.
struct RunState<'r> {
    t: &'r Taxonomy,
    kind: TaxonomyKind,
    config: EvalConfig,
    /// Lowercased names of every taxonomy node, sorted, for the flat
    /// baseline's validity check.
    valid_names: Vec<String>,
    /// Leaf ids paired with trigram sets, for the flat shortlist.
    leaf_sims: Vec<(NodeId, TrigramSet)>,
    /// Token cost of the instruction + full leaf listing the
    /// whole-taxonomy-in-prompt alternative pays before the instance
    /// name is even added.
    whole_taxonomy_base_tokens: usize,
}

impl HierWorkload {
    /// Classify one instance by router + constrained descent.
    fn classify(
        &self,
        state: &RunState<'_>,
        session: &mut ResilienceSession,
        model: &dyn LanguageModel,
        instance_idx: usize,
        instance: &HierInstance,
        result: &mut InstanceResult,
    ) -> HierOutcome {
        let t = state.t;
        for candidate in self.route(t, &instance.name) {
            let mut node = candidate;
            'descend: loop {
                if t.is_leaf(node) {
                    // The only way to arrive here is through picked
                    // options, all of which are taxonomy nodes: the
                    // emitted label is valid by construction.
                    if node == instance.gold {
                        return HierOutcome::Correct;
                    }
                    let predicted = t.chain_from_root(node);
                    let gold = t.chain_from_root(instance.gold);
                    let deviation_level = predicted
                        .iter()
                        .zip(&gold)
                        .position(|(p, g)| p != g)
                        .unwrap_or_else(|| predicted.len().min(gold.len()));
                    return HierOutcome::WrongBranch { deviation_level };
                }
                let children = t.children(node);
                for (window_idx, window) in
                    children.chunks(self.descent.max_options).enumerate()
                {
                    let question = sibling_question(
                        state.kind, t, instance_idx, instance, node, window_idx, window,
                    );
                    let prompt = render_prompt(
                        &question,
                        state.config.setting,
                        state.config.variant,
                        &[],
                    );
                    result.queries += 1;
                    result.prompt_tokens += approx_token_count(&prompt);
                    let query = Query::new(&prompt, &question, state.config.setting);
                    let text = match session.call(model, &query) {
                        Ok(response) => response.text,
                        Err(_) => return HierOutcome::Failed,
                    };
                    match parse_mcq(&text) {
                        ParsedAnswer::Option(i) if (i as usize) < window.len() => {
                            node = window[i as usize];
                            continue 'descend;
                        }
                        // Abstain slot, explicit abstention, or
                        // unusable text: never a label — try the next
                        // option window (validity guarantee).
                        ParsedAnswer::Option(_)
                        | ParsedAnswer::IDontKnow
                        | ParsedAnswer::Unparsed
                        | ParsedAnswer::Yes
                        | ParsedAnswer::No => {}
                    }
                }
                // Abstained on every window: abandon this candidate.
                break;
            }
        }
        HierOutcome::Abstained
    }

    /// Run the free-form flat baseline on one instance: a single MCQ
    /// over the most-similar leaves whose *chosen* option is then
    /// re-emitted as free text through a deterministic corruption
    /// channel (free-form generation does not copy labels verbatim) and
    /// checked against the taxonomy's real names.
    fn flat_baseline(
        &self,
        state: &RunState<'_>,
        session: &mut ResilienceSession,
        model: &dyn LanguageModel,
        instance_idx: usize,
        instance: &HierInstance,
        result: &mut InstanceResult,
    ) -> FlatOutcome {
        let t = state.t;
        let probe = TrigramSet::new(&instance.name);
        let mut scored: Vec<(f64, NodeId)> = state
            .leaf_sims
            .iter()
            .map(|(leaf, set)| (probe.jaccard(set), *leaf))
            .collect();
        scored.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| t.name(a.1).cmp(t.name(b.1)))
                .then_with(|| a.1.raw().cmp(&b.1.raw()))
        });
        scored.truncate(self.descent.max_options);
        let shortlist: Vec<NodeId> = scored.into_iter().map(|(_, n)| n).collect();

        let options: Vec<String> = shortlist.iter().map(|&l| t.name(l).to_owned()).collect();
        let correct = shortlist.iter().position(|&l| l == instance.gold).map(|i| i as u8);
        let gold_level = t.level(instance.gold);
        let question = Question {
            id: question_id(ID_TAG_FLAT, instance_idx, u64::from(instance.gold.raw()), 0),
            taxonomy: state.kind,
            child: instance.name.clone(),
            child_level: gold_level + 1,
            parent_level: gold_level,
            true_parent: t.name(instance.gold).to_owned(),
            instance_typing: true,
            body: QuestionBody::Sibling { options: options.clone(), correct },
        };
        let prompt =
            render_prompt(&question, state.config.setting, state.config.variant, &[]);
        result.flat_tokens += approx_token_count(&prompt);
        let query = Query::new(&prompt, &question, state.config.setting);
        let text = match session.call(model, &query) {
            Ok(response) => response.text,
            Err(_) => return FlatOutcome::Failed,
        };
        let chosen = match parse_mcq(&text) {
            ParsedAnswer::Option(i) if (i as usize) < options.len() => i as usize,
            ParsedAnswer::Option(_) | ParsedAnswer::IDontKnow => return FlatOutcome::Abstained,
            // Free-form text that maps to no label at all.
            ParsedAnswer::Unparsed | ParsedAnswer::Yes | ParsedAnswer::No => {
                return FlatOutcome::Invalid
            }
        };

        // Free-form emission: the model writes the label out instead of
        // pointing at it, so the surface form drifts — confidently
        // correct picks drift least.
        let was_correct = correct == Some(chosen as u8);
        let mut h = StreamHasher::new(FLAT_CORRUPT_TAG);
        h.write_decimal(instance_idx as u64);
        h.write_str("|");
        h.write_str(&options[chosen]);
        let draw = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        let exact_prob = if was_correct { 0.97 } else { 0.75 };
        let emitted = if draw < exact_prob {
            options[chosen].clone()
        } else {
            // Blend the chosen label with a neighboring shortlist
            // label — the classic free-form hallucination shape.
            let other = &options[(chosen + 1) % options.len()];
            let head = other.split_whitespace().next().unwrap_or(other);
            format!("{head} {}", options[chosen])
        };

        let emitted_lower: String = emitted.chars().map(|c| c.to_ascii_lowercase()).collect();
        if state.valid_names.binary_search(&emitted_lower).is_err() {
            FlatOutcome::Invalid
        } else if emitted_lower
            == t.name(instance.gold).chars().map(|c| c.to_ascii_lowercase()).collect::<String>()
        {
            FlatOutcome::Correct
        } else {
            FlatOutcome::WrongValid
        }
    }

    /// Process one instance end to end (descent + flat baseline), with
    /// a fresh resilience session so no retry/breaker state couples
    /// instances across workers.
    fn process_instance(
        &self,
        state: &RunState<'_>,
        runner: &WorkloadRunner,
        model: &dyn LanguageModel,
        instance_idx: usize,
        instance: &HierInstance,
    ) -> InstanceResult {
        let mut result = InstanceResult {
            outcome: HierOutcome::Abstained,
            queries: 0,
            prompt_tokens: 0,
            flat: FlatOutcome::Abstained,
            flat_tokens: 0,
        };
        let mut session = ResilienceSession::new(runner.resilience());
        result.outcome =
            self.classify(state, &mut session, model, instance_idx, instance, &mut result);
        result.flat =
            self.flat_baseline(state, &mut session, model, instance_idx, instance, &mut result);
        result
    }
}

impl Workload for HierWorkload {
    type Data = HierDataset;
    type Report = HierReport;

    fn name(&self) -> &'static str {
        "hier-classification"
    }

    fn build(&self, cx: &WorkloadContext<'_>) -> Result<HierDataset, WorkloadError> {
        let t = cx.taxonomy;
        if t.num_levels() < 2 {
            return Err(WorkloadError::Unsupported(format!(
                "{} is too shallow for hierarchical descent",
                cx.kind
            )));
        }
        let mut leaves = t.leaves();
        let mut rng = taxoglimpse_synth::rng::fork(
            cx.seed ^ (cx.kind as u64) << 16,
            "hier-instances",
            0,
        );
        leaves.shuffle(&mut rng);
        let mut n = cochran_sample_size(leaves.len());
        if let Some(cap) = self.sample_cap {
            n = n.min(cap);
        }
        leaves.truncate(n);

        // Shopping taxonomies synthesize product instances; everywhere
        // else the leaf entity itself is the instance being placed.
        let named: Vec<(String, NodeId)> = match InstanceGenerator::new(cx.kind, cx.seed) {
            Some(generator) if generator.synthesizes() => generator
                .instances_for(t, &leaves, 1)
                .into_iter()
                .map(|i| (i.name, i.leaf))
                .collect(),
            Some(_) | None => {
                leaves.into_iter().map(|l| (t.name(l).to_owned(), l)).collect()
            }
        };

        let instances = named
            .into_iter()
            .map(|(name, gold)| {
                let probe = TrigramSet::new(&name);
                let gold_sim = probe.jaccard(&TrigramSet::new(t.name(gold)));
                let best_sibling = t
                    .siblings(gold)
                    .into_iter()
                    .map(|s| probe.jaccard(&TrigramSet::new(t.name(s))))
                    .fold(f64::NEG_INFINITY, f64::max);
                // No siblings ⇒ nothing to confuse the instance with.
                let ambiguous = best_sibling.is_finite() && gold_sim <= best_sibling;
                HierInstance { name, gold, ambiguous }
            })
            .collect();
        Ok(HierDataset { instances })
    }

    fn run(
        &self,
        runner: &WorkloadRunner,
        model: &dyn LanguageModel,
        cx: &WorkloadContext<'_>,
        data: &HierDataset,
    ) -> HierReport {
        let t = cx.taxonomy;
        let mut valid_names: Vec<String> = t
            .ids()
            .map(|id| t.name(id).chars().map(|c| c.to_ascii_lowercase()).collect())
            .collect();
        valid_names.sort_unstable();
        valid_names.dedup();
        let leaf_sims: Vec<(NodeId, TrigramSet)> = t
            .leaves()
            .into_iter()
            .map(|l| (l, TrigramSet::new(t.name(l))))
            .collect();
        let whole_taxonomy_base_tokens = {
            let listing: String = leaf_sims
                .iter()
                .map(|(l, _)| t.name(*l))
                .collect::<Vec<_>>()
                .join(", ");
            approx_token_count(
                "Classify the instance into exactly one of the following categories:",
            ) + approx_token_count(&listing)
        };
        let state = RunState {
            t,
            kind: cx.kind,
            config: runner.config(),
            valid_names,
            leaf_sims,
            whole_taxonomy_base_tokens,
        };

        model.reset();
        let threads = runner.threads().unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        });
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<InstanceResult>>> =
            Mutex::new(vec![None; data.instances.len()]);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(data.instances.len().max(1)) {
                scope.spawn(|| loop {
                    // Same discipline as the grid runner: the counter
                    // hands out distinct indices, results merge in
                    // index order after the scope joins.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= data.instances.len() {
                        break;
                    }
                    let r =
                        self.process_instance(&state, runner, model, i, &data.instances[i]);
                    results.lock().expect("hier result lock poisoned by a worker panic")[i] =
                        Some(r);
                });
            }
        });

        let merged = results
            .into_inner()
            .expect("hier result lock poisoned by a worker panic");
        let mut metrics = HierMetrics::default();
        for (instance, slot) in data.instances.iter().zip(merged) {
            let r = slot.expect("every claimed instance stores a result before scope join");
            metrics.instances += 1;
            if instance.ambiguous {
                metrics.ambiguous += 1;
            }
            match r.outcome {
                HierOutcome::Correct => metrics.hier_correct += 1,
                HierOutcome::WrongBranch { deviation_level } => {
                    metrics.hier_wrong_branch += 1;
                    metrics.wrong_branch_depth_sum += deviation_level;
                }
                HierOutcome::Abstained => {
                    metrics.hier_abstained += 1;
                    if instance.ambiguous {
                        metrics.abstain_ambiguous += 1;
                    } else {
                        metrics.abstain_unambiguous += 1;
                    }
                }
                HierOutcome::Failed => metrics.hier_failed += 1,
            }
            metrics.hier_queries += r.queries;
            metrics.hier_prompt_tokens += r.prompt_tokens;
            match r.flat {
                FlatOutcome::Correct => metrics.flat_correct += 1,
                FlatOutcome::WrongValid => metrics.flat_wrong_valid += 1,
                FlatOutcome::Invalid => metrics.flat_invalid += 1,
                FlatOutcome::Abstained => metrics.flat_abstained += 1,
                FlatOutcome::Failed => metrics.flat_failed += 1,
            }
            metrics.flat_prompt_tokens += r.flat_tokens;
            metrics.whole_taxonomy_prompt_tokens +=
                state.whole_taxonomy_base_tokens + approx_token_count(&instance.name);
        }

        HierReport {
            model: model.name().to_owned(),
            taxonomy: cx.kind,
            router_level: self.router.level.min(t.num_levels().saturating_sub(1)),
            router_top_k: self.router.top_k,
            descent_max_options: self.descent.max_options,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelError, Response};
    use crate::prompts::render_gold;
    use taxoglimpse_synth::{generate, GenOptions};

    /// Answers every sibling MCQ from the structured gold — the
    /// best-case model for descent.
    struct OracleModel;

    impl LanguageModel for OracleModel {
        fn name(&self) -> &str {
            "oracle"
        }
        fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
            Ok(Response::new(render_gold(query.question.gold())))
        }
    }

    fn workload() -> HierWorkload {
        HierWorkload::new()
            .with_router(RouterConfig::default().with_top_k(4))
            .with_sample_cap(Some(20))
    }

    fn context(t: &Taxonomy, kind: TaxonomyKind) -> WorkloadContext<'_> {
        WorkloadContext::new(t, kind, 33)
    }

    #[test]
    fn trigram_set_matches_detailed_precedent() {
        let a = TrigramSet::new("Wireless Speakers");
        assert!((a.jaccard(&TrigramSet::new("Wireless Speakers")) - 1.0).abs() < 1e-12);
        assert!(a.jaccard(&TrigramSet::new("Books")) < 0.2);
        // Short-name fallback: equality modulo case.
        assert_eq!(TrigramSet::new("ab").jaccard(&TrigramSet::new("AB")), 1.0);
        assert_eq!(TrigramSet::new("ab").jaccard(&TrigramSet::new("cd")), 0.0);
    }

    #[test]
    fn token_count_rule() {
        assert_eq!(approx_token_count("cat"), 1);
        assert_eq!(approx_token_count("cat, dog"), 3); // "cat" "," "dog"
        assert_eq!(approx_token_count("extraordinarily"), 3); // 15 chars / 6
        assert_eq!(approx_token_count("  "), 0);
    }

    #[test]
    fn configs_clamp() {
        assert_eq!(RouterConfig::default().with_top_k(0).top_k(), 1);
        assert_eq!(DescentConfig::default().with_max_options(0).max_options(), 1);
        assert_eq!(DescentConfig::default().with_max_options(99).max_options(), 4);
    }

    #[test]
    fn router_is_deterministic_and_ranked() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 7, scale: 0.2 }).unwrap();
        let w = workload();
        let leaf = t.leaves()[0];
        let name = t.name(leaf).to_owned();
        let a = w.route(&t, &name);
        let b = w.route(&t, &name);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 4);
        // The gold region (the level-1 ancestor) should rank among the
        // candidates when the instance IS the leaf name... not always
        // by similarity, but the list itself must be valid level nodes.
        for &n in &a {
            assert_eq!(t.level(n), 1.min(t.num_levels() - 1));
        }
    }

    #[test]
    fn oracle_descends_to_gold_with_zero_invalid_labels() {
        let t = generate(TaxonomyKind::GeoNames, GenOptions { seed: 5, scale: 0.1 }).unwrap();
        let cx = context(&t, TaxonomyKind::GeoNames);
        // Concept self-placement: route on the leaf's own name with a
        // candidate set wide enough to always include the gold region.
        let w = HierWorkload::new()
            .with_router(RouterConfig::default().with_top_k(t.nodes_at_level(1).len().max(1)))
            .with_sample_cap(Some(15));
        let runner = WorkloadRunner::builder().with_threads(2).build();
        let report = runner.run(&w, &OracleModel, &cx).unwrap();
        assert_eq!(report.metrics.hier_invalid, 0);
        assert_eq!(report.metrics.hier_failed, 0);
        assert_eq!(
            report.metrics.hier_correct,
            report.metrics.instances,
            "oracle must reach every gold leaf: {:?}",
            report.metrics
        );
    }

    #[test]
    fn report_bytes_identical_across_worker_counts() {
        let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 11, scale: 0.1 }).unwrap();
        let cx = context(&t, TaxonomyKind::Amazon);
        let w = workload();
        let json_at = |threads: usize| {
            let runner = WorkloadRunner::builder().with_threads(threads).build();
            let report = runner.run(&w, &OracleModel, &cx).unwrap();
            taxoglimpse_json::to_string(&report.to_json()).unwrap()
        };
        let one = json_at(1);
        assert_eq!(one, json_at(3));
        assert_eq!(one, json_at(8));
    }

    #[test]
    fn report_json_round_trips() {
        let t = generate(TaxonomyKind::Google, GenOptions { seed: 3, scale: 0.1 }).unwrap();
        let cx = context(&t, TaxonomyKind::Google);
        let runner = WorkloadRunner::builder().with_threads(2).build();
        let report = runner.run(&workload(), &OracleModel, &cx).unwrap();
        let json = taxoglimpse_json::to_string(&report.to_json()).unwrap();
        let back = HierReport::from_json(&taxoglimpse_json::from_str_value(&json).unwrap())
            .unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn question_ids_are_stable_and_tagged() {
        let a = question_id(ID_TAG_DESCENT, 3, 17, 2);
        assert_eq!(a, question_id(ID_TAG_DESCENT, 3, 17, 2));
        assert_ne!(a, question_id(ID_TAG_FLAT, 3, 17, 2));
        assert_ne!(a, question_id(ID_TAG_DESCENT, 3, 17, 3));
        assert!(a & (1 << 63) != 0);
    }
}
