//! # taxoglimpse-core
//!
//! The TaxoGlimpse benchmark itself — the primary contribution of the
//! paper *"Are Large Language Models a Good Replacement of Taxonomies?"*
//! (VLDB 2024):
//!
//! * **Question design** (§2.2): True/False and MCQ templates per domain
//!   ([`templates`]), positive / negative-easy / negative-hard / MCQ
//!   generation ([`qgen`]).
//! * **Sampling** : Cochran sample sizes at 95% confidence / 5% margin
//!   with finite-population correction ([`sampling`]) — reproduces the
//!   per-level dataset sizes of the paper's Table 4.
//! * **Datasets**: Easy, Hard and MCQ datasets per taxonomy level
//!   ([`dataset`]).
//! * **Prompting settings** (§4.4): zero-shot, five-shot and
//!   chain-of-thought rendering ([`prompts`], the paper's Figure 5).
//! * **Model interface**: the [`model::LanguageModel`] trait takes
//!   rendered prompt text and returns free natural-language text —
//!   fallibly ([`model::ModelError`]), because real serving stacks
//!   fail; the harness parses successful text with [`parse`].
//! * **Resilience** ([`resilience`]): deterministic retry/backoff and
//!   circuit breaking over the fallible model API; exhausted queries
//!   score as `Failed` and lower a report's availability.
//! * **Metrics** (§3.3): accuracy *A*, miss rate *M* and availability
//!   ([`metrics`]).
//! * **Evaluation harness** (§4): [`eval::Evaluator`] producing overall
//!   and per-level reports.
//! * **Instance typing** (§4.5): [`instance_typing`].
//! * **Case study** (§5.3): hybrid LLM + truncated-taxonomy product
//!   retrieval with precision/recall accounting ([`casestudy`]).
//! * **Sharded scale-out** ([`shard`]): one logical benchmark over
//!   partitioned taxonomies and grids behind a deterministic
//!   content-keyed router; merged reports are byte-identical across
//!   shard counts.
//! * **Online serving** ([`serve`]): a virtual-time discrete-event
//!   serving layer — open-loop multi-tenant traffic, dynamic batching,
//!   admission control — over the same model towers, with
//!   byte-identical traces across prefetch worker counts.

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod casestudy;
pub mod dataset;
pub mod detailed;
pub mod domain;
pub mod enrich;
pub mod eval;
pub mod grid;
pub mod hier;
pub mod hybrid;
pub mod instance_typing;
pub mod metrics;
pub mod model;
pub mod parse;
pub mod prompts;
pub mod qgen;
pub mod question;
pub mod resilience;
pub mod sampling;
pub mod serve;
pub mod shard;
pub mod store;
pub mod templates;
pub mod workload;

pub use cache::{CachedModel, ResponseCache};
pub use dataset::{Dataset, DatasetBuilder, QuestionDataset};
pub use domain::{Domain, TaxonomyKind};
pub use eval::{EvalConfig, EvalReport, Evaluator};
pub use grid::GridRunner;
pub use hier::{DescentConfig, HierReport, HierWorkload, RouterConfig};
pub use hybrid::HybridTaxonomy;
pub use metrics::Metrics;
pub use model::{LanguageModel, ModelError, Query, Response};
pub use prompts::PromptSetting;
pub use question::{NegativeKind, Question, QuestionBody, QuestionKind};
pub use resilience::{BackoffPolicy, BreakerPolicy, Resilient, ResiliencePolicy};
pub use serve::{run_serve, ServeConfig, ServeReport, TrafficConfig};
pub use shard::{ShardRouter, ShardRun, ShardedDataset};
pub use workload::{
    InstanceTypingWorkload, QaWorkload, Workload, WorkloadContext, WorkloadError, WorkloadRunner,
};
