//! Free-text answer extraction.
//!
//! Models answer in whatever phrasing they like ("Yes, X is a type of
//! Y.", "The correct answer is B) Audio.", "I don't know the answer to
//! that."); the harness normalizes those into [`ParsedAnswer`]s. A
//! response that cannot be parsed counts as *wrong* (not as a miss),
//! matching the paper's accuracy/miss bookkeeping where only explicit
//! abstentions are misses.

use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Normalized model answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedAnswer {
    /// Affirmative.
    Yes,
    /// Negative.
    No,
    /// Explicit abstention ("I don't know").
    IDontKnow,
    /// MCQ option index 0–3.
    Option(u8),
    /// Unintelligible response.
    Unparsed,
}

impl ToJson for ParsedAnswer {
    fn to_json(&self) -> Json {
        match self {
            ParsedAnswer::Yes => Json::Str("Yes".to_owned()),
            ParsedAnswer::No => Json::Str("No".to_owned()),
            ParsedAnswer::IDontKnow => Json::Str("IDontKnow".to_owned()),
            ParsedAnswer::Unparsed => Json::Str("Unparsed".to_owned()),
            ParsedAnswer::Option(i) => Json::obj(vec![("Option", i.to_json())]),
        }
    }
}

impl FromJson for ParsedAnswer {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(idx) = json.get("Option") {
            return u8::from_json(idx).map(ParsedAnswer::Option);
        }
        match json.as_str() {
            Some("Yes") => Ok(ParsedAnswer::Yes),
            Some("No") => Ok(ParsedAnswer::No),
            Some("IDontKnow") => Ok(ParsedAnswer::IDontKnow),
            Some("Unparsed") => Ok(ParsedAnswer::Unparsed),
            Some(other) => Err(JsonError::msg(format!("unknown ParsedAnswer variant `{other}`"))),
            None => Err(JsonError::mismatch("string or Option object", json)),
        }
    }
}

/// Parse a True/False response.
///
/// One forward pass over word-boundary tokens; the **first** event in
/// token order wins:
///
/// * a decisive token — "yes"/"yeah"/"yep", "no"/"nope", or a judgement
///   token "correct"/"true"/"incorrect"/"false" (flipped by a directly
///   preceding "not") — decides the answer, even if hedging follows
///   ("No, I cannot say for sure …" is a No, not an abstention);
/// * a *completed* abstention phrase — "don't know" / "dont know" /
///   "do not know", "not sure", "unsure", "uncertain",
///   "cannot determine" / "can't determine", "cannot say" — abstains.
///
/// "no" must be a whole word so "know"/"north" do not trigger it, and
/// the interjections "yes"/"no" themselves are never negated ("not no"
/// is not idiomatic English).
///
/// The scan is byte-level and allocation-free: tokens are maximal runs
/// of ASCII-alphanumeric bytes compared case-insensitively. This splits
/// exactly like the old per-`char` scan — a non-ASCII char is never
/// ASCII-alphanumeric, so every byte of its UTF-8 encoding is a
/// separator either way.
pub fn parse_tf(response: &str) -> ParsedAnswer {
    let bytes = response.as_bytes();
    let eq = |a: &[u8], b: &[u8]| a.eq_ignore_ascii_case(b);
    let mut prev: &[u8] = b"";
    let mut prev2: &[u8] = b"";
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && !bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        if start == i {
            break;
        }
        let token = &bytes[start..i];
        let prev_not = eq(prev, b"not");
        if eq(token, b"yes") || eq(token, b"yeah") || eq(token, b"yep") {
            return ParsedAnswer::Yes;
        }
        if eq(token, b"no") || eq(token, b"nope") {
            return ParsedAnswer::No;
        }
        if eq(token, b"correct") || eq(token, b"true") {
            return if prev_not { ParsedAnswer::No } else { ParsedAnswer::Yes };
        }
        if eq(token, b"incorrect") || eq(token, b"false") {
            return if prev_not { ParsedAnswer::Yes } else { ParsedAnswer::No };
        }
        // Abstention phrases complete on their last word ("don't know"
        // tokenizes as don|t|know, "can't determine" as can|t|determine).
        let abstains = eq(token, b"unsure")
            || eq(token, b"uncertain")
            || (eq(token, b"sure") && prev_not)
            || (eq(token, b"know")
                && (eq(prev, b"dont")
                    || (eq(prev, b"t") && eq(prev2, b"don"))
                    || (prev_not && eq(prev2, b"do"))))
            || (eq(token, b"determine")
                && (eq(prev, b"cannot") || (eq(prev, b"t") && eq(prev2, b"can"))))
            || (eq(token, b"say") && eq(prev, b"cannot"));
        if abstains {
            return ParsedAnswer::IDontKnow;
        }
        prev2 = prev;
        prev = token;
    }
    ParsedAnswer::Unparsed
}

/// Abstention phrases recognized in MCQ responses.
const MCQ_ABSTENTIONS: [&str; 6] =
    ["don't know", "dont know", "do not know", "not sure", "none of", "cannot determine"];

/// Index of the explicit abstain slot: the letter after 'd'. A response
/// that resolves to 'e' ("E) None of the above", "The answer is E") can
/// never name one of the four content options, so it parses as an
/// abstention rather than an option index.
const ABSTAIN_SLOT: u8 = 4;

/// Parse an MCQ response into an option index.
///
/// A decisive option reference wins over a *later* abstention phrase
/// ("B) — none of the other options fit." picks B); the response only
/// abstains when no option reference precedes the first hedge. Two
/// explicit abstain-option forms are recognized: the letter 'e'
/// resolves to the abstain slot, and a response that *echoes* the
/// option list (two or more distinct standalone "x)" references) before
/// a bare "none of the above" is an abstention, not a pick of the first
/// echoed letter.
pub fn parse_mcq(response: &str) -> ParsedAnswer {
    let trimmed = response.trim();
    if trimmed.is_empty() {
        return ParsedAnswer::Unparsed;
    }
    let lower = trimmed.to_ascii_lowercase();
    let abstention = MCQ_ABSTENTIONS.iter().filter_map(|p| lower.find(p)).min();
    // Option extraction is scoped to the text before the first
    // abstention phrase: an option named there is the answer; one named
    // after the hedge ("I don't know … maybe B?") is not a commitment.
    let scope = match abstention {
        Some(pos) => &lower[..pos],
        None => &lower[..],
    };
    match extract_option(scope) {
        Some(opt) if opt >= ABSTAIN_SLOT => ParsedAnswer::IDontKnow,
        Some(opt) => ParsedAnswer::Option(opt),
        None if abstention.is_some() => ParsedAnswer::IDontKnow,
        None => ParsedAnswer::Unparsed,
    }
}

/// Find an option reference in (already lowercased) response text.
fn extract_option(lower: &str) -> Option<u8> {
    // Pattern 1: "answer is X" / "option X" / "choose X". Punctuation
    // and whitespace may separate the marker from the letter ("The
    // answer is: B", "answer is — B", "answer is 'C'").
    for marker in ["answer is", "answer:", "option", "choose", "select", "pick"] {
        let Some(pos) = lower.find(marker) else { continue };
        let after = &lower[pos + marker.len()..];
        let candidate = after.trim_start_matches(|c: char| !c.is_ascii_alphanumeric());
        // The marker must end at a word boundary: "optional b" and
        // "chooses b" contain marker words only as fragments.
        if candidate.len() == after.len() && !after.is_empty() {
            continue;
        }
        if let Some(opt) = letter_at(candidate) {
            return Some(opt);
        }
    }

    // An option-list echo ("A) x B) y … — none of the above.") names
    // two or more DISTINCT standalone "x)" letters: the model is
    // reciting the options, not answering with the first one. Only an
    // explicit marker (pattern 1, handled above) extracts from such
    // text; patterns 2 and 3 are suppressed so a trailing abstention
    // phrase can decide.
    let bytes = lower.as_bytes();
    let mut seen = [false; (ABSTAIN_SLOT + 1) as usize];
    for i in 0..bytes.len().saturating_sub(1) {
        if bytes[i + 1] == b')' && (b'a'..=b'e').contains(&bytes[i]) {
            let preceded_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
            if preceded_ok {
                seen[(bytes[i] - b'a') as usize] = true;
            }
        }
    }
    if seen.iter().filter(|s| **s).count() >= 2 {
        return None;
    }

    // Pattern 2: a leading letter possibly wrapped in punctuation:
    // "B", "B)", "(b)", "b.", "B) Audio".
    let stripped = lower.trim_start_matches(['(', '[', '"', '\'', ' ']);
    if let Some(opt) = letter_at(stripped) {
        return Some(opt);
    }

    // Pattern 3: anywhere a standalone "x)" appears.
    for i in 0..bytes.len().saturating_sub(1) {
        if bytes[i + 1] == b')' && (b'a'..=b'e').contains(&bytes[i]) {
            let preceded_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
            if preceded_ok {
                return Some(bytes[i] - b'a');
            }
        }
    }

    None
}

/// If `s` starts with an option letter a–e followed by a non-alphanumeric
/// boundary (or end of string), return its index ('e' is the abstain
/// slot, [`ABSTAIN_SLOT`]).
fn letter_at(s: &str) -> Option<u8> {
    let mut chars = s.chars();
    let first = chars.next()?;
    let idx = match first.to_ascii_lowercase() {
        'a' => 0,
        'b' => 1,
        'c' => 2,
        'd' => 3,
        'e' => ABSTAIN_SLOT,
        _ => return None,
    };
    match chars.next() {
        None => Some(idx),
        Some(c) if !c.is_ascii_alphanumeric() => Some(idx),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_plain_forms() {
        assert_eq!(parse_tf("Yes"), ParsedAnswer::Yes);
        assert_eq!(parse_tf("yes."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No"), ParsedAnswer::No);
        assert_eq!(parse_tf("NO!"), ParsedAnswer::No);
        assert_eq!(parse_tf("I don't know"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("I do not know."), ParsedAnswer::IDontKnow);
    }

    #[test]
    fn tf_verbose_forms() {
        assert_eq!(parse_tf("Yes, Hailu is a type of Hakka-Chinese."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No, that is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("Sure! The answer is: Yes"), ParsedAnswer::Yes);
        assert_eq!(parse_tf("That is true."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("False."), ParsedAnswer::No);
        assert_eq!(
            parse_tf("As an AI, I am not sure about this taxonomy."),
            ParsedAnswer::IDontKnow
        );
    }

    #[test]
    fn tf_know_does_not_mean_no() {
        assert_eq!(parse_tf("I know this one: yes"), ParsedAnswer::Yes);
        // "know" alone must not parse as "no".
        assert_eq!(parse_tf("know"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("North is a direction"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_garbage_is_unparsed() {
        assert_eq!(parse_tf(""), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("lorem ipsum dolor"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("   "), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_first_decisive_token_wins() {
        assert_eq!(parse_tf("Yes. No. Maybe."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No — although some say yes."), ParsedAnswer::No);
    }

    #[test]
    fn tf_negated_judgement_flips() {
        // Regression: these used to parse as Yes because "true"/"correct"
        // were matched without looking at the preceding "not".
        assert_eq!(parse_tf("That is not true."), ParsedAnswer::No);
        assert_eq!(parse_tf("That is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("This statement is not   true."), ParsedAnswer::No);
        // Double negation reads as agreement.
        assert_eq!(parse_tf("That is not false."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("Not incorrect."), ParsedAnswer::Yes);
        // An earlier decisive interjection still wins over a later bigram.
        assert_eq!(parse_tf("No, that is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("Yes — it is not false to say so."), ParsedAnswer::Yes);
        // "not" only negates the directly following judgement token.
        assert_eq!(parse_tf("It is not just plausible but true."), ParsedAnswer::Yes);
    }

    #[test]
    fn mcq_letter_forms() {
        assert_eq!(parse_mcq("B"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("b)"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("(C)"), ParsedAnswer::Option(2));
        assert_eq!(parse_mcq("D."), ParsedAnswer::Option(3));
        assert_eq!(parse_mcq("A) Audio"), ParsedAnswer::Option(0));
    }

    #[test]
    fn mcq_verbose_forms() {
        assert_eq!(parse_mcq("The answer is B."), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("I would choose c) because it fits."), ParsedAnswer::Option(2));
        assert_eq!(parse_mcq("The most appropriate option is therefore d)."), ParsedAnswer::Option(3));
        assert_eq!(parse_mcq("answer: a"), ParsedAnswer::Option(0));
    }

    #[test]
    fn mcq_abstentions_and_garbage() {
        assert_eq!(parse_mcq("I don't know."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("None of the above."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq(""), ParsedAnswer::Unparsed);
        assert_eq!(parse_mcq("The options all look wrong"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn mcq_does_not_misread_words_starting_with_letters() {
        // "Audio" starts with 'a' but is not an option reference.
        assert_eq!(parse_mcq("Audio equipment is nice"), ParsedAnswer::Unparsed);
        // "cab)" should not match 'b' because it is preceded by a letter.
        assert_eq!(parse_mcq("the cab) arrived"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn mcq_marker_tolerates_punctuation_before_letter() {
        // Regression: "answer is X" used to require the letter to follow
        // the marker immediately, so a colon/dash/quote broke extraction.
        assert_eq!(parse_mcq("The answer is: B"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("The answer is — B"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("The answer is 'C'."), ParsedAnswer::Option(2));
        assert_eq!(parse_mcq("answer:\n  d"), ParsedAnswer::Option(3));
        assert_eq!(parse_mcq("I would pick (a)."), ParsedAnswer::Option(0));
    }

    #[test]
    fn mcq_marker_requires_word_boundary() {
        // Marker words embedded in longer words must not trigger
        // extraction of whatever letter follows.
        assert_eq!(parse_mcq("optional b sides exist"), ParsedAnswer::Unparsed);
        assert_eq!(parse_mcq("he chooses b sometimes"), ParsedAnswer::Unparsed);
        assert_eq!(parse_mcq("the answer isn't clear"), ParsedAnswer::Unparsed);
        assert_eq!(parse_mcq("selection b is moot"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn mcq_decisive_option_beats_later_hedge() {
        // Regression: the abstention scan used to run first, so a decisive
        // answer followed by hedging was misread as IDontKnow.
        assert_eq!(
            parse_mcq("B) — none of the other options fit."),
            ParsedAnswer::Option(1)
        );
        assert_eq!(
            parse_mcq("The answer is a; I am not sure about the rest."),
            ParsedAnswer::Option(0)
        );
        // But an option named only AFTER the hedge is not a commitment.
        assert_eq!(parse_mcq("I don't know — maybe b)?"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("Not sure. Could be c)."), ParsedAnswer::IDontKnow);
    }

    #[test]
    fn mcq_explicit_abstain_option() {
        // The abstain letter resolves to an abstention, never Option(4).
        assert_eq!(parse_mcq("E) None of the above"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("E"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("(e)"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("The answer is E."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("I would choose e) here."), ParsedAnswer::IDontKnow);
        // A word starting with 'e' is not the abstain letter.
        assert_eq!(parse_mcq("Everything fits"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn mcq_option_list_echo_then_abstain() {
        // Echoing the option list before a bare hedge is an abstention,
        // not a pick of the first echoed letter.
        assert_eq!(
            parse_mcq("A) Audio B) Video C) Garden D) Books — none of the above."),
            ParsedAnswer::IDontKnow
        );
        assert_eq!(
            parse_mcq("a) x b) y: none of these, I don't know."),
            ParsedAnswer::IDontKnow
        );
        // A single decisive letter before the hedge still wins.
        assert_eq!(
            parse_mcq("B) — none of the other options fit."),
            ParsedAnswer::Option(1)
        );
        // An explicit marker beats the echo suppression.
        assert_eq!(
            parse_mcq("A) x B) y — the answer is b, none of the others."),
            ParsedAnswer::Option(1)
        );
        // An echo with no hedge stays unparsed rather than guessing.
        assert_eq!(parse_mcq("A) Audio B) Video C) Garden"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_decisive_interjection_beats_later_hedge() {
        // Regression: abstention phrases used to override an earlier
        // decisive interjection, contradicting first-decisive-token-wins.
        assert_eq!(
            parse_tf("No, I cannot say for sure which level it sits at."),
            ParsedAnswer::No
        );
        assert_eq!(parse_tf("Yes — though honestly I'm not sure."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No, I don't know the details."), ParsedAnswer::No);
        // The hedge still abstains when nothing decisive precedes it.
        assert_eq!(parse_tf("I cannot say whether that holds."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("I can't determine that."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("Honestly, uncertain."), ParsedAnswer::IDontKnow);
    }

    #[test]
    fn tf_near_miss_forms_stay_unparsed() {
        // Fragments of abstention phrases must not abstain on their own.
        assert_eq!(parse_tf("sure thing, consider it done"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("we say what we can"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("they determine the hierarchy"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("the known knowns"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_abstention_is_case_insensitive_and_spans_punctuation() {
        assert_eq!(parse_tf("I DO NOT KNOW"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("I Can't Determine that."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("i dont know"), ParsedAnswer::IDontKnow);
    }
}
