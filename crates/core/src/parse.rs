//! Free-text answer extraction.
//!
//! Models answer in whatever phrasing they like ("Yes, X is a type of
//! Y.", "The correct answer is B) Audio.", "I don't know the answer to
//! that."); the harness normalizes those into [`ParsedAnswer`]s. A
//! response that cannot be parsed counts as *wrong* (not as a miss),
//! matching the paper's accuracy/miss bookkeeping where only explicit
//! abstentions are misses.

use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Normalized model answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsedAnswer {
    /// Affirmative.
    Yes,
    /// Negative.
    No,
    /// Explicit abstention ("I don't know").
    IDontKnow,
    /// MCQ option index 0–3.
    Option(u8),
    /// Unintelligible response.
    Unparsed,
}

impl ToJson for ParsedAnswer {
    fn to_json(&self) -> Json {
        match self {
            ParsedAnswer::Yes => Json::Str("Yes".to_owned()),
            ParsedAnswer::No => Json::Str("No".to_owned()),
            ParsedAnswer::IDontKnow => Json::Str("IDontKnow".to_owned()),
            ParsedAnswer::Unparsed => Json::Str("Unparsed".to_owned()),
            ParsedAnswer::Option(i) => Json::obj(vec![("Option", i.to_json())]),
        }
    }
}

impl FromJson for ParsedAnswer {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(idx) = json.get("Option") {
            return u8::from_json(idx).map(ParsedAnswer::Option);
        }
        match json.as_str() {
            Some("Yes") => Ok(ParsedAnswer::Yes),
            Some("No") => Ok(ParsedAnswer::No),
            Some("IDontKnow") => Ok(ParsedAnswer::IDontKnow),
            Some("Unparsed") => Ok(ParsedAnswer::Unparsed),
            Some(other) => Err(JsonError::msg(format!("unknown ParsedAnswer variant `{other}`"))),
            None => Err(JsonError::mismatch("string or Option object", json)),
        }
    }
}

/// Parse a True/False response.
pub fn parse_tf(response: &str) -> ParsedAnswer {
    let lower = response.trim().to_ascii_lowercase();
    if lower.is_empty() {
        return ParsedAnswer::Unparsed;
    }
    // Abstentions first: "i don't know", "i do not know", "not sure",
    // "cannot determine", "unsure".
    if lower.contains("don't know")
        || lower.contains("dont know")
        || lower.contains("do not know")
        || lower.contains("not sure")
        || lower.contains("unsure")
        || lower.contains("cannot determine")
        || lower.contains("can't determine")
        || lower.contains("cannot say")
        || lower.contains("uncertain")
    {
        return ParsedAnswer::IDontKnow;
    }
    // Word-boundary scan for the first decisive token. "no" must be a
    // whole word so "know"/"north" do not trigger it. A directly
    // preceding "not" negates the judgement tokens ("not true", "not
    // correct", "not false"); the interjections "yes"/"no" themselves
    // are never negated ("not no" is not idiomatic English).
    let mut prev_not = false;
    for token in lower.split(|c: char| !c.is_ascii_alphanumeric()) {
        if token.is_empty() {
            continue;
        }
        match token {
            "yes" | "yeah" | "yep" => return ParsedAnswer::Yes,
            "no" | "nope" => return ParsedAnswer::No,
            "correct" | "true" if prev_not => return ParsedAnswer::No,
            "correct" | "true" => return ParsedAnswer::Yes,
            "incorrect" | "false" if prev_not => return ParsedAnswer::Yes,
            "incorrect" | "false" => return ParsedAnswer::No,
            _ => {}
        }
        prev_not = token == "not";
    }
    ParsedAnswer::Unparsed
}

/// Parse an MCQ response into an option index.
pub fn parse_mcq(response: &str) -> ParsedAnswer {
    let trimmed = response.trim();
    if trimmed.is_empty() {
        return ParsedAnswer::Unparsed;
    }
    let lower = trimmed.to_ascii_lowercase();
    if lower.contains("don't know")
        || lower.contains("dont know")
        || lower.contains("do not know")
        || lower.contains("not sure")
        || lower.contains("none of")
        || lower.contains("cannot determine")
    {
        return ParsedAnswer::IDontKnow;
    }

    // Pattern 1: "answer is X" / "option X" / "choose X".
    for marker in ["answer is ", "answer: ", "option ", "choose ", "select ", "pick "] {
        if let Some(pos) = lower.find(marker) {
            if let Some(opt) = letter_at(&lower[pos + marker.len()..]) {
                return ParsedAnswer::Option(opt);
            }
        }
    }

    // Pattern 2: a leading letter possibly wrapped in punctuation:
    // "B", "B)", "(b)", "b.", "B) Audio".
    let stripped = lower.trim_start_matches(['(', '[', '"', '\'', ' ']);
    if let Some(opt) = letter_at(stripped) {
        return ParsedAnswer::Option(opt);
    }

    // Pattern 3: anywhere a standalone "x)" appears.
    let bytes = lower.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        if bytes[i + 1] == b')' && (b'a'..=b'd').contains(&bytes[i]) {
            let preceded_ok = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
            if preceded_ok {
                return ParsedAnswer::Option(bytes[i] - b'a');
            }
        }
    }

    ParsedAnswer::Unparsed
}

/// If `s` starts with an option letter a–d followed by a non-alphanumeric
/// boundary (or end of string), return its index.
fn letter_at(s: &str) -> Option<u8> {
    let mut chars = s.chars();
    let first = chars.next()?;
    let idx = match first.to_ascii_lowercase() {
        'a' => 0,
        'b' => 1,
        'c' => 2,
        'd' => 3,
        _ => return None,
    };
    match chars.next() {
        None => Some(idx),
        Some(c) if !c.is_ascii_alphanumeric() => Some(idx),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_plain_forms() {
        assert_eq!(parse_tf("Yes"), ParsedAnswer::Yes);
        assert_eq!(parse_tf("yes."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No"), ParsedAnswer::No);
        assert_eq!(parse_tf("NO!"), ParsedAnswer::No);
        assert_eq!(parse_tf("I don't know"), ParsedAnswer::IDontKnow);
        assert_eq!(parse_tf("I do not know."), ParsedAnswer::IDontKnow);
    }

    #[test]
    fn tf_verbose_forms() {
        assert_eq!(parse_tf("Yes, Hailu is a type of Hakka-Chinese."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No, that is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("Sure! The answer is: Yes"), ParsedAnswer::Yes);
        assert_eq!(parse_tf("That is true."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("False."), ParsedAnswer::No);
        assert_eq!(
            parse_tf("As an AI, I am not sure about this taxonomy."),
            ParsedAnswer::IDontKnow
        );
    }

    #[test]
    fn tf_know_does_not_mean_no() {
        assert_eq!(parse_tf("I know this one: yes"), ParsedAnswer::Yes);
        // "know" alone must not parse as "no".
        assert_eq!(parse_tf("know"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("North is a direction"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_garbage_is_unparsed() {
        assert_eq!(parse_tf(""), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("lorem ipsum dolor"), ParsedAnswer::Unparsed);
        assert_eq!(parse_tf("   "), ParsedAnswer::Unparsed);
    }

    #[test]
    fn tf_first_decisive_token_wins() {
        assert_eq!(parse_tf("Yes. No. Maybe."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("No — although some say yes."), ParsedAnswer::No);
    }

    #[test]
    fn tf_negated_judgement_flips() {
        // Regression: these used to parse as Yes because "true"/"correct"
        // were matched without looking at the preceding "not".
        assert_eq!(parse_tf("That is not true."), ParsedAnswer::No);
        assert_eq!(parse_tf("That is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("This statement is not   true."), ParsedAnswer::No);
        // Double negation reads as agreement.
        assert_eq!(parse_tf("That is not false."), ParsedAnswer::Yes);
        assert_eq!(parse_tf("Not incorrect."), ParsedAnswer::Yes);
        // An earlier decisive interjection still wins over a later bigram.
        assert_eq!(parse_tf("No, that is not correct."), ParsedAnswer::No);
        assert_eq!(parse_tf("Yes — it is not false to say so."), ParsedAnswer::Yes);
        // "not" only negates the directly following judgement token.
        assert_eq!(parse_tf("It is not just plausible but true."), ParsedAnswer::Yes);
    }

    #[test]
    fn mcq_letter_forms() {
        assert_eq!(parse_mcq("B"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("b)"), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("(C)"), ParsedAnswer::Option(2));
        assert_eq!(parse_mcq("D."), ParsedAnswer::Option(3));
        assert_eq!(parse_mcq("A) Audio"), ParsedAnswer::Option(0));
    }

    #[test]
    fn mcq_verbose_forms() {
        assert_eq!(parse_mcq("The answer is B."), ParsedAnswer::Option(1));
        assert_eq!(parse_mcq("I would choose c) because it fits."), ParsedAnswer::Option(2));
        assert_eq!(parse_mcq("The most appropriate option is therefore d)."), ParsedAnswer::Option(3));
        assert_eq!(parse_mcq("answer: a"), ParsedAnswer::Option(0));
    }

    #[test]
    fn mcq_abstentions_and_garbage() {
        assert_eq!(parse_mcq("I don't know."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq("None of the above."), ParsedAnswer::IDontKnow);
        assert_eq!(parse_mcq(""), ParsedAnswer::Unparsed);
        assert_eq!(parse_mcq("The options all look wrong"), ParsedAnswer::Unparsed);
    }

    #[test]
    fn mcq_does_not_misread_words_starting_with_letters() {
        // "Audio" starts with 'a' but is not an option reference.
        assert_eq!(parse_mcq("Audio equipment is nice"), ParsedAnswer::Unparsed);
        // "cab)" should not match 'b' because it is preceded by a letter.
        assert_eq!(parse_mcq("the cab) arrived"), ParsedAnswer::Unparsed);
    }
}
