//! The model interface the harness evaluates against.

use crate::prompts::PromptSetting;
use crate::question::Question;

/// Everything a model receives for one benchmark query.
///
/// A remote API model would look only at [`Query::prompt`]; simulated
/// models additionally inspect the structured question (the stand-in for
/// what a real LLM absorbed from its training data about these
/// entities).
#[derive(Debug, Clone, Copy)]
pub struct Query<'q> {
    /// The fully rendered prompt text (templates + prompting setting).
    /// Borrowed so the evaluator can render into one reusable buffer
    /// per worker instead of allocating a `String` per query.
    pub prompt: &'q str,
    /// The structured question behind the prompt.
    pub question: &'q Question,
    /// The prompting setting in force.
    pub setting: PromptSetting,
}

/// A language model under evaluation.
///
/// Implementations return *free natural-language text*; the harness
/// parses it with [`crate::parse`]. This mirrors the paper's setup where
/// models answer "Yes", "No", "I don't know" or an option letter in
/// whatever phrasing they like.
pub trait LanguageModel: Send + Sync {
    /// Model name as printed in result tables (e.g. "GPT-4").
    fn name(&self) -> &str;

    /// Answer one query with free text.
    fn answer(&self, query: &Query<'_>) -> String;

    /// Reset any per-run state (default: no-op). Called by the evaluator
    /// before each dataset run.
    fn reset(&self) {}
}

/// Blanket implementation so `Box<dyn LanguageModel>` works wherever a
/// `&dyn LanguageModel` is expected.
impl<M: LanguageModel + ?Sized> LanguageModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn answer(&self, query: &Query<'_>) -> String {
        (**self).answer(query)
    }

    fn reset(&self) {
        (**self).reset()
    }
}

/// A trivial model that always answers a fixed string. Useful as a
/// baseline ("always yes"), for parser tests, and in examples.
#[derive(Debug, Clone)]
pub struct FixedAnswerModel {
    name: String,
    answer: String,
}

impl FixedAnswerModel {
    /// A model that answers `answer` to everything.
    pub fn new(name: impl Into<String>, answer: impl Into<String>) -> Self {
        FixedAnswerModel { name: name.into(), answer: answer.into() }
    }

    /// The classic always-Yes baseline.
    pub fn always_yes() -> Self {
        Self::new("always-yes", "Yes.")
    }

    /// A maximally conservative model.
    pub fn always_idk() -> Self {
        Self::new("always-idk", "I don't know.")
    }
}

impl LanguageModel for FixedAnswerModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, _query: &Query<'_>) -> String {
        self.answer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::question::QuestionBody;

    #[test]
    fn fixed_model_answers_fixed() {
        let m = FixedAnswerModel::always_yes();
        let q = Question {
            id: 0,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "b".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate: "b".into(), expected_yes: true, negative: None },
        };
        let query = Query { prompt: "p", question: &q, setting: PromptSetting::ZeroShot };
        assert_eq!(m.answer(&query), "Yes.");
        assert_eq!(m.name(), "always-yes");
        m.reset();
    }

    #[test]
    fn boxed_models_delegate() {
        let m: Box<dyn LanguageModel> = Box::new(FixedAnswerModel::always_idk());
        assert_eq!(m.name(), "always-idk");
    }
}
