//! The model interface the harness evaluates against.
//!
//! Calling a model is *fallible*: real serving stacks time out, rate
//! limit, truncate and fall over (the paper ran eighteen models behind
//! Azure/OpenAI APIs and a local GPU farm, where all four happen).
//! [`LanguageModel::answer`] therefore returns
//! `Result<Response, ModelError>`; the retry/breaker machinery lives in
//! [`crate::resilience`], and exhausted queries surface as
//! [`crate::metrics::Outcome::Failed`] instead of silent wrong answers.

use crate::prompts::PromptSetting;
use crate::question::Question;
use std::fmt;

/// Everything a model receives for one benchmark query.
///
/// A remote API model would look only at [`Query::prompt`]; simulated
/// models additionally inspect the structured question (the stand-in for
/// what a real LLM absorbed from its training data about these
/// entities).
#[derive(Debug, Clone, Copy)]
pub struct Query<'q> {
    /// The fully rendered prompt text (templates + prompting setting).
    /// Borrowed so the evaluator can render into one reusable buffer
    /// per worker instead of allocating a `String` per query.
    pub prompt: &'q str,
    /// The structured question behind the prompt.
    pub question: &'q Question,
    /// The prompting setting in force.
    pub setting: PromptSetting,
    /// Zero-based retry ordinal: 0 on the first delivery, 1 on the
    /// first retry, and so on. Fault streams mix this in so a retried
    /// query re-rolls its fate instead of failing identically forever;
    /// answer content must NOT depend on it (determinism contract).
    pub attempt: u32,
    /// Byte length of the shared few-shot prefix at the start of
    /// `prompt` (0 when there is none). Purely an amortization *hint*
    /// for [`LanguageModel::answer_batch`]: queries in a batch that
    /// carry the same nonzero `prefix_len` and byte-identical prefix
    /// bytes let a model hash/tokenize the prefix once. Models must
    /// produce identical answers whether or not they honor the hint.
    pub prefix_len: usize,
}

impl<'q> Query<'q> {
    /// A first-delivery query (attempt 0).
    pub fn new(prompt: &'q str, question: &'q Question, setting: PromptSetting) -> Self {
        Query { prompt, question, setting, attempt: 0, prefix_len: 0 }
    }

    /// The same query re-delivered as retry ordinal `attempt`.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// Declare that the first `prefix_len` bytes of the prompt are a
    /// shared rendered prefix (see [`Query::prefix_len`]).
    pub fn with_prefix_len(mut self, prefix_len: usize) -> Self {
        debug_assert!(prefix_len <= self.prompt.len());
        self.prefix_len = prefix_len;
        self
    }
}

/// Why a model call failed. The five classes cover what the paper's
/// serving reality produces: slow answers, throttled answers, cut-off
/// answers, no answers, and garbage answers.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The request exceeded its deadline.
    Timeout,
    /// The serving side throttled the request; honor `retry_after_s`
    /// (simulated seconds) before retrying.
    RateLimited {
        /// Server-suggested wait before the next attempt, in simulated
        /// seconds.
        retry_after_s: f64,
    },
    /// The completion was cut off mid-answer; `partial` holds whatever
    /// arrived before the cut.
    Truncated {
        /// The prefix of the answer that made it through.
        partial: String,
    },
    /// The serving side is down or refusing connections.
    Unavailable,
    /// The response arrived but was structurally unusable (wrong
    /// encoding, empty body, protocol violation). Retrying cannot help:
    /// the same request deterministically produces the same garbage.
    Malformed,
}

impl ModelError {
    /// Whether a retry can plausibly succeed. [`ModelError::Malformed`]
    /// is the one permanent class; everything else is transient.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ModelError::Malformed)
    }

    /// Stable lowercase label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ModelError::Timeout => "timeout",
            ModelError::RateLimited { .. } => "rate-limited",
            ModelError::Truncated { .. } => "truncated",
            ModelError::Unavailable => "unavailable",
            ModelError::Malformed => "malformed",
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Timeout => write!(f, "request timed out"),
            ModelError::RateLimited { retry_after_s } => {
                write!(f, "rate limited (retry after {retry_after_s:.2}s)")
            }
            ModelError::Truncated { partial } => {
                write!(f, "response truncated after {} bytes", partial.len())
            }
            ModelError::Unavailable => write!(f, "service unavailable"),
            ModelError::Malformed => write!(f, "malformed response"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A successful model completion: the text plus serving metadata.
///
/// Only `text` feeds scoring; `latency_s` accumulates on the simulated
/// clock and `attempts` records how many deliveries the resilience
/// layer needed. Neither is serialized into reports, so metadata can
/// never perturb the byte-identical digest contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The free natural-language answer text.
    pub text: String,
    /// Simulated seconds this (successful) delivery took.
    pub latency_s: f64,
    /// Total deliveries including retries (≥ 1); 1 means first try.
    pub attempts: u32,
}

impl Response {
    /// A first-try response with zero latency — what in-process models
    /// (baselines, oracles, fixtures) return.
    pub fn new(text: impl Into<String>) -> Self {
        Response { text: text.into(), latency_s: 0.0, attempts: 1 }
    }

    /// Attach a simulated per-delivery latency.
    pub fn with_latency(mut self, latency_s: f64) -> Self {
        self.latency_s = latency_s;
        self
    }
}

/// A language model under evaluation.
///
/// Implementations return *free natural-language text*; the harness
/// parses it with [`crate::parse`]. This mirrors the paper's setup where
/// models answer "Yes", "No", "I don't know" or an option letter in
/// whatever phrasing they like.
pub trait LanguageModel: Send + Sync {
    /// Model name as printed in result tables (e.g. "GPT-4").
    fn name(&self) -> &str;

    /// Answer one query with free text, or report why the call failed.
    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError>;

    /// Answer a batch of queries, one result per query, in order.
    ///
    /// The default implementation is a plain loop over [`Self::answer`],
    /// so every model keeps working unchanged. Implementations may
    /// override it to amortize per-call work (knowledge lookups,
    /// few-shot prefix hashing, tokenizer passes, lock acquisition)
    /// across the batch — but each element of the returned vector MUST
    /// be exactly what `answer` would have returned for that query
    /// alone. Batching is an execution detail; it must never be
    /// observable in the results.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        queries.iter().map(|query| self.answer(query)).collect()
    }

    /// Reset any per-run state (default: no-op). Called by the evaluator
    /// before each dataset run.
    fn reset(&self) {}
}

/// Blanket implementation so `Box<dyn LanguageModel>` works wherever a
/// `&dyn LanguageModel` is expected.
impl<M: LanguageModel + ?Sized> LanguageModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        (**self).answer(query)
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        (**self).answer_batch(queries)
    }

    fn reset(&self) {
        (**self).reset()
    }
}

/// Blanket implementation so `&M` works wherever a `LanguageModel` is
/// expected — e.g. sharded runs (`crate::shard`) handing the same
/// per-shard model stack to several evaluation calls without cloning.
impl<M: LanguageModel + ?Sized> LanguageModel for &M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        (**self).answer(query)
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        (**self).answer_batch(queries)
    }

    fn reset(&self) {
        (**self).reset()
    }
}

/// Blanket implementation so `Arc<M>` (how the zoo hands out models)
/// works wherever a `LanguageModel` is expected — e.g. inside
/// [`crate::cache::CachedModel`] without re-wrapping.
impl<M: LanguageModel + ?Sized> LanguageModel for std::sync::Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        (**self).answer(query)
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        (**self).answer_batch(queries)
    }

    fn reset(&self) {
        (**self).reset()
    }
}

/// A trivial model that always answers a fixed string. Useful as a
/// baseline ("always yes"), for parser tests, and in examples.
#[derive(Debug, Clone)]
pub struct FixedAnswerModel {
    name: String,
    answer: String,
}

impl FixedAnswerModel {
    /// A model that answers `answer` to everything.
    pub fn new(name: impl Into<String>, answer: impl Into<String>) -> Self {
        FixedAnswerModel { name: name.into(), answer: answer.into() }
    }

    /// The classic always-Yes baseline.
    pub fn always_yes() -> Self {
        Self::new("always-yes", "Yes.")
    }

    /// A maximally conservative model.
    pub fn always_idk() -> Self {
        Self::new("always-idk", "I don't know.")
    }
}

impl LanguageModel for FixedAnswerModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, _query: &Query<'_>) -> Result<Response, ModelError> {
        Ok(Response::new(self.answer.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::question::QuestionBody;

    fn question() -> Question {
        Question {
            id: 0,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "b".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate: "b".into(), expected_yes: true, negative: None },
        }
    }

    #[test]
    fn fixed_model_answers_fixed() {
        let m = FixedAnswerModel::always_yes();
        let q = question();
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        assert_eq!(m.answer(&query).expect("fixed model never fails").text, "Yes.");
        assert_eq!(m.name(), "always-yes");
        m.reset();
    }

    #[test]
    fn boxed_models_delegate() {
        let m: Box<dyn LanguageModel> = Box::new(FixedAnswerModel::always_idk());
        assert_eq!(m.name(), "always-idk");
    }

    #[test]
    fn query_attempt_defaults_to_zero_and_rebinds() {
        let q = question();
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        assert_eq!(query.attempt, 0);
        assert_eq!(query.with_attempt(3).attempt, 3);
    }

    #[test]
    fn query_prefix_len_defaults_to_zero_and_rebinds() {
        let q = question();
        let query = Query::new("pp", &q, PromptSetting::FewShot);
        assert_eq!(query.prefix_len, 0);
        assert_eq!(query.with_prefix_len(1).prefix_len, 1);
    }

    #[test]
    fn default_answer_batch_loops_in_order() {
        let m = FixedAnswerModel::always_yes();
        let q = question();
        let prompts = ["p0", "p1", "p2"];
        let queries: Vec<Query<'_>> =
            prompts.iter().map(|p| Query::new(p, &q, PromptSetting::ZeroShot)).collect();
        let batch = m.answer_batch(&queries);
        assert_eq!(batch.len(), 3);
        for (result, query) in batch.iter().zip(&queries) {
            assert_eq!(result, &m.answer(query));
        }
        // The blanket impls forward answer_batch too.
        let boxed: Box<dyn LanguageModel> = Box::new(FixedAnswerModel::always_idk());
        assert_eq!(boxed.answer_batch(&queries).len(), 3);
        let arced = std::sync::Arc::new(FixedAnswerModel::always_idk());
        assert_eq!(arced.answer_batch(&queries).len(), 3);
        assert_eq!(arced.name(), "always-idk");
        arced.reset();
        assert!(arced.answer(&queries[0]).is_ok());
    }

    #[test]
    fn error_retryability_and_labels() {
        assert!(ModelError::Timeout.is_retryable());
        assert!(ModelError::RateLimited { retry_after_s: 1.0 }.is_retryable());
        assert!(ModelError::Truncated { partial: "Ye".into() }.is_retryable());
        assert!(ModelError::Unavailable.is_retryable());
        assert!(!ModelError::Malformed.is_retryable());
        assert_eq!(ModelError::Timeout.label(), "timeout");
        assert_eq!(ModelError::Malformed.to_string(), "malformed response");
        assert!(ModelError::Truncated { partial: "abc".into() }.to_string().contains("3 bytes"));
    }

    #[test]
    fn response_builder_carries_metadata() {
        let r = Response::new("Yes.").with_latency(0.8);
        assert_eq!(r.text, "Yes.");
        assert_eq!(r.latency_s, 0.8);
        assert_eq!(r.attempts, 1);
    }
}
