//! The §5.3 case study: replacing the deep levels of the Amazon Product
//! Category with an LLM.
//!
//! The paper removes every level-4-or-deeper node (25,777 of 43,814 —
//! a 59% construction/maintenance saving), keeps root..level-3 for
//! display, and routes a query for a removed concept (e.g. "Pencil")
//! through its kept ancestor ("Stationery"): the LLM is asked to return,
//! from the full list of stationery products, those that are pencils.
//! The paper measures precision 0.713 and recall 0.792 with Llama-2-70B.
//!
//! Here the same pipeline runs against any [`LanguageModel`]: for each
//! sampled removed concept we pool its own products with its siblings'
//! products and ask the model, product by product, "Are `<product>`
//! products a type of `<concept>` products?" — a product is returned iff
//! the model answers Yes.

use crate::domain::TaxonomyKind;
use crate::metrics::Outcome;
use crate::model::{LanguageModel, ModelError, Query};
use crate::parse::{parse_tf, ParsedAnswer};
use crate::prompts::PromptSetting;
use crate::question::{NegativeKind, Question, QuestionBody};
use crate::sampling::cochran_sample_size;
use crate::templates::{render_question, TemplateVariant};
use taxoglimpse_synth::instances::InstanceGenerator;
use taxoglimpse_synth::rng::{fork, SliceRandom};
use taxoglimpse_taxonomy::Taxonomy;

/// Case-study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStudyConfig {
    /// Nodes at this level or deeper are replaced by the LLM (the paper
    /// uses 4 for Amazon: root=0 … level-3 kept).
    pub cutoff_level: usize,
    /// Synthetic products generated under each replaced leaf concept.
    pub products_per_concept: usize,
    /// Optional cap on sampled concepts (the paper samples at 95%/5%).
    pub sample_cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig { cutoff_level: 4, products_per_concept: 12, sample_cap: None, seed: 0xCA5E }
    }
}

/// Case-study outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyResult {
    /// Nodes kept (levels `0..cutoff`).
    pub kept_nodes: usize,
    /// Nodes removed (levels `cutoff..`).
    pub removed_nodes: usize,
    /// `removed / total` — the construction/maintenance saving the paper
    /// reports as 59% for Amazon at cutoff 4.
    pub cost_saving: f64,
    /// Micro-averaged precision of the returned product lists.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
    /// Number of removed concepts evaluated.
    pub concepts_evaluated: usize,
    /// Total product-level classifications issued to the model.
    pub classifications: usize,
}

/// Runs the hybrid taxonomy-replacement pipeline.
#[derive(Debug)]
pub struct CaseStudy<'t> {
    taxonomy: &'t Taxonomy,
    kind: TaxonomyKind,
    config: CaseStudyConfig,
}

impl<'t> CaseStudy<'t> {
    /// Create a case study over a (shopping) taxonomy.
    pub fn new(taxonomy: &'t Taxonomy, kind: TaxonomyKind, config: CaseStudyConfig) -> Self {
        CaseStudy { taxonomy, kind, config }
    }

    /// Execute against `model`.
    pub fn run(&self, model: &dyn LanguageModel) -> CaseStudyResult {
        let t = self.taxonomy;
        let cutoff = self.config.cutoff_level;
        let kept_nodes: usize = (0..cutoff.min(t.num_levels()))
            .map(|l| t.nodes_at_level(l).len())
            .sum();
        let removed_nodes = t.len() - kept_nodes;
        let cost_saving = if t.is_empty() { 0.0 } else { removed_nodes as f64 / t.len() as f64 };

        // Candidate concepts: removed (level >= cutoff) nodes that have
        // at least one sibling (otherwise there is no retrieval task) and
        // are leaves (products hang under leaf concepts).
        let mut candidates: Vec<_> = t
            .ids()
            .filter(|&id| t.level(id) >= cutoff && t.is_leaf(id) && !t.siblings(id).is_empty())
            .collect();
        let mut rng = fork(self.config.seed, "casestudy", 0);
        candidates.shuffle(&mut rng);
        let mut n = cochran_sample_size(candidates.len());
        if let Some(cap) = self.config.sample_cap {
            n = n.min(cap);
        }
        candidates.truncate(n);

        let instgen = InstanceGenerator::new(self.kind, self.config.seed)
            // lint:allow(P001, documented precondition of run - callers select an instance-bearing kind)
            .unwrap_or_else(|| panic!("case study requires an instance-bearing taxonomy, got {}", self.kind));

        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        let mut classifications = 0usize;
        for &concept in &candidates {
            let own = instgen.instances_for(t, &[concept], self.config.products_per_concept);
            let siblings = t.siblings(concept);
            let sibling_products = instgen.instances_for(t, &siblings, self.config.products_per_concept);

            for inst in &own {
                classifications += 1;
                match self.classify(model, &inst.name, concept) {
                    Outcome::Correct => tp += 1, // returned, truly under concept
                    // Withheld, abstained, or never answered (failed
                    // delivery): the product is not retrieved either way.
                    Outcome::Missed | Outcome::Wrong | Outcome::Failed => fn_ += 1,
                }
            }
            for inst in &sibling_products {
                classifications += 1;
                // A sibling product returned as a match is a false
                // positive; classify() scores "No" as Correct here.
                if self.classify_negative(model, &inst.name, concept) == Outcome::Wrong {
                    fp += 1;
                }
            }
        }

        let precision = safe_div(tp, tp + fp);
        let recall = safe_div(tp, tp + fn_);
        CaseStudyResult {
            kept_nodes,
            removed_nodes,
            cost_saving,
            precision,
            recall,
            concepts_evaluated: candidates.len(),
            classifications,
        }
    }

    fn make_question(&self, product: &str, concept: taxoglimpse_taxonomy::NodeId, positive: bool) -> Question {
        let t = self.taxonomy;
        Question {
            id: 0,
            taxonomy: self.kind,
            child: product.to_owned(),
            child_level: t.level(concept) + 1,
            parent_level: t.level(concept),
            true_parent: t.name(concept).to_owned(),
            instance_typing: true,
            body: QuestionBody::TrueFalse {
                candidate: t.name(concept).to_owned(),
                expected_yes: positive,
                negative: (!positive).then_some(NegativeKind::Hard),
            },
        }
    }

    fn ask(
        &self,
        model: &dyn LanguageModel,
        question: &Question,
    ) -> Result<ParsedAnswer, ModelError> {
        let prompt = render_question(question, TemplateVariant::Canonical);
        let query = Query::new(&prompt, question, PromptSetting::ZeroShot);
        Ok(parse_tf(&model.answer(&query)?.text))
    }

    /// Classify a product that truly belongs to `concept`.
    fn classify(&self, model: &dyn LanguageModel, product: &str, concept: taxoglimpse_taxonomy::NodeId) -> Outcome {
        let q = self.make_question(product, concept, true);
        match self.ask(model, &q) {
            Ok(ParsedAnswer::Yes) => Outcome::Correct,
            Ok(ParsedAnswer::IDontKnow) => Outcome::Missed,
            Ok(ParsedAnswer::No | ParsedAnswer::Option(_) | ParsedAnswer::Unparsed) => Outcome::Wrong,
            Err(
                ModelError::Timeout
                | ModelError::RateLimited { .. }
                | ModelError::Truncated { .. }
                | ModelError::Unavailable
                | ModelError::Malformed,
            ) => Outcome::Failed,
        }
    }

    /// Classify a sibling product (ground truth: not under `concept`).
    /// For this call the question is a *hard negative*: the candidate
    /// concept is a sibling of the product's true category.
    fn classify_negative(&self, model: &dyn LanguageModel, product: &str, concept: taxoglimpse_taxonomy::NodeId) -> Outcome {
        let q = self.make_question(product, concept, false);
        match self.ask(model, &q) {
            Ok(ParsedAnswer::No) => Outcome::Correct,
            Ok(ParsedAnswer::IDontKnow) => Outcome::Missed,
            Ok(ParsedAnswer::Yes | ParsedAnswer::Option(_) | ParsedAnswer::Unparsed) => Outcome::Wrong,
            Err(
                ModelError::Timeout
                | ModelError::RateLimited { .. }
                | ModelError::Truncated { .. }
                | ModelError::Unavailable
                | ModelError::Malformed,
            ) => Outcome::Failed,
        }
    }
}

fn safe_div(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn amazon_small() -> Taxonomy {
        generate(TaxonomyKind::Amazon, GenOptions { seed: 17, scale: 0.05 }).unwrap()
    }

    #[test]
    fn cost_saving_matches_paper_at_full_scale_shape() {
        // At scale 1.0 the Amazon shape is 41-507-3910-13579-25777, so
        // removing level 4 saves 25777/43814 = 58.8%.
        let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 1, scale: 1.0 }).unwrap();
        let cs = CaseStudy::new(&t, TaxonomyKind::Amazon, CaseStudyConfig {
            sample_cap: Some(0),
            ..CaseStudyConfig::default()
        });
        let r = cs.run(&FixedAnswerModel::always_yes());
        assert_eq!(r.removed_nodes, 25777);
        assert_eq!(r.kept_nodes, 43814 - 25777);
        assert!((r.cost_saving - 0.588).abs() < 0.005, "saving {}", r.cost_saving);
    }

    #[test]
    fn always_yes_has_perfect_recall_terrible_precision() {
        let t = amazon_small();
        let cs = CaseStudy::new(&t, TaxonomyKind::Amazon, CaseStudyConfig {
            cutoff_level: 3,
            products_per_concept: 5,
            sample_cap: Some(10),
            seed: 2,
        });
        let r = cs.run(&FixedAnswerModel::always_yes());
        assert!(r.concepts_evaluated > 0);
        assert!((r.recall - 1.0).abs() < 1e-12);
        assert!(r.precision < 0.9, "precision {}", r.precision);
        assert!(r.classifications > 0);
    }

    #[test]
    fn always_idk_returns_nothing() {
        let t = amazon_small();
        let cs = CaseStudy::new(&t, TaxonomyKind::Amazon, CaseStudyConfig {
            cutoff_level: 3,
            products_per_concept: 4,
            sample_cap: Some(8),
            seed: 3,
        });
        let r = cs.run(&FixedAnswerModel::always_idk());
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.precision, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = amazon_small();
        let mk = || {
            CaseStudy::new(&t, TaxonomyKind::Amazon, CaseStudyConfig {
                cutoff_level: 3,
                products_per_concept: 4,
                sample_cap: Some(8),
                seed: 4,
            })
            .run(&FixedAnswerModel::always_yes())
        };
        assert_eq!(mk(), mk());
    }
}
