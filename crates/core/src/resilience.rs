//! Retry, backoff and circuit breaking for fallible model calls.
//!
//! The paper's eighteen models sat behind real APIs and a local GPU
//! farm; calls there time out, get throttled, arrive truncated or not
//! at all. This module turns those failures into *measured* outcomes
//! instead of crashes:
//!
//! * [`ResiliencePolicy`] — bounded retry with exponential backoff +
//!   deterministic jitter on a **virtual clock** (simulated seconds; no
//!   wall time, no sleeping), plus an optional per-model circuit
//!   breaker (closed → open → half-open).
//! * [`ResilienceSession`] — the mutable state executing one policy
//!   over a run of questions. The evaluator creates a fresh session per
//!   question run (grid chunk), so breaker state is a function of the
//!   chunk's question sequence alone — never of worker count or
//!   scheduling order, which preserves the byte-identical-reports
//!   guarantee.
//! * [`Resilient<M>`] — the same machinery as a [`LanguageModel`]
//!   middleware for sequential use: wrap any model and call it as
//!   usual.
//!
//! Queries that exhaust their retries surface as
//! [`crate::metrics::Outcome::Failed`] and lower the report's
//! availability column; they are never silently scored as wrong.
//!
//! Determinism: backoff jitter is drawn from
//! `(policy seed, question id, retry ordinal)` and fault streams (see
//! `llm::faults`) key on question identity plus [`Query::attempt`] —
//! both independent of thread count, chunk scheduling and wall clock.

use crate::model::{LanguageModel, ModelError, Query, Response};
use std::sync::Mutex;
use taxoglimpse_synth::rng::mix64;

/// Exponential backoff with deterministic jitter, in simulated seconds.
///
/// Retry `k` (1-based) waits `base_s * multiplier^(k-1)` clamped to
/// `max_s`, then scaled by `1 + jitter * (u - 0.5)` where `u ∈ [0, 1)`
/// is drawn deterministically per (question, retry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First-retry wait in simulated seconds.
    pub base_s: f64,
    /// Multiplicative growth per further retry.
    pub multiplier: f64,
    /// Upper clamp on the un-jittered wait.
    pub max_s: f64,
    /// Jitter width as a fraction of the wait (0 = none, 0.5 = ±25%).
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_s: 0.5, multiplier: 2.0, max_s: 30.0, jitter: 0.25 }
    }
}

impl BackoffPolicy {
    /// Override the first-retry wait.
    pub fn with_base_s(mut self, base_s: f64) -> Self {
        self.base_s = base_s.max(0.0);
        self
    }

    /// Override the growth factor (clamped to ≥ 1).
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier.max(1.0);
        self
    }

    /// Override the wait clamp.
    pub fn with_max_s(mut self, max_s: f64) -> Self {
        self.max_s = max_s.max(0.0);
        self
    }

    /// Override the jitter width (clamped to [0, 1]).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The un-jittered wait before retry `k` (1-based).
    pub fn raw_wait_s(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(63);
        (self.base_s * self.multiplier.powi(exp as i32)).min(self.max_s)
    }
}

/// Circuit-breaker thresholds. The breaker protects a dying backend
/// from retry storms: after `failure_threshold` consecutive exhausted
/// queries it *opens* and fails fast for `cooldown_s` simulated
/// seconds, then *half-opens* to probe with single attempts until one
/// succeeds (→ closed) or fails (→ open again).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive exhausted queries that trip the breaker.
    pub failure_threshold: u32,
    /// Simulated seconds the breaker stays open before probing.
    pub cooldown_s: f64,
    /// Simulated seconds a fast-failed (rejected) query costs — this is
    /// what moves the virtual clock toward the cooldown deadline.
    pub fast_fail_s: f64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { failure_threshold: 5, cooldown_s: 30.0, fast_fail_s: 0.05 }
    }
}

impl BreakerPolicy {
    /// Override the consecutive-failure trip threshold (clamped ≥ 1).
    pub fn with_failure_threshold(mut self, failure_threshold: u32) -> Self {
        self.failure_threshold = failure_threshold.max(1);
        self
    }

    /// Override the open-state cooldown.
    pub fn with_cooldown_s(mut self, cooldown_s: f64) -> Self {
        self.cooldown_s = cooldown_s.max(0.0);
        self
    }

    /// Override the fast-fail cost.
    pub fn with_fast_fail_s(mut self, fast_fail_s: f64) -> Self {
        self.fast_fail_s = fast_fail_s.max(0.0);
        self
    }
}

/// The complete resilience configuration: retry budget, backoff shape,
/// optional breaker, and the jitter seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Maximum deliveries per query (1 = no retries).
    pub max_attempts: u32,
    /// Backoff shape between retries.
    pub backoff: BackoffPolicy,
    /// Circuit breaker; `None` disables it.
    pub breaker: Option<BreakerPolicy>,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            breaker: Some(BreakerPolicy::default()),
            seed: 0xFA17,
        }
    }
}

impl ResiliencePolicy {
    /// Override the delivery budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Override the backoff shape.
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Enable/replace the circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Disable the circuit breaker.
    pub fn without_breaker(mut self) -> Self {
        self.breaker = None;
        self
    }

    /// Override the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Circuit-breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; queries flow with the full retry budget.
    Closed,
    /// Failing fast; queries are rejected until the cooldown elapses.
    Open,
    /// Probing with single-delivery queries after a cooldown.
    HalfOpen,
}

/// Counters a session accumulates (never serialized into reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Queries submitted to the session.
    pub queries: u64,
    /// Deliveries actually sent to the model (includes retries).
    pub deliveries: u64,
    /// Retries among those deliveries.
    pub retries: u64,
    /// Queries that ended in failure (exhausted, non-retryable, or
    /// rejected by the open breaker).
    pub failed: u64,
    /// Failures rejected by the open breaker without touching the model.
    pub fast_failed: u64,
}

impl ResilienceStats {
    /// Deliveries per query: 1.0 means no retries were ever needed.
    pub fn amplification(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.deliveries as f64 / self.queries as f64
        }
    }
}

/// Stats aggregate field-wise, so per-lane/per-tenant/per-shard
/// sessions roll up without hand-summing counters (same contract as
/// `CacheStats`).
impl std::ops::AddAssign for ResilienceStats {
    fn add_assign(&mut self, rhs: ResilienceStats) {
        self.queries += rhs.queries;
        self.deliveries += rhs.deliveries;
        self.retries += rhs.retries;
        self.failed += rhs.failed;
        self.fast_failed += rhs.fast_failed;
    }
}

impl std::iter::Sum for ResilienceStats {
    fn sum<I: Iterator<Item = ResilienceStats>>(iter: I) -> ResilienceStats {
        let mut total = ResilienceStats::default();
        for stats in iter {
            total += stats;
        }
        total
    }
}

/// Mutable execution state for one policy over one run of questions.
///
/// Deliberately *not* shared across grid chunks: a fresh session per
/// chunk makes breaker/clock state a pure function of the chunk's
/// question sequence, which is what keeps parallel reports
/// byte-identical across worker counts.
#[derive(Debug)]
pub struct ResilienceSession {
    policy: ResiliencePolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_s: f64,
    clock_s: f64,
    stats: ResilienceStats,
}

impl ResilienceSession {
    /// A fresh session (breaker closed, clock at zero).
    pub fn new(policy: ResiliencePolicy) -> Self {
        ResilienceSession {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_s: 0.0,
            clock_s: 0.0,
            stats: ResilienceStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ResiliencePolicy {
        self.policy
    }

    /// Current breaker position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Simulated seconds elapsed (latency + backoff + fast-fails).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Counters so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Submit one query: retry with backoff within the budget, honor
    /// the breaker, and return either the (metadata-stamped) response
    /// or the final error once the query is given up on.
    pub fn call(
        &mut self,
        model: &dyn LanguageModel,
        query: &Query<'_>,
    ) -> Result<Response, ModelError> {
        self.call_impl(model, query, None)
    }

    /// [`Self::call`] with the attempt-0 delivery already performed.
    ///
    /// This is the batching hook: the evaluator prefetches a chunk's
    /// first deliveries through [`LanguageModel::answer_batch`], then
    /// replays them through the session in order. Because model answers
    /// are pure functions of the query (the determinism contract), the
    /// prefetched result is byte-for-byte what `call` would have
    /// obtained on its own attempt 0, so breaker state, backoff waits,
    /// retries and the virtual clock evolve identically. The one
    /// divergence is deliberate: when the breaker fast-fails, the
    /// prefetched delivery is discarded *after having been produced*,
    /// so base-model usage counters (never reports) can exceed the
    /// sequential path's.
    pub fn call_prefetched(
        &mut self,
        model: &dyn LanguageModel,
        query: &Query<'_>,
        first: Result<Response, ModelError>,
    ) -> Result<Response, ModelError> {
        self.call_impl(model, query, Some(first))
    }

    fn call_impl(
        &mut self,
        model: &dyn LanguageModel,
        query: &Query<'_>,
        mut first: Option<Result<Response, ModelError>>,
    ) -> Result<Response, ModelError> {
        self.stats.queries += 1;

        let mut probing = false;
        if let Some(breaker) = self.policy.breaker {
            match self.state {
                BreakerState::Open => {
                    if self.clock_s < self.open_until_s {
                        self.clock_s += breaker.fast_fail_s;
                        self.stats.failed += 1;
                        self.stats.fast_failed += 1;
                        self.consecutive_failures += 1;
                        return Err(ModelError::Unavailable);
                    }
                    self.state = BreakerState::HalfOpen;
                    probing = true;
                }
                BreakerState::HalfOpen => probing = true,
                BreakerState::Closed => {}
            }
        }

        // A half-open probe gets a single delivery: the point is to
        // test the backend, not to hammer it with a full retry budget.
        let budget = if probing { 1 } else { self.policy.max_attempts };
        let mut attempt = 0u32;
        let result = loop {
            self.stats.deliveries += 1;
            let delivered = match first.take() {
                Some(prefetched) if attempt == 0 => prefetched,
                _ => model.answer(&query.with_attempt(attempt)),
            };
            match delivered {
                Ok(mut response) => {
                    self.clock_s += response.latency_s.max(0.0);
                    response.attempts = attempt + 1;
                    break Ok(response);
                }
                Err(error) => {
                    attempt += 1;
                    if attempt >= budget || !error.is_retryable() {
                        break Err(error);
                    }
                    self.stats.retries += 1;
                    self.clock_s += self.backoff_wait_s(query.question.id, attempt, &error);
                }
            }
        };

        match &result {
            Ok(_) => {
                self.consecutive_failures = 0;
                self.state = BreakerState::Closed;
            }
            Err(_) => {
                self.stats.failed += 1;
                self.consecutive_failures += 1;
                if let Some(breaker) = self.policy.breaker {
                    // A failed probe re-opens immediately; in closed
                    // state the consecutive-failure threshold decides.
                    if probing || self.consecutive_failures >= breaker.failure_threshold {
                        self.state = BreakerState::Open;
                        self.open_until_s = self.clock_s + breaker.cooldown_s;
                    }
                }
            }
        }
        result
    }

    /// Jittered wait before retry `retry` (1-based) of `question_id`,
    /// honoring a server-provided `retry_after_s` as a floor. Keyed by
    /// question identity — never by worker or wall clock.
    fn backoff_wait_s(&self, question_id: u64, retry: u32, error: &ModelError) -> f64 {
        let raw = self.policy.backoff.raw_wait_s(retry);
        let h = mix64(
            self.policy.seed
                ^ question_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(retry) << 56),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = raw * (1.0 + self.policy.backoff.jitter * (u - 0.5));
        match error {
            ModelError::RateLimited { retry_after_s } => jittered.max(*retry_after_s),
            ModelError::Timeout
            | ModelError::Truncated { .. }
            | ModelError::Unavailable
            | ModelError::Malformed => jittered,
        }
    }
}

/// Resilience as middleware: wraps any model and applies a policy to
/// every call, for sequential use (case studies, hybrid probing, CLI).
///
/// The session state lives behind a mutex, so concurrent callers would
/// observe scheduling-dependent breaker state — which is exactly why
/// [`crate::grid::GridRunner`] takes a [`ResiliencePolicy`] and builds
/// per-chunk [`ResilienceSession`]s instead of sharing one wrapper.
pub struct Resilient<M> {
    base: M,
    session: Mutex<ResilienceSession>,
}

impl<M: LanguageModel> Resilient<M> {
    /// Wrap with the default policy.
    pub fn new(base: M) -> Self {
        Self::with_policy(base, ResiliencePolicy::default())
    }

    /// Wrap with an explicit policy.
    pub fn with_policy(base: M, policy: ResiliencePolicy) -> Self {
        Resilient { base, session: Mutex::new(ResilienceSession::new(policy)) }
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Counters accumulated since construction or the last reset.
    pub fn stats(&self) -> ResilienceStats {
        self.session.lock().expect("resilience session lock not poisoned").stats()
    }

    /// Simulated seconds spent so far.
    pub fn clock_s(&self) -> f64 {
        self.session.lock().expect("resilience session lock not poisoned").clock_s()
    }
}

impl<M: LanguageModel> LanguageModel for Resilient<M> {
    /// The base model's name: at fault rate zero the wrapper is
    /// invisible, reports included.
    fn name(&self) -> &str {
        self.base.name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        // lint:allow(L002, the breaker state machine is single-session by design - serializing calls through the lock is the feature)
        self.session.lock().expect("resilience session lock not poisoned").call(&self.base, query)
    }

    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        // Prefetch attempt-0 deliveries through the base model's batch
        // path, then replay them through the session sequentially; see
        // `ResilienceSession::call_prefetched` for why this is
        // equivalent to the one-by-one path.
        let firsts = self.base.answer_batch(queries);
        // lint:allow(L002, only retry traffic runs under the lock - attempt-0 answers were prefetched above it)
        let mut session = self.session.lock().expect("resilience session lock not poisoned");
        firsts
            .into_iter()
            .zip(queries)
            .map(|(first, query)| session.call_prefetched(&self.base, query, first))
            .collect()
    }

    fn reset(&self) {
        self.base.reset();
        let mut session = self.session.lock().expect("resilience session lock not poisoned");
        *session = ResilienceSession::new(session.policy());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TaxonomyKind;
    use crate::model::FixedAnswerModel;
    use crate::prompts::PromptSetting;
    use crate::question::{Question, QuestionBody};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn question(id: u64) -> Question {
        Question {
            id,
            taxonomy: TaxonomyKind::Ebay,
            child: "a".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "b".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse { candidate: "b".into(), expected_yes: true, negative: None },
        }
    }

    /// Fails the first `fail_first` deliveries of every query, then
    /// answers. `AtomicU32` is test-only bookkeeping, not product sync.
    struct FlakyModel {
        fail_first: u32,
        calls: AtomicU32,
        error: ModelError,
    }

    impl FlakyModel {
        fn new(fail_first: u32, error: ModelError) -> Self {
            FlakyModel { fail_first, calls: AtomicU32::new(0), error }
        }
    }

    impl LanguageModel for FlakyModel {
        fn name(&self) -> &str {
            "flaky"
        }

        fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if query.attempt < self.fail_first {
                Err(self.error.clone())
            } else {
                Ok(Response::new("Yes.").with_latency(0.1))
            }
        }
    }

    #[test]
    fn retries_until_success_and_stamps_attempts() {
        let model = FlakyModel::new(2, ModelError::Timeout);
        let q = question(1);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session = ResilienceSession::new(ResiliencePolicy::default());
        let response = session.call(&model, &query).expect("third delivery succeeds");
        assert_eq!(response.attempts, 3);
        assert_eq!(session.stats().deliveries, 3);
        assert_eq!(session.stats().retries, 2);
        assert_eq!(session.stats().failed, 0);
        // Two backoff waits plus the success latency moved the clock.
        assert!(session.clock_s() > 0.1);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let model = FlakyModel::new(u32::MAX, ModelError::Unavailable);
        let q = question(2);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session =
            ResilienceSession::new(ResiliencePolicy::default().with_max_attempts(2).without_breaker());
        let err = session.call(&model, &query).expect_err("never succeeds");
        assert_eq!(err, ModelError::Unavailable);
        assert_eq!(session.stats().deliveries, 2);
        assert_eq!(session.stats().failed, 1);
    }

    #[test]
    fn malformed_is_not_retried() {
        let model = FlakyModel::new(u32::MAX, ModelError::Malformed);
        let q = question(3);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session = ResilienceSession::new(ResiliencePolicy::default().with_max_attempts(5));
        assert_eq!(session.call(&model, &query), Err(ModelError::Malformed));
        assert_eq!(session.stats().deliveries, 1, "permanent errors get no retries");
    }

    #[test]
    fn rate_limit_floor_is_honored() {
        let policy = ResiliencePolicy::default()
            .with_backoff(BackoffPolicy::default().with_base_s(0.1).with_jitter(0.0));
        let model = FlakyModel::new(1, ModelError::RateLimited { retry_after_s: 7.0 });
        let q = question(4);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session = ResilienceSession::new(policy);
        session.call(&model, &query).expect("second delivery succeeds");
        assert!(session.clock_s() >= 7.0, "clock {} must include the server floor", session.clock_s());
    }

    #[test]
    fn breaker_opens_fast_fails_then_recovers() {
        let policy = ResiliencePolicy::default()
            .with_max_attempts(1)
            .with_breaker(BreakerPolicy::default().with_failure_threshold(2).with_cooldown_s(1.0).with_fast_fail_s(0.6));
        // Fails the first delivery of every query (attempt index resets
        // per query with max_attempts 1, so every closed-state query
        // fails) — until we swap models below.
        let bad = FlakyModel::new(u32::MAX, ModelError::Timeout);
        let good = FixedAnswerModel::always_yes();
        let q = question(5);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session = ResilienceSession::new(policy);

        assert!(session.call(&bad, &query).is_err());
        assert_eq!(session.state(), BreakerState::Closed);
        assert!(session.call(&bad, &query).is_err());
        assert_eq!(session.state(), BreakerState::Open, "threshold of 2 trips the breaker");

        // While open, calls fail fast without touching the model.
        let before = bad.calls.load(Ordering::Relaxed);
        assert_eq!(session.call(&bad, &query), Err(ModelError::Unavailable));
        assert_eq!(bad.calls.load(Ordering::Relaxed), before, "fast-fail skips the model");
        assert_eq!(session.stats().fast_failed, 1);

        // Fast-fails advance the virtual clock; after the cooldown the
        // next query is a half-open probe, and a healthy backend closes
        // the breaker again.
        assert_eq!(session.call(&bad, &query), Err(ModelError::Unavailable));
        session.call(&good, &query).expect("half-open probe succeeds");
        assert_eq!(session.state(), BreakerState::Closed);
        session.call(&good, &query).expect("closed again");
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let policy = ResiliencePolicy::default()
            .with_max_attempts(3)
            .with_breaker(BreakerPolicy::default().with_failure_threshold(1).with_cooldown_s(0.0));
        let bad = FlakyModel::new(u32::MAX, ModelError::Timeout);
        let q = question(6);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let mut session = ResilienceSession::new(policy);
        assert!(session.call(&bad, &query).is_err());
        assert_eq!(session.state(), BreakerState::Open);
        // Zero cooldown: next query probes immediately — one delivery
        // only — and its failure re-opens the breaker.
        let before = bad.calls.load(Ordering::Relaxed);
        assert!(session.call(&bad, &query).is_err());
        assert_eq!(bad.calls.load(Ordering::Relaxed), before + 1, "probe gets a single delivery");
        assert_eq!(session.state(), BreakerState::Open);
    }

    #[test]
    fn backoff_shape_and_jitter_are_deterministic() {
        let backoff = BackoffPolicy::default().with_base_s(1.0).with_multiplier(2.0).with_max_s(8.0);
        assert_eq!(backoff.raw_wait_s(1), 1.0);
        assert_eq!(backoff.raw_wait_s(2), 2.0);
        assert_eq!(backoff.raw_wait_s(3), 4.0);
        assert_eq!(backoff.raw_wait_s(4), 8.0);
        assert_eq!(backoff.raw_wait_s(10), 8.0, "clamped at max_s");

        let model = FlakyModel::new(3, ModelError::Timeout);
        let q = question(7);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let clock = |seed: u64| {
            let mut s = ResilienceSession::new(
                ResiliencePolicy::default().with_max_attempts(4).with_seed(seed),
            );
            s.call(&model, &query).expect("fourth delivery succeeds");
            s.clock_s()
        };
        assert_eq!(clock(1), clock(1), "same seed, same virtual time");
        assert_ne!(clock(1), clock(2), "jitter seed matters");
    }

    #[test]
    fn resilient_wrapper_is_transparent_for_healthy_models() {
        let wrapped = Resilient::new(FixedAnswerModel::always_yes());
        let q = question(8);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        assert_eq!(wrapped.name(), "always-yes");
        let response = wrapped.answer(&query).expect("healthy model never fails");
        assert_eq!(response.text, "Yes.");
        assert_eq!(response.attempts, 1);
        assert_eq!(wrapped.stats().retries, 0);
        assert_eq!(wrapped.stats().amplification(), 1.0);
        wrapped.reset();
        assert_eq!(wrapped.stats(), ResilienceStats::default());
    }

    #[test]
    fn resilient_wrapper_retries_like_a_session() {
        let wrapped = Resilient::with_policy(
            FlakyModel::new(1, ModelError::Truncated { partial: "Ye".into() }),
            ResiliencePolicy::default(),
        );
        let q = question(9);
        let query = Query::new("p", &q, PromptSetting::ZeroShot);
        let response = wrapped.answer(&query).expect("retry recovers the truncation");
        assert_eq!(response.attempts, 2);
        assert!(wrapped.stats().amplification() > 1.0);
        assert_eq!(wrapped.base().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stats_aggregate_field_wise() {
        let a = ResilienceStats { queries: 10, deliveries: 13, retries: 3, failed: 1, fast_failed: 0 };
        let b = ResilienceStats { queries: 4, deliveries: 4, retries: 0, failed: 2, fast_failed: 2 };
        let mut merged = a;
        merged += b;
        assert_eq!(
            merged,
            ResilienceStats { queries: 14, deliveries: 17, retries: 3, failed: 3, fast_failed: 2 }
        );
        let summed: ResilienceStats = [a, b].into_iter().sum();
        assert_eq!(summed, merged);
        let empty: ResilienceStats = std::iter::empty().sum();
        assert_eq!(empty, ResilienceStats::default());
    }
}
