//! Question data model.

use crate::domain::TaxonomyKind;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// The abstain option appended to every sibling MCQ (rendered as the
/// letter after the last child option, e.g. "E) None of the above" when
/// four children are shown). Shared by the templates, the parser's
/// abstention vocabulary, and the gold-answer renderer so all three
/// stay in sync.
pub const ABSTAIN_OPTION: &str = "None of the above";

/// Which negative-sampling regime produced a negative question (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NegativeKind {
    /// Candidate parent drawn uniformly from the parent level minus the
    /// true parent.
    Easy,
    /// Candidate parent drawn from the child's *uncles* (siblings of the
    /// true parent) — surface-similar, therefore hard.
    Hard,
}

/// Coarse question family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionKind {
    /// Yes/No/I-don't-know.
    TrueFalse,
    /// Four options, one correct.
    Mcq,
}

/// The answerable payload of a question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuestionBody {
    /// "Is `<child>` a type of `<candidate>`?"
    TrueFalse {
        /// The candidate parent presented to the model.
        candidate: String,
        /// Ground truth: is the candidate the true parent?
        expected_yes: bool,
        /// `None` for positives; the sampling regime for negatives.
        negative: Option<NegativeKind>,
    },
    /// "What is the most appropriate supertype of `<child>`?" with four
    /// options.
    Mcq {
        /// The four options in presentation order.
        options: [String; 4],
        /// Index (0–3) of the correct option.
        correct: u8,
    },
    /// A constrained-descent sibling round: the options are exactly the
    /// children of one taxonomy node shown this round (1–4 of them),
    /// plus an implicit [`ABSTAIN_OPTION`] rendered as the next letter.
    /// Invalid labels are impossible by construction — every selectable
    /// option names a real child, and everything else is an abstention.
    Sibling {
        /// The child concepts shown this round, in taxonomy child order.
        options: Vec<String>,
        /// Index of the gold child among the shown options, or `None`
        /// when the gold child is not in this round (the correct
        /// response is the abstain option).
        correct: Option<u8>,
    },
}

impl QuestionBody {
    /// Which question family this body belongs to.
    pub fn kind(&self) -> QuestionKind {
        match self {
            QuestionBody::TrueFalse { .. } => QuestionKind::TrueFalse,
            QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. } => QuestionKind::Mcq,
        }
    }
}

/// One benchmark question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Unique id within its dataset (stable across runs for a fixed
    /// seed).
    pub id: u64,
    /// The taxonomy the question probes.
    pub taxonomy: TaxonomyKind,
    /// Child entity name (or instance name for instance typing).
    pub child: String,
    /// Level of the child entity (for instance typing: the level of the
    /// leaf concept the instance belongs to; instance itself is treated
    /// as one deeper).
    pub child_level: usize,
    /// Level of the candidate parent(s)/ancestor.
    pub parent_level: usize,
    /// The ground-truth parent (TF) or correct option (MCQ) — also used
    /// by simulated models for surface-similarity evidence, mirroring
    /// how a real LLM sees the true relation in its training data.
    pub true_parent: String,
    /// Whether this is an instance-typing question (§4.5) rather than a
    /// concept-level hierarchy question.
    pub instance_typing: bool,
    /// The payload.
    pub body: QuestionBody,
}

impl Question {
    /// Which question family this is.
    pub fn kind(&self) -> QuestionKind {
        self.body.kind()
    }

    /// For TF questions: the expected boolean; `None` for MCQ.
    pub fn expected_yes(&self) -> Option<bool> {
        match &self.body {
            QuestionBody::TrueFalse { expected_yes, .. } => Some(*expected_yes),
            QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. } => None,
        }
    }

    /// The candidate parent shown to the model (TF) or the correct
    /// option (MCQ).
    pub fn shown_candidate(&self) -> &str {
        match &self.body {
            QuestionBody::TrueFalse { candidate, .. } => candidate,
            QuestionBody::Mcq { options, correct } => &options[*correct as usize],
            QuestionBody::Sibling { options, correct } => match correct {
                Some(c) => &options[*c as usize],
                None => ABSTAIN_OPTION,
            },
        }
    }
}

taxoglimpse_json::unit_enum_json!(NegativeKind { Easy, Hard });

impl ToJson for QuestionBody {
    fn to_json(&self) -> Json {
        match self {
            QuestionBody::TrueFalse { candidate, expected_yes, negative } => Json::obj(vec![(
                "TrueFalse",
                Json::obj(vec![
                    ("candidate", candidate.to_json()),
                    ("expected_yes", expected_yes.to_json()),
                    ("negative", negative.to_json()),
                ]),
            )]),
            QuestionBody::Mcq { options, correct } => Json::obj(vec![(
                "Mcq",
                Json::obj(vec![("options", options.to_json()), ("correct", correct.to_json())]),
            )]),
            QuestionBody::Sibling { options, correct } => Json::obj(vec![(
                "Sibling",
                Json::obj(vec![("options", options.to_json()), ("correct", correct.to_json())]),
            )]),
        }
    }
}

impl FromJson for QuestionBody {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if let Some(body) = json.get("TrueFalse") {
            Ok(QuestionBody::TrueFalse {
                candidate: body.field_as("candidate")?,
                expected_yes: body.field_as("expected_yes")?,
                negative: body.field_as("negative")?,
            })
        } else if let Some(body) = json.get("Mcq") {
            Ok(QuestionBody::Mcq {
                options: body.field_as("options")?,
                correct: body.field_as("correct")?,
            })
        } else if let Some(body) = json.get("Sibling") {
            Ok(QuestionBody::Sibling {
                options: body.field_as("options")?,
                correct: body.field_as("correct")?,
            })
        } else {
            Err(JsonError::msg("expected a `TrueFalse`, `Mcq`, or `Sibling` variant object"))
        }
    }
}

impl ToJson for Question {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", self.id.to_json()),
            ("taxonomy", self.taxonomy.to_json()),
            ("child", self.child.to_json()),
            ("child_level", self.child_level.to_json()),
            ("parent_level", self.parent_level.to_json()),
            ("true_parent", self.true_parent.to_json()),
            ("instance_typing", self.instance_typing.to_json()),
            ("body", self.body.to_json()),
        ])
    }
}

impl FromJson for Question {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Question {
            id: json.field_as("id")?,
            taxonomy: json.field_as("taxonomy")?,
            child: json.field_as("child")?,
            child_level: json.field_as("child_level")?,
            parent_level: json.field_as("parent_level")?,
            true_parent: json.field_as("true_parent")?,
            instance_typing: json.field_as("instance_typing")?,
            body: json.field_as("body")?,
        })
    }
}

/// The gold answer to a question, used for scoring and for rendering
/// few-shot exemplars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldAnswer {
    /// TF positive.
    Yes,
    /// TF negative.
    No,
    /// MCQ: the correct option index.
    Option(u8),
    /// Sibling round where the gold child is not among the shown
    /// options: the correct response is the abstain option.
    Abstain,
}

impl Question {
    /// The gold answer.
    pub fn gold(&self) -> GoldAnswer {
        match &self.body {
            QuestionBody::TrueFalse { expected_yes: true, .. } => GoldAnswer::Yes,
            QuestionBody::TrueFalse { expected_yes: false, .. } => GoldAnswer::No,
            QuestionBody::Mcq { correct, .. } => GoldAnswer::Option(*correct),
            QuestionBody::Sibling { correct: Some(c), .. } => GoldAnswer::Option(*c),
            QuestionBody::Sibling { correct: None, .. } => GoldAnswer::Abstain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(expected: bool) -> Question {
        Question {
            id: 1,
            taxonomy: TaxonomyKind::Ebay,
            child: "Wireless Speakers".into(),
            child_level: 2,
            parent_level: 1,
            true_parent: "Audio".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: if expected { "Audio".into() } else { "Garden Tools".into() },
                expected_yes: expected,
                negative: (!expected).then_some(NegativeKind::Easy),
            },
        }
    }

    #[test]
    fn gold_answers() {
        assert_eq!(tf(true).gold(), GoldAnswer::Yes);
        assert_eq!(tf(false).gold(), GoldAnswer::No);
        let mcq = Question {
            body: QuestionBody::Mcq {
                options: ["a".into(), "b".into(), "c".into(), "d".into()],
                correct: 2,
            },
            ..tf(true)
        };
        assert_eq!(mcq.gold(), GoldAnswer::Option(2));
        assert_eq!(mcq.shown_candidate(), "c");
        assert_eq!(mcq.kind(), QuestionKind::Mcq);
        assert_eq!(mcq.expected_yes(), None);
    }

    #[test]
    fn shown_candidate_for_tf() {
        assert_eq!(tf(true).shown_candidate(), "Audio");
        assert_eq!(tf(false).shown_candidate(), "Garden Tools");
        assert_eq!(tf(true).expected_yes(), Some(true));
    }

    #[test]
    fn json_round_trip() {
        let q = tf(false);
        let json = taxoglimpse_json::to_string(&q).unwrap();
        let back: Question = taxoglimpse_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn sibling_gold_and_round_trip() {
        let hit = Question {
            body: QuestionBody::Sibling {
                options: vec!["a".into(), "b".into(), "c".into()],
                correct: Some(1),
            },
            ..tf(true)
        };
        assert_eq!(hit.gold(), GoldAnswer::Option(1));
        assert_eq!(hit.shown_candidate(), "b");
        assert_eq!(hit.kind(), QuestionKind::Mcq);
        assert_eq!(hit.expected_yes(), None);
        let miss = Question {
            body: QuestionBody::Sibling { options: vec!["a".into()], correct: None },
            ..tf(true)
        };
        assert_eq!(miss.gold(), GoldAnswer::Abstain);
        assert_eq!(miss.shown_candidate(), ABSTAIN_OPTION);
        for q in [hit, miss] {
            let json = taxoglimpse_json::to_string(&q).unwrap();
            let back: Question = taxoglimpse_json::from_str(&json).unwrap();
            assert_eq!(back, q);
        }
    }
}
