//! Detailed evaluation: per-question records, transcripts, and failure
//! analysis.
//!
//! The paper publishes its full experimental results; this module is the
//! machinery for that level of artifact. [`DetailedRun`] keeps one
//! record per question — the rendered prompt, the model's raw text, the
//! parsed answer and the outcome — supporting:
//!
//! * JSONL transcript export ([`DetailedRun::to_jsonl`]),
//! * failure breakdowns by question polarity and negative regime
//!   ([`DetailedRun::by_polarity`]), by level, and by surface
//!   similarity band ([`DetailedRun::by_similarity_band`]) — the
//!   error-analysis views behind the paper's §4 discussions.

use crate::dataset::Dataset;
use crate::eval::{score, EvalConfig};
use crate::metrics::{Metrics, Outcome};
use crate::model::{LanguageModel, Query};
use crate::parse::{parse_mcq, parse_tf, ParsedAnswer};
use crate::prompts::render_prompt;
use crate::question::{NegativeKind, Question, QuestionBody, QuestionKind};
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// One fully recorded question/answer exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Question id within its dataset.
    pub question_id: u64,
    /// Child level of the question.
    pub child_level: usize,
    /// `None` for positives/MCQ, the regime for TF negatives.
    pub negative: Option<NegativeKind>,
    /// The rendered prompt sent to the model.
    pub prompt: String,
    /// The model's raw response text.
    pub response: String,
    /// The parsed answer.
    pub parsed: ParsedAnswer,
    /// The scored outcome.
    pub outcome: Outcome,
    /// Trigram similarity between the child and the shown candidate —
    /// the surface-evidence axis of the error analysis.
    pub similarity: f64,
}

impl ToJson for Exchange {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("question_id", self.question_id.to_json()),
            ("child_level", self.child_level.to_json()),
            ("negative", self.negative.to_json()),
            ("prompt", self.prompt.to_json()),
            ("response", self.response.to_json()),
            ("parsed", self.parsed.to_json()),
            ("outcome", self.outcome.to_json()),
            ("similarity", self.similarity.to_json()),
        ])
    }
}

impl FromJson for Exchange {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Exchange {
            question_id: json.field_as("question_id")?,
            child_level: json.field_as("child_level")?,
            negative: json.field_as("negative")?,
            prompt: json.field_as("prompt")?,
            response: json.field_as("response")?,
            parsed: json.field_as("parsed")?,
            outcome: json.field_as("outcome")?,
            similarity: json.field_as("similarity")?,
        })
    }
}

/// A complete recorded run of one model over one dataset.
#[derive(Debug, Clone)]
pub struct DetailedRun {
    /// Model name.
    pub model: String,
    /// All exchanges, in dataset order.
    pub exchanges: Vec<Exchange>,
}

impl DetailedRun {
    /// Execute `model` over `dataset`, recording everything.
    pub fn record(model: &dyn LanguageModel, dataset: &Dataset, config: EvalConfig) -> Self {
        model.reset();
        let mut exchanges = Vec::with_capacity(dataset.len());
        for slice in &dataset.levels {
            for question in &slice.questions {
                let prompt = render_prompt(question, config.setting, config.variant, &slice.exemplars);
                let query = Query::new(&prompt, question, config.setting);
                // A failed delivery is recorded faithfully: the error
                // display stands in for the (absent) response text, the
                // answer is unparsed, and the outcome is Failed.
                let (response, parsed, outcome) = match model.answer(&query) {
                    Ok(ok) => {
                        let parsed = match question.kind() {
                            QuestionKind::TrueFalse => parse_tf(&ok.text),
                            QuestionKind::Mcq => parse_mcq(&ok.text),
                        };
                        (ok.text, parsed, score(question, parsed))
                    }
                    Err(error) => {
                        (format!("[{error}]"), ParsedAnswer::Unparsed, Outcome::Failed)
                    }
                };
                exchanges.push(Exchange {
                    question_id: question.id,
                    child_level: question.child_level,
                    negative: negative_of(question),
                    prompt,
                    response,
                    parsed,
                    outcome,
                    similarity: candidate_similarity(question),
                });
            }
        }
        DetailedRun { model: model.name().to_owned(), exchanges }
    }

    /// Aggregate metrics over all exchanges.
    pub fn overall(&self) -> Metrics {
        let mut m = Metrics::default();
        for e in &self.exchanges {
            m.record(e.outcome);
        }
        m
    }

    /// Metrics split by polarity: `(positives, easy negatives, hard
    /// negatives)` — the disaggregation the headline tables hide.
    pub fn by_polarity(&self) -> (Metrics, Metrics, Metrics) {
        let mut pos = Metrics::default();
        let mut easy = Metrics::default();
        let mut hard = Metrics::default();
        for e in &self.exchanges {
            match e.negative {
                None => pos.record(e.outcome),
                Some(NegativeKind::Easy) => easy.record(e.outcome),
                Some(NegativeKind::Hard) => hard.record(e.outcome),
            }
        }
        (pos, easy, hard)
    }

    /// Metrics bucketed by candidate-similarity band:
    /// `[0, 0.1), [0.1, 0.3), [0.3, 1]` → (low, mid, high).
    pub fn by_similarity_band(&self) -> (Metrics, Metrics, Metrics) {
        let mut low = Metrics::default();
        let mut mid = Metrics::default();
        let mut high = Metrics::default();
        for e in &self.exchanges {
            let bucket = if e.similarity < 0.1 {
                &mut low
            } else if e.similarity < 0.3 {
                &mut mid
            } else {
                &mut high
            };
            bucket.record(e.outcome);
        }
        (low, mid, high)
    }

    /// The exchanges the model got wrong (for qualitative inspection).
    pub fn failures(&self) -> impl Iterator<Item = &Exchange> {
        self.exchanges.iter().filter(|e| e.outcome == Outcome::Wrong)
    }

    /// Serialize as JSON Lines (one exchange per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.exchanges {
            out.push_str(&taxoglimpse_json::to_string(e).expect("exchanges serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL transcript back.
    pub fn from_jsonl(model: impl Into<String>, jsonl: &str) -> Result<Self, JsonError> {
        let exchanges = jsonl
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(taxoglimpse_json::from_str)
            .collect::<Result<Vec<Exchange>, _>>()?;
        Ok(DetailedRun { model: model.into(), exchanges })
    }
}

fn negative_of(q: &Question) -> Option<NegativeKind> {
    match &q.body {
        QuestionBody::TrueFalse { negative, .. } => *negative,
        QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. } => None,
    }
}

/// Trigram Jaccard between the child and the shown candidate (inlined
/// here so core does not depend on the llm crate).
fn candidate_similarity(q: &Question) -> f64 {
    let grams = |s: &str| -> Vec<[u8; 3]> {
        let lower: Vec<u8> = s.bytes().map(|b| b.to_ascii_lowercase()).collect();
        if lower.len() < 3 {
            return Vec::new();
        }
        let mut g: Vec<[u8; 3]> = lower.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
        g.sort_unstable();
        g.dedup();
        g
    };
    let (a, b) = (grams(&q.child), grams(q.shown_candidate()));
    if a.is_empty() || b.is_empty() {
        return if q.child.eq_ignore_ascii_case(q.shown_candidate()) { 1.0 } else { 0.0 };
    }
    let inter = a.iter().filter(|g| b.binary_search(g).is_ok()).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, QuestionDataset};
    use crate::domain::TaxonomyKind;
    use crate::eval::Evaluator;
    use crate::model::FixedAnswerModel;
    use taxoglimpse_synth::{generate, GenOptions};

    fn dataset(flavor: QuestionDataset) -> Dataset {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 80, scale: 1.0 }).unwrap();
        DatasetBuilder::new(&t, TaxonomyKind::Ebay, 80)
            .sample_cap(Some(30))
            .build(flavor)
            .unwrap()
    }

    #[test]
    fn detailed_overall_matches_evaluator() {
        let d = dataset(QuestionDataset::Hard);
        let model = FixedAnswerModel::always_yes();
        let run = DetailedRun::record(&model, &d, EvalConfig::default());
        let report = Evaluator::default().run(&model, &d);
        assert_eq!(run.overall(), report.overall);
        assert_eq!(run.exchanges.len(), d.len());
    }

    #[test]
    fn polarity_split_exposes_the_yes_bias() {
        let d = dataset(QuestionDataset::Hard);
        let run = DetailedRun::record(&FixedAnswerModel::always_yes(), &d, EvalConfig::default());
        let (pos, easy, hard) = run.by_polarity();
        assert_eq!(pos.accuracy(), 1.0, "always-yes aces positives");
        assert_eq!(hard.accuracy(), 0.0, "and bombs negatives");
        assert_eq!(easy.total(), 0, "hard dataset has no easy negatives");
        assert_eq!(pos.total() + hard.total(), d.len());
    }

    #[test]
    fn similarity_bands_partition_everything() {
        let d = dataset(QuestionDataset::Easy);
        let run = DetailedRun::record(&FixedAnswerModel::always_idk(), &d, EvalConfig::default());
        let (low, mid, high) = run.by_similarity_band();
        assert_eq!(low.total() + mid.total() + high.total(), d.len());
    }

    #[test]
    fn jsonl_round_trips() {
        let d = dataset(QuestionDataset::Mcq);
        let run = DetailedRun::record(&FixedAnswerModel::new("m", "B)"), &d, EvalConfig::default());
        let jsonl = run.to_jsonl();
        assert_eq!(jsonl.lines().count(), run.exchanges.len());
        let back = DetailedRun::from_jsonl("m", &jsonl).unwrap();
        assert_eq!(back.exchanges.len(), run.exchanges.len());
        assert_eq!(back.overall(), run.overall());
        assert!(DetailedRun::from_jsonl("m", "not json\n").is_err());
    }

    #[test]
    fn failures_iterates_only_wrong_answers() {
        let d = dataset(QuestionDataset::Hard);
        let run = DetailedRun::record(&FixedAnswerModel::always_yes(), &d, EvalConfig::default());
        let failures: Vec<_> = run.failures().collect();
        assert_eq!(failures.len(), run.overall().wrong);
        assert!(failures.iter().all(|e| e.outcome == Outcome::Wrong));
        // Every failure here is a hard negative answered Yes.
        assert!(failures.iter().all(|e| e.negative == Some(NegativeKind::Hard)));
    }

    #[test]
    fn transcripts_contain_prompts_and_responses() {
        let d = dataset(QuestionDataset::Hard);
        let run = DetailedRun::record(&FixedAnswerModel::always_yes(), &d, EvalConfig::default());
        let e = &run.exchanges[0];
        assert!(e.prompt.contains("a type of"));
        assert_eq!(e.response, "Yes.");
        assert_eq!(e.parsed, ParsedAnswer::Yes);
    }
}
