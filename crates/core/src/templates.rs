//! Question templates — the paper's Tables 2 (True/False) and 3 (MCQ),
//! plus the paraphrase variants mentioned in §2.2 ("a kind of" / "a sort
//! of" for TF; "suitable" / "proper" for MCQ).

use crate::domain::{Domain, TaxonomyKind};
use crate::question::{Question, QuestionBody, ABSTAIN_OPTION};

/// Template paraphrase variant (§2.2: results are stable under slight
/// paraphrasing; the paper reports the canonical templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemplateVariant {
    /// "a type of" / "most appropriate".
    #[default]
    Canonical,
    /// "a kind of" / "most suitable".
    ParaphraseA,
    /// "a sort of" / "most proper".
    ParaphraseB,
}

impl TemplateVariant {
    /// All three variants.
    pub const ALL: [TemplateVariant; 3] =
        [TemplateVariant::Canonical, TemplateVariant::ParaphraseA, TemplateVariant::ParaphraseB];

    fn type_of(self) -> &'static str {
        match self {
            TemplateVariant::Canonical => "a type of",
            TemplateVariant::ParaphraseA => "a kind of",
            TemplateVariant::ParaphraseB => "a sort of",
        }
    }

    fn appropriate(self) -> &'static str {
        match self {
            TemplateVariant::Canonical => "appropriate",
            TemplateVariant::ParaphraseA => "suitable",
            TemplateVariant::ParaphraseB => "proper",
        }
    }
}

/// The domain-specific noun phrase appended to entity names in the
/// templates (Table 2/3), e.g. "products" for Shopping — appended to
/// `out` so the evaluator's hot path can reuse one buffer per worker.
fn tf_phrase_into(kind: TaxonomyKind, name: &str, out: &mut String) {
    out.push_str(name);
    out.push_str(match kind.domain() {
        Domain::Shopping => " products",
        Domain::General => " entity type",
        Domain::ComputerScience => " computer science research concept",
        Domain::Geography => " geographical concept",
        Domain::Language => " language",
        Domain::Health | Domain::Biology => "",
        Domain::Medical => " Adverse Events concept",
    });
}

fn mcq_phrase_into(kind: TaxonomyKind, name: &str, out: &mut String) {
    out.push_str(name);
    out.push_str(match kind.domain() {
        Domain::Shopping => " product",
        Domain::General => " entity type",
        Domain::ComputerScience => " research concept",
        Domain::Geography => " geographical concept",
        Domain::Language => " language",
        Domain::Health | Domain::Biology => "",
        Domain::Medical => " Adverse Events concept",
    });
}

/// Append the True/False question text for `(child, candidate)` in the
/// domain phrasing of Table 2.
pub fn render_tf_into(
    kind: TaxonomyKind,
    variant: TemplateVariant,
    child: &str,
    candidate: &str,
    out: &mut String,
) {
    out.push_str(if kind.domain() == Domain::Shopping { "Are " } else { "Is " });
    tf_phrase_into(kind, child, out);
    out.push(' ');
    out.push_str(variant.type_of());
    out.push(' ');
    tf_phrase_into(kind, candidate, out);
    out.push_str("? answer with (Yes/No/I don't know)");
}

/// Render the True/False question text for `(child, candidate)` in the
/// domain phrasing of Table 2.
pub fn render_tf(kind: TaxonomyKind, variant: TemplateVariant, child: &str, candidate: &str) -> String {
    let mut out = String::new();
    render_tf_into(kind, variant, child, candidate, &mut out);
    out
}

/// Append the MCQ question text of Table 3.
pub fn render_mcq_into(
    kind: TaxonomyKind,
    variant: TemplateVariant,
    child: &str,
    options: &[String; 4],
    out: &mut String,
) {
    out.push_str("What is the most ");
    out.push_str(variant.appropriate());
    out.push_str(" supertype of ");
    mcq_phrase_into(kind, child, out);
    out.push('?');
    for (i, option) in options.iter().enumerate() {
        out.push(' ');
        out.push((b'A' + i as u8) as char);
        out.push_str(") ");
        out.push_str(option);
    }
}

/// Append a constrained-descent sibling round: the shown children as
/// lettered options, then the abstain option as the next letter — a
/// full four-child round reads "… D) <child> E) None of the above".
pub fn render_sibling_into(
    kind: TaxonomyKind,
    variant: TemplateVariant,
    child: &str,
    options: &[String],
    out: &mut String,
) {
    out.push_str("What is the most ");
    out.push_str(variant.appropriate());
    out.push_str(" supertype of ");
    mcq_phrase_into(kind, child, out);
    out.push('?');
    for (i, option) in options.iter().enumerate() {
        out.push(' ');
        out.push((b'A' + i as u8) as char);
        out.push_str(") ");
        out.push_str(option);
    }
    out.push(' ');
    out.push((b'A' + options.len() as u8) as char);
    out.push_str(") ");
    out.push_str(ABSTAIN_OPTION);
}

/// Render a constrained-descent sibling round.
pub fn render_sibling(
    kind: TaxonomyKind,
    variant: TemplateVariant,
    child: &str,
    options: &[String],
) -> String {
    let mut out = String::new();
    render_sibling_into(kind, variant, child, options, &mut out);
    out
}

/// Render the MCQ question text of Table 3.
pub fn render_mcq(
    kind: TaxonomyKind,
    variant: TemplateVariant,
    child: &str,
    options: &[String; 4],
) -> String {
    let mut out = String::new();
    render_mcq_into(kind, variant, child, options, &mut out);
    out
}

/// Append any question in its domain template.
pub fn render_question_into(q: &Question, variant: TemplateVariant, out: &mut String) {
    match &q.body {
        QuestionBody::TrueFalse { candidate, .. } => {
            render_tf_into(q.taxonomy, variant, &q.child, candidate, out)
        }
        QuestionBody::Mcq { options, .. } => {
            render_mcq_into(q.taxonomy, variant, &q.child, options, out)
        }
        QuestionBody::Sibling { options, .. } => {
            render_sibling_into(q.taxonomy, variant, &q.child, options, out)
        }
    }
}

/// Render any question in its domain template.
pub fn render_question(q: &Question, variant: TemplateVariant) -> String {
    let mut out = String::new();
    render_question_into(q, variant, &mut out);
    out
}

/// A user-supplied template pair for custom domains.
///
/// Benchmark adopters probing their own taxonomies are not limited to
/// the paper's eight domain phrasings: a `CustomTemplate` holds format
/// strings with `{child}` / `{parent}` / `{options}` placeholders and
/// renders any [`Question`] through them.
///
/// ```
/// use taxoglimpse_core::templates::CustomTemplate;
///
/// let t = CustomTemplate::new(
///     "Is the {child} department part of the {parent} division? answer with (Yes/No/I don't know)",
///     "Which division does the {child} department belong to? {options}",
/// ).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomTemplate {
    tf: String,
    mcq: String,
}

/// Errors from custom template construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// The TF template is missing `{child}` or `{parent}`.
    TfMissingPlaceholder,
    /// The MCQ template is missing `{child}` or `{options}`.
    McqMissingPlaceholder,
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::TfMissingPlaceholder => {
                write!(f, "TF template needs {{child}} and {{parent}}")
            }
            TemplateError::McqMissingPlaceholder => {
                write!(f, "MCQ template needs {{child}} and {{options}}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

impl CustomTemplate {
    /// Validate and build a template pair.
    pub fn new(tf: impl Into<String>, mcq: impl Into<String>) -> Result<Self, TemplateError> {
        let tf = tf.into();
        let mcq = mcq.into();
        if !tf.contains("{child}") || !tf.contains("{parent}") {
            return Err(TemplateError::TfMissingPlaceholder);
        }
        if !mcq.contains("{child}") || !mcq.contains("{options}") {
            return Err(TemplateError::McqMissingPlaceholder);
        }
        Ok(CustomTemplate { tf, mcq })
    }

    /// Render a question through the custom templates.
    pub fn render(&self, q: &Question) -> String {
        match &q.body {
            QuestionBody::TrueFalse { candidate, .. } => self
                .tf
                .replace("{child}", &q.child)
                .replace("{parent}", candidate),
            QuestionBody::Mcq { options, .. } => {
                let opts = format!(
                    "A) {} B) {} C) {} D) {}",
                    options[0], options[1], options[2], options[3]
                );
                self.mcq.replace("{child}", &q.child).replace("{options}", &opts)
            }
            QuestionBody::Sibling { options, .. } => {
                let mut opts = String::new();
                for (i, option) in options.iter().enumerate() {
                    if i > 0 {
                        opts.push(' ');
                    }
                    opts.push((b'A' + i as u8) as char);
                    opts.push_str(") ");
                    opts.push_str(option);
                }
                opts.push(' ');
                opts.push((b'A' + options.len() as u8) as char);
                opts.push_str(") ");
                opts.push_str(ABSTAIN_OPTION);
                self.mcq.replace("{child}", &q.child).replace("{options}", &opts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shopping_tf_matches_table_2() {
        let s = render_tf(TaxonomyKind::Ebay, TemplateVariant::Canonical, "Wireless Speakers", "Audio");
        assert_eq!(
            s,
            "Are Wireless Speakers products a type of Audio products? answer with (Yes/No/I don't know)"
        );
    }

    #[test]
    fn health_tf_is_bare() {
        let s = render_tf(TaxonomyKind::Icd10Cm, TemplateVariant::Canonical, "A15 Tuberculosis", "A15-A19 Mycobacterial diseases");
        assert_eq!(
            s,
            "Is A15 Tuberculosis a type of A15-A19 Mycobacterial diseases? answer with (Yes/No/I don't know)"
        );
    }

    #[test]
    fn biology_tf_is_bare() {
        let s = render_tf(TaxonomyKind::Ncbi, TemplateVariant::Canonical, "Verbascum chaixii", "Verbascum");
        assert!(s.starts_with("Is Verbascum chaixii a type of Verbascum?"));
    }

    #[test]
    fn language_tf_matches_example_1() {
        // The paper's running example: "Is Sinitic language a type of
        // Sino-Tibetan language?"
        let s = render_tf(TaxonomyKind::Glottolog, TemplateVariant::Canonical, "Sinitic", "Sino-Tibetan");
        assert_eq!(
            s,
            "Is Sinitic language a type of Sino-Tibetan language? answer with (Yes/No/I don't know)"
        );
    }

    #[test]
    fn medical_tf_mentions_adverse_events() {
        let s = render_tf(TaxonomyKind::Oae, TemplateVariant::Canonical, "acute cardiac lesion AE", "cardiac lesion AE");
        assert!(s.contains("Adverse Events concept"));
    }

    #[test]
    fn paraphrases_change_only_the_relation() {
        let a = render_tf(TaxonomyKind::Schema, TemplateVariant::Canonical, "Book", "CreativeWork");
        let b = render_tf(TaxonomyKind::Schema, TemplateVariant::ParaphraseA, "Book", "CreativeWork");
        let c = render_tf(TaxonomyKind::Schema, TemplateVariant::ParaphraseB, "Book", "CreativeWork");
        assert!(a.contains("a type of"));
        assert!(b.contains("a kind of"));
        assert!(c.contains("a sort of"));
        assert_eq!(a.replace("a type of", "X"), b.replace("a kind of", "X"));
    }

    #[test]
    fn mcq_lists_four_options() {
        let options = ["Audio".to_string(), "Video".into(), "Garden".into(), "Books".into()];
        let s = render_mcq(TaxonomyKind::Google, TemplateVariant::Canonical, "Wireless Speakers", &options);
        assert_eq!(
            s,
            "What is the most appropriate supertype of Wireless Speakers product? A) Audio B) Video C) Garden D) Books"
        );
        let p = render_mcq(TaxonomyKind::Google, TemplateVariant::ParaphraseA, "Wireless Speakers", &options);
        assert!(p.contains("most suitable"));
    }

    #[test]
    fn sibling_round_appends_abstain_letter() {
        let options = vec!["Audio".to_string(), "Video".into(), "Garden".into(), "Books".into()];
        let s = render_sibling(TaxonomyKind::Google, TemplateVariant::Canonical, "Wireless Speakers", &options);
        assert_eq!(
            s,
            "What is the most appropriate supertype of Wireless Speakers product? A) Audio B) Video C) Garden D) Books E) None of the above"
        );
        let short = render_sibling(TaxonomyKind::Google, TemplateVariant::Canonical, "Wireless Speakers", &options[..2].to_vec());
        assert!(short.ends_with("A) Audio B) Video C) None of the above"));
    }

    #[test]
    fn custom_templates_render_and_validate() {
        use crate::question::{NegativeKind, Question, QuestionBody};
        let t = CustomTemplate::new(
            "Does {child} report into {parent}? answer with (Yes/No/I don't know)",
            "Who does {child} report into? {options}",
        )
        .unwrap();
        let q = Question {
            id: 0,
            taxonomy: TaxonomyKind::Schema,
            child: "Payments".into(),
            child_level: 2,
            parent_level: 1,
            true_parent: "Finance".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: "Marketing".into(),
                expected_yes: false,
                negative: Some(NegativeKind::Easy),
            },
        };
        assert_eq!(
            t.render(&q),
            "Does Payments report into Marketing? answer with (Yes/No/I don't know)"
        );
        let mcq = Question {
            body: QuestionBody::Mcq {
                options: ["Finance".into(), "Marketing".into(), "Legal".into(), "Ops".into()],
                correct: 0,
            },
            ..q
        };
        assert_eq!(
            t.render(&mcq),
            "Who does Payments report into? A) Finance B) Marketing C) Legal D) Ops"
        );
        // Validation failures.
        assert_eq!(
            CustomTemplate::new("no placeholders", "Who? {options} {child}").unwrap_err(),
            TemplateError::TfMissingPlaceholder
        );
        assert_eq!(
            CustomTemplate::new("{child} {parent}", "no placeholders").unwrap_err(),
            TemplateError::McqMissingPlaceholder
        );
    }

    #[test]
    fn geography_and_cs_phrases() {
        let g = render_tf(TaxonomyKind::GeoNames, TemplateVariant::Canonical, "fjord", "H — stream, lake");
        assert!(g.contains("geographical concept"));
        let c = render_mcq(
            TaxonomyKind::AcmCcs,
            TemplateVariant::Canonical,
            "Distributed databases",
            &["a".into(), "b".into(), "c".into(), "d".into()],
        );
        assert!(c.contains("research concept"));
    }
}
