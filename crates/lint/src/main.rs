//! CLI for the in-tree linter.
//!
//! ```text
//! taxoglimpse-lint --workspace [--root DIR] [--check] [--json FILE] [--graph FILE]
//! taxoglimpse-lint --validate FILE
//! taxoglimpse-lint --explain RULE
//! taxoglimpse-lint --list-rules
//! ```
//!
//! Exit codes are stable so scripts can gate on them:
//! `0` clean (or valid), `1` findings with `--check` (or invalid with
//! `--validate`), `2` usage or I/O error (including an unknown rule id
//! passed to `--explain`).

use std::path::PathBuf;
use std::process::ExitCode;

use taxoglimpse_lint::{
    explain_rule, lint_workspace, validate_report, workspace_graph_json, RULES,
};

const USAGE: &str = "usage:\n  taxoglimpse-lint --workspace [--root DIR] [--check] [--json FILE] [--graph FILE]\n  taxoglimpse-lint --validate FILE\n  taxoglimpse-lint --explain RULE\n  taxoglimpse-lint --list-rules\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut check = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut graph_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;
    let mut explain: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--check" => check = true,
            "--list-rules" => list_rules = true,
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a directory".to_owned())?,
                );
            }
            "--json" => {
                json_out = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json needs a file path".to_owned())?,
                ));
            }
            "--graph" => {
                graph_out = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--graph needs a file path".to_owned())?,
                ));
            }
            "--validate" => {
                validate = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--validate needs a file path".to_owned())?,
                ));
            }
            "--explain" => {
                explain =
                    Some(it.next().ok_or_else(|| "--explain needs a rule id".to_owned())?.clone());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for (id, summary) in RULES {
            println!("{id}  {summary}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(rule) = explain {
        let text = explain_rule(&rule)
            .ok_or_else(|| format!("unknown rule `{rule}` (see --list-rules)"))?;
        print!("{text}");
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = validate {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = match taxoglimpse_json::from_str_value(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("invalid: {}: not JSON: {e}", path.display());
                return Ok(ExitCode::from(1));
            }
        };
        return match validate_report(&doc) {
            Ok(n) => {
                println!("valid: {} ({n} finding(s))", path.display());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("invalid: {}: {e}", path.display());
                Ok(ExitCode::from(1))
            }
        };
    }

    if !workspace {
        return Err("nothing to do: pass --workspace, --validate, or --list-rules".to_owned());
    }

    if let Some(path) = &graph_out {
        let doc = workspace_graph_json(&root).map_err(|e| e.to_string())?;
        std::fs::write(path, doc).map_err(|e| format!("{}: {e}", path.display()))?;
    }

    let report = lint_workspace(&root).map_err(|e| e.to_string())?;
    if let Some(path) = &json_out {
        let doc = report.to_json().render_pretty() + "\n";
        std::fs::write(path, doc).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    print!("{}", report.render_table());

    if check && !report.findings.is_empty() {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}
