//! A real Rust source tokenizer.
//!
//! The rules in this crate must never fire on a `HashMap` spelled
//! inside a string literal or an `unwrap()` mentioned in a doc comment,
//! so the source is lexed properly instead of grepped: line and
//! (nested) block comments, plain and raw strings with arbitrary `#`
//! fences, byte strings, char literals vs lifetimes, numbers with
//! prefixes/suffixes, identifiers (including raw `r#ident`), and the
//! compound punctuation the rule engine cares about (`::`, `=>`, `->`).
//!
//! The lexer is intentionally lossy where the rules do not look:
//! it does not distinguish keywords from identifiers and collapses all
//! remaining punctuation to single characters. It never fails — any
//! byte it cannot classify becomes a one-byte punct token — so a
//! half-edited file still lints instead of aborting the whole run.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `match`, `unsafe`, `_`).
    Ident,
    /// Punctuation; compound `::`, `=>`, `->` are single tokens.
    Punct,
    /// String literal of any flavor (plain, raw, byte, C).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (any base, with suffix).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One code token (comments are reported separately).
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// Raw source text of the token (quotes/fences included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (multi-line strings).
    pub end_line: u32,
}

/// One comment (line, doc, or block), kept out of the token stream so
/// rules can use comments for `lint:allow` and justification checks
/// without ever matching their contents as code.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//`/`/*` markers.
    pub text: String,
    /// 1-based start line.
    pub line: u32,
    /// 1-based end line (block comments).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `source` into tokens and comments. Infallible by design.
pub fn lex(source: &str) -> Lexed {
    let mut c = Cursor { bytes: source.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => line_comment(&mut c, &mut out),
            b'/' if c.peek_at(1) == Some(b'*') => block_comment(&mut c, &mut out),
            b'"' => string_literal(&mut c, &mut out, 0),
            b'\'' => char_or_lifetime(&mut c, &mut out),
            _ if b.is_ascii_digit() => number(&mut c, &mut out),
            _ if is_ident_start(b) => ident_or_prefixed_literal(&mut c, &mut out),
            _ => punct(&mut c, &mut out),
        }
    }
    out
}

fn line_comment(c: &mut Cursor<'_>, out: &mut Lexed) {
    let start = c.pos;
    let line = c.line;
    while let Some(b) = c.peek() {
        if b == b'\n' {
            break;
        }
        c.bump();
    }
    out.comments.push(Comment {
        text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
        line,
        end_line: line,
    });
}

fn block_comment(c: &mut Cursor<'_>, out: &mut Lexed) {
    let start = c.pos;
    let line = c.line;
    c.bump(); // '/'
    c.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (c.peek(), c.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                c.bump();
                c.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                c.bump();
                c.bump();
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break, // unterminated: swallow to EOF
        }
    }
    out.comments.push(Comment {
        text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
        line,
        end_line: c.line,
    });
}

/// A plain (escaped) string literal; `fence` is the number of leading
/// `#` characters for raw strings (0 = escape processing active).
fn string_literal(c: &mut Cursor<'_>, out: &mut Lexed, fence: usize) {
    let start = c.pos;
    let line = c.line;
    c.bump(); // opening quote
    loop {
        match c.peek() {
            None => break, // unterminated
            Some(b'\\') if fence == 0 => {
                c.bump();
                c.bump(); // whatever is escaped, incl. \" and \\
            }
            Some(b'"') => {
                c.bump();
                if fence == 0 {
                    break;
                }
                // Raw string: only a quote followed by `fence` hashes ends it.
                let mut hashes = 0usize;
                while hashes < fence && c.peek() == Some(b'#') {
                    c.bump();
                    hashes += 1;
                }
                if hashes == fence {
                    break;
                }
            }
            Some(_) => {
                c.bump();
            }
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
        line,
        end_line: c.line,
    });
}

/// Disambiguate `'a'` / `'\n'` (char) from `'a` / `'static` (lifetime).
fn char_or_lifetime(c: &mut Cursor<'_>, out: &mut Lexed) {
    let start = c.pos;
    let line = c.line;
    let next = c.peek_at(1);
    let is_char = match next {
        Some(b'\\') => true,
        Some(b) if is_ident_continue(b) => c.peek_at(2) == Some(b'\''),
        Some(_) => true, // '"' ')' etc. — punctuation char literal
        None => false,
    };
    c.bump(); // the quote
    if is_char {
        match c.peek() {
            Some(b'\\') => {
                c.bump();
                c.bump(); // escaped char, incl. \' and \\
                // \u{...} spans to the closing brace
                while c.peek().is_some() && c.peek() != Some(b'\'') {
                    c.bump();
                }
            }
            _ => {
                c.bump();
            }
        }
        if c.peek() == Some(b'\'') {
            c.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Char,
            text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
            line,
            end_line: c.line,
        });
    } else {
        while matches!(c.peek(), Some(b) if is_ident_continue(b)) {
            c.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
            line,
            end_line: c.line,
        });
    }
}

fn number(c: &mut Cursor<'_>, out: &mut Lexed) {
    let start = c.pos;
    let line = c.line;
    let radix_prefixed = c.peek() == Some(b'0')
        && matches!(c.peek_at(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
    let mut prev = 0u8;
    loop {
        match c.peek() {
            Some(b) if is_ident_continue(b) => {
                prev = b;
                c.bump();
            }
            // Fractional part: a dot followed by a digit (so `1.max(2)`
            // keeps its method call).
            Some(b'.') if matches!(c.peek_at(1), Some(d) if d.is_ascii_digit()) => {
                prev = b'.';
                c.bump();
            }
            // Exponent sign, only in decimal literals.
            Some(b'+' | b'-')
                if !radix_prefixed
                    && matches!(prev, b'e' | b'E')
                    && matches!(c.peek_at(1), Some(d) if d.is_ascii_digit()) =>
            {
                prev = b'+';
                c.bump();
            }
            _ => break,
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Num,
        text: String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned(),
        line,
        end_line: line,
    });
}

/// An identifier — or, when the identifier is a literal prefix (`r`,
/// `b`, `br`, `c`, `cr`) directly followed by a quote or raw fence, the
/// prefixed literal it introduces.
fn ident_or_prefixed_literal(c: &mut Cursor<'_>, out: &mut Lexed) {
    let start = c.pos;
    let line = c.line;
    while matches!(c.peek(), Some(b) if is_ident_continue(b)) {
        c.bump();
    }
    let ident = String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned();

    let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
    let quote_capable = raw_capable || matches!(ident.as_str(), "b" | "c");

    // `b'x'` — byte char literal.
    if ident == "b" && c.peek() == Some(b'\'') {
        // Rewind bookkeeping is unnecessary: delegate to the char lexer
        // and extend its token text to include the prefix.
        let before = out.tokens.len();
        char_or_lifetime(c, out);
        if let Some(tok) = out.tokens.get_mut(before) {
            tok.text.insert(0, 'b');
            tok.kind = TokenKind::Char;
            tok.line = line;
        }
        return;
    }

    // `r"…"`, `b"…"`, `c"…"` — prefixed plain-or-raw string.
    if quote_capable && c.peek() == Some(b'"') {
        let before = out.tokens.len();
        string_literal(c, out, 0);
        if let Some(tok) = out.tokens.get_mut(before) {
            tok.text.insert_str(0, &ident);
            tok.line = line;
        }
        return;
    }

    // `r#"…"#` (any fence width) — or the raw identifier `r#ident`.
    if raw_capable && c.peek() == Some(b'#') {
        let mut fence = 0usize;
        while c.peek_at(fence) == Some(b'#') {
            fence += 1;
        }
        if c.peek_at(fence) == Some(b'"') {
            for _ in 0..fence {
                c.bump();
            }
            let before = out.tokens.len();
            string_literal(c, out, fence);
            if let Some(tok) = out.tokens.get_mut(before) {
                tok.text.insert_str(0, &"#".repeat(fence));
                tok.text.insert_str(0, &ident);
                tok.line = line;
            }
            return;
        }
        if ident == "r" && matches!(c.peek_at(1), Some(b) if is_ident_start(b)) {
            // Raw identifier `r#match`: consume `#` + ident.
            c.bump();
            let id_start = c.pos;
            while matches!(c.peek(), Some(b) if is_ident_continue(b)) {
                c.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&c.bytes[id_start..c.pos]).into_owned(),
                line,
                end_line: line,
            });
            return;
        }
    }

    out.tokens.push(Token { kind: TokenKind::Ident, text: ident, line, end_line: line });
}

fn punct(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let b = match c.bump() {
        Some(b) => b,
        None => return,
    };
    let compound = match (b, c.peek()) {
        (b':', Some(b':')) => Some("::"),
        (b'=', Some(b'>')) => Some("=>"),
        (b'-', Some(b'>')) => Some("->"),
        _ => None,
    };
    let text = match compound {
        Some(s) => {
            c.bump();
            s.to_owned()
        }
        None => (b as char).to_string(),
    };
    out.tokens.push(Token { kind: TokenKind::Punct, text, line, end_line: line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block */
            let b = r#"raw HashMap "quoted" inside"#;
        "##;
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"), "{:?}", lexed.tokens);
        assert_eq!(lexed.comments.len(), 2);
        let strs: Vec<&Token> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.starts_with("r#\""));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        // The '"' char literal must not start a string that swallows the
        // rest of the file.
        let src = "let q = '\"'; let x = unwrap_me();";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'\"'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap_me"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Char));
    }

    #[test]
    fn escaped_chars_and_byte_literals() {
        let toks = kinds(r"let a = '\''; let b = b'\n'; let c = '\u{41}';");
        let chars: Vec<&String> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t).collect();
        assert_eq!(chars.len(), 3, "{toks:?}");
        assert_eq!(chars[1], "b'\\n'");
    }

    #[test]
    fn compound_punct_is_single_tokens() {
        let toks = kinds("a::b => c -> d >= e");
        let puncts: Vec<&String> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t).collect();
        assert_eq!(puncts, ["::", "=>", "->", ">", "="]);
    }

    #[test]
    fn numbers_with_prefixes_and_methods() {
        let toks = kinds("0x5EED 1.5e-3 1.max(2) 42u64 1_000");
        let nums: Vec<&String> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, t)| t).collect();
        assert_eq!(nums, ["0x5EED", "1.5e-3", "1", "2", "42u64", "1_000"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "match"));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .map(|t| (t.line, t.end_line));
        assert_eq!(s, Some((1, 2)));
        let b = lexed.tokens.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!(b, Some(3));
    }

    #[test]
    fn unterminated_input_does_not_loop() {
        for src in ["\"open", "/* open", "'", "r#\"open"] {
            let _ = lex(src); // must terminate
        }
    }
}
