//! The rule engine: D001/D002/D003/C001/M001 over a lexed file, plus
//! the U001 meta-rule for unused or malformed suppressions.
//!
//! Every matcher works on the token stream, never the raw text, so a
//! trigger word inside a string literal or comment can never fire.

use std::collections::BTreeSet;

use crate::context::{AllowLedger, SourceFile};
use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};

/// Files whose `match` expressions score or parse model output; M001
/// keeps their arms exhaustive over project enums.
pub const M001_PATHS: &[&str] = &[
    "crates/core/src/eval.rs",
    "crates/core/src/parse.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/casestudy.rs",
    "crates/core/src/hybrid.rs",
    "crates/core/src/hier.rs",
    "crates/core/src/workload.rs",
    "crates/core/src/resilience.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/serve/mod.rs",
    "crates/core/src/serve/admission.rs",
    "crates/core/src/serve/batcher.rs",
    "crates/core/src/serve/sim.rs",
    "crates/core/src/serve/traffic.rs",
    "crates/llm/src/faults.rs",
];

/// Minimum `expect("…")` message length D003 accepts as "carrying
/// context"; anything shorter reads as a bare assertion.
const MIN_EXPECT_CONTEXT: usize = 10;

/// Collect the names of enums declared in `file` (for M001's notion of
/// a "project enum").
pub fn collect_enums(file: &SourceFile, into: &mut BTreeSet<String>) {
    let toks = &file.lexed.tokens;
    for w in toks.windows(2) {
        if w[0].kind == TokenKind::Ident
            && w[0].text == "enum"
            && w[1].kind == TokenKind::Ident
        {
            into.insert(w[1].text.clone());
        }
    }
}

/// Run every rule over `file`, appending unsuppressed findings.
pub fn run_rules(
    file: &SourceFile,
    enums: &BTreeSet<String>,
    ledger: &mut AllowLedger,
    findings: &mut Vec<Finding>,
) {
    let is_bench = file.rel_path.starts_with("crates/bench/");
    let is_bin = file.rel_path.contains("/src/bin/") || file.rel_path.ends_with("src/main.rs");

    let mut emit = |rule: &'static str, line: u32, message: String| {
        if file.in_test(line) || ledger.try_suppress(&file.rel_path, rule, line) {
            return;
        }
        findings.push(Finding {
            file: file.rel_path.clone(),
            line,
            rule,
            message,
            snippet: file.snippet(line),
            pass: "token",
            chain: Vec::new(),
        });
    };

    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // D001 — unordered containers anywhere in non-test code.
            // The workspace's serialized artifacts are digested byte-
            // for-byte, so ordered containers are the default and every
            // deliberate HashMap needs a lint:allow with its reason.
            "HashMap" | "HashSet" => {
                emit(
                    "D001",
                    t.line,
                    format!(
                        "`{}` in deterministic code — use BTree{} (or suppress with a reason if it provably never reaches serialized output)",
                        t.text,
                        if t.text == "HashMap" { "Map" } else { "Set" },
                    ),
                );
            }
            // D002 — wall-clock / entropy sources outside crates/bench.
            "SystemTime" | "Instant" if !is_bench => {
                if path_call(toks, i, "now") {
                    emit(
                        "D002",
                        t.line,
                        format!("`{}::now` outside crates/bench breaks replayability", t.text),
                    );
                }
            }
            "RandomState" if !is_bench => {
                emit(
                    "D002",
                    t.line,
                    "`RandomState` introduces per-process hash entropy".to_owned(),
                );
            }
            // D003 — bare unwrap / context-free expect in library code.
            "unwrap" if !is_bin => {
                if method_call(toks, i) && next_is(toks, i + 1, "(") && next_is(toks, i + 2, ")")
                {
                    emit(
                        "D003",
                        t.line,
                        "`.unwrap()` in library code — return a typed error or use `.expect(\"<context>\")`"
                            .to_owned(),
                    );
                }
            }
            "expect" if !is_bin => {
                if method_call(toks, i) && next_is(toks, i + 1, "(") {
                    let msg_ok = toks.get(i + 2).is_some_and(|arg| {
                        arg.kind == TokenKind::Str
                            && str_content_len(&arg.text) >= MIN_EXPECT_CONTEXT
                    });
                    if !msg_ok {
                        emit(
                            "D003",
                            t.line,
                            format!(
                                "`.expect(…)` without a context-carrying message (need a string literal of ≥ {MIN_EXPECT_CONTEXT} chars)"
                            ),
                        );
                    }
                }
            }
            // C001 — atomics / unsafe / static mut need adjacent
            // justification comments.
            "Ordering" => {
                const MEMORY_ORDERINGS: [&str; 5] =
                    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
                let variant = toks
                    .get(i + 1)
                    .filter(|t| t.text == "::")
                    .and_then(|_| toks.get(i + 2))
                    .filter(|v| MEMORY_ORDERINGS.contains(&v.text.as_str()));
                if let Some(v) = variant {
                    if !justified(file, t.line) {
                        emit(
                            "C001",
                            t.line,
                            format!(
                                "`Ordering::{}` without an adjacent justification comment",
                                v.text
                            ),
                        );
                    }
                }
            }
            "unsafe" => {
                if !justified(file, t.line) {
                    emit(
                        "C001",
                        t.line,
                        "`unsafe` without an adjacent justification comment".to_owned(),
                    );
                }
            }
            "static" => {
                if toks.get(i + 1).is_some_and(|n| n.text == "mut") && !justified(file, t.line) {
                    emit(
                        "C001",
                        t.line,
                        "`static mut` without an adjacent justification comment".to_owned(),
                    );
                }
            }
            // M001 — bare `_` arms over project enums in scoring/parse
            // matches.
            "match" if M001_PATHS.contains(&file.rel_path.as_str()) => {
                for (line, enum_name) in wildcard_arms_over_enums(toks, i, enums) {
                    emit(
                        "M001",
                        line,
                        format!(
                            "bare `_` arm in a match over project enum `{enum_name}` — spell the variants out so new ones must be scored deliberately"
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // U001 — malformed lint:allow comments.
    for (line, detail) in &file.malformed_allows {
        findings.push(Finding {
            file: file.rel_path.clone(),
            line: *line,
            rule: "U001",
            message: format!("malformed lint:allow annotation: {detail}"),
            snippet: file.snippet(*line),
            pass: "meta",
            chain: Vec::new(),
        });
    }
}

/// Enum names whose appearance in a match *pattern* marks a file as
/// scoring/parse logic that must be listed in [`M001_PATHS`]. `Metrics`
/// is currently a struct, so the entry is future-proofing; `Outcome` is
/// the live scoring enum.
const S001_SCORING_ENUMS: &[&str] = &["Outcome", "Metrics"];

/// S001 — the linter's own registries must track the workspace. Armed
/// only on full-workspace scans (marker: the core crate root is in the
/// scanned set), so fixture and unit scans are unaffected. Two checks:
/// every path in [`M001_PATHS`] and the D101 root set exists on disk,
/// and every core file that matches over a scoring enum is listed in
/// [`M001_PATHS`]. Not suppressible: a stale registry silently turns
/// other rules off, which is exactly the drift this rule exists to
/// catch.
pub fn self_check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    if !files.iter().any(|f| f.rel_path == "crates/core/src/lib.rs") {
        return;
    }
    let scanned: BTreeSet<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();

    let listed = M001_PATHS
        .iter()
        .map(|p| ("M001_PATHS", *p))
        .chain(crate::passes::D101_ROOT_FILES.iter().map(|p| ("the D101 root set", *p)));
    for (registry, path) in listed {
        if !scanned.contains(path) {
            findings.push(Finding {
                file: path.to_owned(),
                line: 1,
                rule: "S001",
                message: format!(
                    "stale lint registry: `{path}` is listed in {registry} but no longer \
                     exists in the workspace"
                ),
                snippet: String::new(),
                pass: "selfcheck",
                chain: Vec::new(),
            });
        }
    }

    for file in files {
        if !file.rel_path.starts_with("crates/core/src/")
            || M001_PATHS.contains(&file.rel_path.as_str())
        {
            continue;
        }
        let toks = &file.lexed.tokens;
        'file: for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "match" || file.in_test(t.line) {
                continue;
            }
            for arm in match_arms(toks, i) {
                for w in arm.windows(2) {
                    if w[0].kind == TokenKind::Ident
                        && w[1].text == "::"
                        && S001_SCORING_ENUMS.contains(&w[0].text.as_str())
                    {
                        findings.push(Finding {
                            file: file.rel_path.clone(),
                            line: t.line,
                            rule: "S001",
                            message: format!(
                                "this file matches over scoring enum `{}` but is not listed \
                                 in M001_PATHS — add it so M001 guards its arms",
                                w[0].text
                            ),
                            snippet: file.snippet(t.line),
                            pass: "selfcheck",
                            chain: Vec::new(),
                        });
                        break 'file; // one finding per file is enough
                    }
                }
            }
        }
    }
}

/// After all files ran, turn allows that never fired into U001.
pub fn unused_allow_findings(ledger: &AllowLedger, findings: &mut Vec<Finding>) {
    for (file, comment_line, rule) in ledger.unused() {
        findings.push(Finding {
            file: file.to_owned(),
            line: comment_line,
            rule: "U001",
            message: format!(
                "unused suppression: lint:allow({rule}) matched no finding — remove it"
            ),
            snippet: String::new(),
            pass: "meta",
            chain: Vec::new(),
        });
    }
}

/// `true` iff the token before `i` is the method-call dot (so a free fn
/// or a definition named `unwrap`/`expect` is not flagged).
fn method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].kind == TokenKind::Punct && toks[i - 1].text == "."
}

/// `true` iff tokens at `i` start `<ident> :: <name>`.
fn path_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.text == "::")
        && toks.get(i + 2).is_some_and(|t| t.text == name)
}

fn next_is(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// Character count of a string literal's content (quotes, raw fences,
/// and prefixes stripped).
fn str_content_len(text: &str) -> usize {
    let Some(open) = text.find('"') else { return 0 };
    let Some(close) = text.rfind('"') else { return 0 };
    if close <= open {
        return 0;
    }
    let inner = &text[open + 1..close];
    // Trim the raw-string closing fence if present (`"..."##` shapes
    // never reach here: rfind already points at the last quote).
    inner.chars().count()
}

/// C001's justification test: a comment on the same line, or an
/// own-line comment immediately above.
fn justified(file: &SourceFile, line: u32) -> bool {
    if file.has_comment_on(line) {
        return true;
    }
    line > 1 && file.has_comment_on(line - 1) && !file.has_code_on(line - 1)
}

/// For the `match` keyword at `match_idx`, return `(line, enum_name)`
/// for every bare `_` arm, when at least one sibling arm mentions a
/// project enum by path.
fn wildcard_arms_over_enums(
    toks: &[Token],
    match_idx: usize,
    enums: &BTreeSet<String>,
) -> Vec<(u32, String)> {
    let arms = match_arms(toks, match_idx);

    // Which enum (if any) do the sibling arms mention by path?
    let mut enum_name = None;
    for arm in &arms {
        for w in arm.windows(2) {
            if w[0].kind == TokenKind::Ident && w[1].text == "::" && enums.contains(&w[0].text)
            {
                enum_name = Some(w[0].text.clone());
            }
        }
    }
    let Some(enum_name) = enum_name else { return Vec::new() };

    arms.iter()
        .filter(|arm| arm.len() == 1 && arm[0].text == "_")
        .map(|arm| (arm[0].line, enum_name.clone()))
        .collect()
}

/// Segment the arm *patterns* of the `match` expression whose keyword
/// sits at `match_idx`. Arm bodies are not returned.
fn match_arms(toks: &[Token], match_idx: usize) -> Vec<Vec<&Token>> {
    // Find the body-opening `{`: the first one at delimiter depth 0
    // after the scrutinee (parens/brackets inside the scrutinee nest).
    let mut j = match_idx + 1;
    let mut depth = 0i32;
    let body_open = loop {
        let Some(t) = toks.get(j) else { return Vec::new() };
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break j,
                ";" if depth == 0 => return Vec::new(), // not a match expr
                _ => {}
            }
        }
        j += 1;
    };

    // Segment the arms: pattern tokens run up to a depth-1 `=>`; the
    // arm body ends at a depth-1 `,` or when a block body's `}` closes
    // back to depth 1.
    let mut arms: Vec<Vec<&Token>> = Vec::new();
    let mut pattern: Vec<&Token> = Vec::new();
    let mut in_pattern = true;
    let mut depth = 1i32;
    let mut k = body_open + 1;
    while let Some(t) = toks.get(k) {
        let mut consumed = false;
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break; // end of the match body
                    }
                    if depth == 1 && !in_pattern {
                        in_pattern = true; // block arm body just closed
                        consumed = true;
                    }
                }
                "=>" if depth == 1 && in_pattern => {
                    arms.push(std::mem::take(&mut pattern));
                    in_pattern = false;
                    consumed = true;
                }
                "," if depth == 1 && !in_pattern => {
                    in_pattern = true;
                    consumed = true;
                }
                _ => {}
            }
        }
        if in_pattern && !consumed {
            pattern.push(t);
        }
        k += 1;
    }
    // A non-empty leftover `pattern` means the body closed mid-pattern
    // (malformed input); it is deliberately discarded.
    arms
}
